"""The ten DSE configurations of Section 4.2 (Fig. 7).

========  ======  =====  =====
Config    timing  wPI    SOMQ
========  ======  =====  =====
1         ts1     —      no
2         ts2     —      no
3         ts3     1      no
4         ts3     2      no
5         ts3     3      no
6         ts3     4      no
7         ts3     1      yes
8         ts3     2      yes
9         ts3     3      yes
10        ts3     4      yes
========  ======  =====  =====

Config 1 with w = 1 is the baseline (the QuMIS coding style); the
paper's chosen instantiation is Config 9 with w = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.codegen import CodegenOptions, count_instructions
from repro.compiler.scheduler import Schedule
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class DSEConfig:
    """One architecture configuration of the design-space exploration."""

    number: int
    timing: str
    pi_width: int | None
    somq: bool

    def options(self, vliw_width: int) -> CodegenOptions:
        """Codegen options for this configuration at a VLIW width."""
        return CodegenOptions(timing=self.timing,
                              pi_width=self.pi_width or 3,
                              somq=self.somq, vliw_width=vliw_width)

    def valid_widths(self, max_width: int = 4) -> list[int]:
        """VLIW widths this configuration supports (ts2 needs w >= 2)."""
        minimum = 2 if self.timing == "ts2" else 1
        return list(range(minimum, max_width + 1))

    def label(self) -> str:
        """Human-readable form used in bench output."""
        parts = [self.timing]
        if self.timing == "ts3":
            parts.append(f"wPI={self.pi_width}")
        parts.append("SOMQ" if self.somq else "no SOMQ")
        return f"Config {self.number} ({', '.join(parts)})"


DSE_CONFIGS: dict[int, DSEConfig] = {
    1: DSEConfig(1, "ts1", None, False),
    2: DSEConfig(2, "ts2", None, False),
    3: DSEConfig(3, "ts3", 1, False),
    4: DSEConfig(4, "ts3", 2, False),
    5: DSEConfig(5, "ts3", 3, False),
    6: DSEConfig(6, "ts3", 4, False),
    7: DSEConfig(7, "ts3", 1, True),
    8: DSEConfig(8, "ts3", 2, True),
    9: DSEConfig(9, "ts3", 3, True),
    10: DSEConfig(10, "ts3", 4, True),
}

#: The configuration the paper instantiates (Section 4.2).
CHOSEN_CONFIG = DSE_CONFIGS[9]
CHOSEN_WIDTH = 2


def get_config(number: int) -> DSEConfig:
    """Look up a DSE configuration by its paper number."""
    if number not in DSE_CONFIGS:
        raise ConfigurationError(
            f"config {number} undefined; valid: 1..10")
    return DSE_CONFIGS[number]


def count_for_config(schedule: Schedule, number: int,
                     vliw_width: int) -> int:
    """Instruction count of a schedule under config ``number``."""
    config = get_config(number)
    if vliw_width not in config.valid_widths():
        raise ConfigurationError(
            f"config {number} does not support w={vliw_width}")
    return count_instructions(schedule, config.options(vliw_width))


def sweep(schedule: Schedule, max_width: int = 4
          ) -> dict[tuple[int, int], int]:
    """Full Fig. 7 sweep: {(config, width): instruction count}."""
    results: dict[tuple[int, int], int] = {}
    for number, config in DSE_CONFIGS.items():
        for width in config.valid_widths(max_width):
            results[(number, width)] = count_instructions(
                schedule, config.options(width))
    return results


def effective_ops_per_bundle(schedule: Schedule, number: int,
                             vliw_width: int) -> float:
    """Average quantum operations per bundle instruction word.

    The paper reports this for Config 9: e.g. 1.795/2.296/3.144 for RB
    at w = 2/3/4.  Only bundle words count — explicit QWAITs are
    excluded, matching "the number of effective quantum operations in
    each quantum bundle".
    """
    from repro.compiler.codegen import count_point_words, form_slots
    import math
    config = get_config(number)
    options = config.options(vliw_width)
    bundle_words = 0
    operations = 0
    previous_cycle = 0
    for cycle, point_ops in schedule.by_cycle():
        gap = cycle - previous_cycle
        previous_cycle = cycle
        slots = form_slots(point_ops, somq=options.somq)
        total_words = count_point_words(gap, len(slots), options)
        if options.timing == "ts1" or (options.timing == "ts3"
                                       and gap > options.max_pi):
            bundle_words += total_words - 1
        else:
            bundle_words += total_words
        operations += len(point_ops)
    if bundle_words == 0:
        return 0.0
    return operations / bundle_words
