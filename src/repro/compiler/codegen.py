"""eQASM code generation: schedule -> assembly program.

This is the compiler backend stage the DSE of Section 4.2 sweeps.  The
generator is parameterised by exactly the three axes of Fig. 7:

* **timing specification** — ``ts1`` (a separate QWAIT before every
  timing point, the QuMIS fashion), ``ts2`` (the wait occupies a VLIW
  slot inside a bundle word), ``ts3`` (a PI field of ``pi_width`` bits
  inside the bundle word, with QWAIT only for longer waits);
* **SOMQ** — merge identical operations at one timing point into a
  single slot targeting a qubit-set register, or give each (operation,
  qubit) its own slot;
* **VLIW width** — how many slots fit one instruction word.

Two output modes:

* :meth:`EQASMCodeGenerator.generate` emits a runnable
  :class:`~repro.core.program.Program` including SMIS/SMIT target-
  register management (LRU allocation over the 2 x 32 registers);
* :meth:`EQASMCodeGenerator.count_instructions` reproduces the paper's
  instruction-count metric under the stated DSE assumption that "the
  target registers can always provide the required qubit (pair) list"
  (no SMIS/SMIT counted), for any VLIW width and timing mode.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.compiler.scheduler import Schedule, ScheduledOp
from repro.core.errors import AssemblyError, ConfigurationError
from repro.core.instructions import (
    Bundle,
    BundleOperation,
    QWait,
    SMIS,
    SMIT,
    Stop,
)
from repro.core.isa import EQASMInstantiation
from repro.core.operations import OperationKind, OperationSet
from repro.core.program import Program


@dataclass(frozen=True)
class CodegenOptions:
    """The DSE axes (Section 4.2)."""

    timing: str = "ts3"       # "ts1" | "ts2" | "ts3"
    pi_width: int = 3         # wPI, only meaningful for ts3
    somq: bool = True
    vliw_width: int = 2
    #: Instruction words the classical pipeline issues per quantum
    #: cycle (quantum_cycle_ns / classical_cycle_ns; 20 ns / 10 ns for
    #: the paper's instantiations).  Bounds Rallowed for the
    #: issue-rate feasibility pass.
    words_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.timing not in ("ts1", "ts2", "ts3"):
            raise ConfigurationError(f"unknown timing mode {self.timing!r}")
        if self.timing == "ts2" and self.vliw_width < 2:
            raise ConfigurationError(
                "ts2 needs a VLIW width of at least 2 (Section 4.2)")
        if self.timing == "ts3" and not 1 <= self.pi_width <= 8:
            raise ConfigurationError("wPI must be in 1..8")
        if self.vliw_width < 1:
            raise ConfigurationError("VLIW width must be positive")
        if self.words_per_cycle < 1:
            raise ConfigurationError("words_per_cycle must be positive")

    @property
    def max_pi(self) -> int:
        """Largest pre-interval encodable in the PI field."""
        return (1 << self.pi_width) - 1


@dataclass(frozen=True)
class Slot:
    """One abstract VLIW slot before word packing."""

    name: str
    qubits: tuple[int, ...] = ()               # single-qubit targets
    pairs: tuple[tuple[int, int], ...] = ()    # two-qubit targets
    is_wait: bool = False
    wait_cycles: int = 0


def form_slots(point_ops: list[ScheduledOp], somq: bool) -> list[Slot]:
    """Group one timing point's operations into VLIW slots.

    With SOMQ, identical operation names merge into one slot over a
    qubit set (or pair set); without it, every operation instance takes
    its own slot.
    """
    slots: list[Slot] = []
    if not somq:
        for entry in point_ops:
            if entry.op.is_two_qubit:
                slots.append(Slot(name=entry.op.name,
                                  pairs=(entry.op.qubits,)))
            else:
                slots.append(Slot(name=entry.op.name,
                                  qubits=entry.op.qubits))
        return slots
    singles: OrderedDict[str, list[int]] = OrderedDict()
    doubles: OrderedDict[str, list[tuple[int, int]]] = OrderedDict()
    for entry in point_ops:
        if entry.op.is_two_qubit:
            doubles.setdefault(entry.op.name, []).append(entry.op.qubits)
        else:
            singles.setdefault(entry.op.name, []).append(entry.op.qubits[0])
    for name, qubits in singles.items():
        slots.append(Slot(name=name, qubits=tuple(sorted(qubits))))
    for name, pairs in doubles.items():
        slots.append(Slot(name=name, pairs=tuple(sorted(pairs))))
    return slots


def count_point_words(gap: int, num_slots: int,
                      options: CodegenOptions) -> int:
    """Instruction words needed for one timing point (pure counting).

    ``gap`` is the interval in cycles since the previous timing point;
    ``num_slots`` the number of formed slots.
    """
    w = options.vliw_width
    words = math.ceil(num_slots / w) if num_slots else 0
    if options.timing == "ts1":
        # Every timing point is specified by a separate QWAIT
        # instruction (the QuMIS fashion) — even back-to-back points.
        return words + 1
    if options.timing == "ts2":
        # The wait occupies one slot inside the bundle words.
        return math.ceil((num_slots + 1) / w)
    # ts3: gaps up to max_pi ride in the PI field for free.
    if gap > options.max_pi:
        return words + 1
    return words


def count_instructions(schedule: Schedule,
                       options: CodegenOptions) -> int:
    """Total instruction count of a schedule under a DSE configuration.

    Reproduces the paper's Fig. 7 metric: quantum instructions only,
    target registers assumed pre-loaded.
    """
    # Operation durations do not matter for counting; use a throwaway
    # grouping based purely on names/qubits.
    total = 0
    previous_cycle = 0
    for cycle, point_ops in schedule.by_cycle():
        gap = cycle - previous_cycle
        previous_cycle = cycle
        slots = form_slots(point_ops, somq=options.somq)
        total += count_point_words(gap, len(slots), options)
    return total


@dataclass
class _RegisterAllocator:
    """LRU allocator for one target-register file (S or T)."""

    prefix: str
    capacity: int
    _assignment: OrderedDict = field(default_factory=OrderedDict)

    def lookup(self, key) -> tuple[int, bool]:
        """Return (register index, needs_set).

        ``needs_set`` is True when a SMIS/SMIT must be emitted because
        the value was not already resident.
        """
        if key in self._assignment:
            self._assignment.move_to_end(key)
            return self._assignment[key], False
        if len(self._assignment) < self.capacity:
            index = len(self._assignment)
        else:
            _, index = self._assignment.popitem(last=False)
        self._assignment[key] = index
        return index, True


class EQASMCodeGenerator:
    """Schedule -> executable eQASM program for an instantiation."""

    def __init__(self, isa: EQASMInstantiation,
                 options: CodegenOptions | None = None):
        self.isa = isa
        self.options = options or CodegenOptions(
            timing="ts3", pi_width=isa.pi_width, somq=True,
            vliw_width=isa.vliw_width)
        if self.options.vliw_width != isa.vliw_width:
            # Counting supports any width; executable code must match
            # the binary format.
            raise ConfigurationError(
                f"executable codegen needs the instantiation VLIW width "
                f"({isa.vliw_width}), got {self.options.vliw_width}")

    def generate(self, schedule: Schedule,
                 initialize_cycles: int = 10000,
                 final_wait_cycles: int = 0,
                 emit_stop: bool = True) -> Program:
        """Emit a runnable program for the schedule.

        ``initialize_cycles`` prepends the idling initialization the
        paper uses ("QWAIT 10000 initializes both qubits by idling them
        for 200 us"); ``final_wait_cycles`` appends a trailing wait
        (e.g. to cover a final measurement window).

        Target-register setup is hoisted: every SMIS/SMIT whose register
        is written for the first time moves to a preamble before the
        initialization wait, so the dense bundle stream is not diluted
        by setup instructions (which would raise Rreq mid-timeline).
        Only register *rewrites* (LRU eviction when a program uses more
        masks than registers) stay inline.
        """
        options = self.options
        s_alloc = _RegisterAllocator(
            "S", self.isa.num_single_qubit_target_registers)
        t_alloc = _RegisterAllocator(
            "T", self.isa.num_two_qubit_target_registers)
        # Pass 1: allocate registers and collect per-point setup needs.
        points: list[tuple[int, list[BundleOperation]]] = []
        setups: list = []  # (point index, SMIS/SMIT instruction)
        previous_cycle = 0
        for cycle, point_ops in schedule.by_cycle():
            gap = cycle - previous_cycle
            previous_cycle = cycle
            point_index = len(points)
            slots = form_slots(point_ops, somq=options.somq)
            bundle_ops = []
            for slot in slots:
                operand, setup = self._slot_operand(slot, s_alloc, t_alloc)
                if setup is not None:
                    setups.append((point_index, setup))
                bundle_ops.append(operand)
            points.append((gap, bundle_ops))
        # Split setups: first write to a register hoists to the
        # preamble; later rewrites stay in front of their point.
        written: set[tuple[str, int]] = set()
        preamble: list = []
        inline: dict[int, list] = {}
        for point_index, setup in setups:
            if isinstance(setup, SMIS):
                key = ("S", setup.sd)
            else:
                key = ("T", setup.td)
            if key not in written:
                written.add(key)
                preamble.append(setup)
            else:
                inline.setdefault(point_index, []).append(setup)
        # Pass 1.5: issue-rate feasibility (Rreq <= Rallowed,
        # Section 3.1).  The machine anchors its deterministic-domain
        # timer at the first timing point with zero slack, so the last
        # VLIW word of every later point must issue within the
        # programmed gap: wide (multi-word) bundles or inline register
        # rewrites at short gaps would reserve after their trigger was
        # due.  The paper makes the compiler responsible for this, so
        # stretch any infeasible gap until the point fits.
        points = self._stretch_infeasible_gaps(points, inline)
        # Pass 2: emission.
        program = Program()
        program.extend(preamble)
        if initialize_cycles > 0:
            self._emit_wait(program, initialize_cycles)
        for point_index, (gap, bundle_ops) in enumerate(points):
            program.extend(inline.get(point_index, []))
            self._emit_point(program, gap, bundle_ops)
        if final_wait_cycles > 0:
            self._emit_wait(program, final_wait_cycles)
        if emit_stop:
            program.append(Stop())
        return program

    # ------------------------------------------------------------------
    # Issue-rate feasibility
    # ------------------------------------------------------------------
    def _wait_words(self, cycles: int) -> int:
        """Instruction words :meth:`_emit_wait` needs for a wait."""
        return max(1, math.ceil(cycles / self.isa.max_qwait))

    def _point_words(self, gap: int, operand_count: int) -> int:
        """Instruction words one timing point occupies in the binary.

        Mirrors :meth:`_emit_point` plus the assembler's bundle
        splitting: ``operand_count`` slots pack into
        ``ceil(count / vliw_width)`` words, preceded by explicit QWAITs
        whenever the gap does not fit the PI field.
        """
        words = max(1, math.ceil(operand_count / self.isa.vliw_width))
        if (self.options.timing == "ts3" and gap <= self.options.max_pi
                and gap <= self.isa.max_pi):
            return words
        return words + (self._wait_words(gap) if gap else 0)

    def _stretch_infeasible_gaps(self, points, inline):
        """Delay timing points the classical pipeline cannot feed.

        The reserve of point *k* completes when its last word issues,
        one classical cycle per word (inline SMIS/SMIT rewrites
        included); relative to the zero-slack anchor at the first
        point, feasibility requires the cumulative word count to stay
        within ``words_per_cycle`` words per programmed cycle.  Slack
        from generous gaps carries forward (the timing queue buffers
        points reserved early).
        """
        words_per_cycle = self.options.words_per_cycle
        adjusted: list[tuple[int, list[BundleOperation]]] = []
        slack = 0
        for index, (gap, bundle_ops) in enumerate(points):
            if index == 0:
                adjusted.append((gap, bundle_ops))
                continue
            setup_words = len(inline.get(index, []))
            cost = setup_words + self._point_words(gap, len(bundle_ops))
            while slack + gap * words_per_cycle < cost:
                gap += 1
                cost = (setup_words +
                        self._point_words(gap, len(bundle_ops)))
            slack += gap * words_per_cycle - cost
            adjusted.append((gap, bundle_ops))
        return adjusted

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _emit_wait(self, program: Program, cycles: int) -> None:
        maximum = self.isa.max_qwait
        while cycles > maximum:
            program.append(QWait(cycles=maximum))
            cycles -= maximum
        program.append(QWait(cycles=cycles))

    def _slot_operand(self, slot: Slot,
                      s_alloc: _RegisterAllocator,
                      t_alloc: _RegisterAllocator):
        """Allocate a target register for a slot.

        Returns ``(operand, setup)`` where ``setup`` is the SMIS/SMIT
        needed before this slot's point (None when the mask is already
        resident).
        """
        operation = self.isa.operations.get(slot.name)
        if operation.kind is OperationKind.TWO_QUBIT:
            key = frozenset(slot.pairs)
            index, needs_set = t_alloc.lookup(key)
            setup = SMIT(td=index, pairs=frozenset(slot.pairs)) \
                if needs_set else None
            return BundleOperation(name=slot.name,
                                   register=("T", index)), setup
        key = frozenset(slot.qubits)
        index, needs_set = s_alloc.lookup(key)
        setup = SMIS(sd=index, qubits=frozenset(slot.qubits)) \
            if needs_set else None
        return BundleOperation(name=slot.name, register=("S", index)), setup

    def _emit_point(self, program: Program, gap: int,
                    bundle_ops: list[BundleOperation]) -> None:
        """Emit the wait + bundle instructions for one timing point."""
        options = self.options
        if not bundle_ops:
            if gap:
                self._emit_wait(program, gap)
            return
        if options.timing == "ts3" and gap <= options.max_pi \
                and gap <= self.isa.max_pi:
            program.append(Bundle(operations=tuple(bundle_ops), pi=gap,
                                  explicit_pi=True))
            return
        # ts1/ts2 executable emission both fall back to an explicit
        # QWAIT followed by a PI=0 bundle: the 32-bit instantiation has
        # no wait-in-slot encoding, so ts2 is counting-only.
        self._emit_wait(program, gap)
        program.append(Bundle(operations=tuple(bundle_ops), pi=0,
                              explicit_pi=True))


def generate_eqasm(schedule: Schedule, isa: EQASMInstantiation,
                   initialize_cycles: int = 10000,
                   final_wait_cycles: int = 0) -> Program:
    """Convenience wrapper with the instantiation's default options."""
    generator = EQASMCodeGenerator(isa)
    return generator.generate(schedule,
                              initialize_cycles=initialize_cycles,
                              final_wait_cycles=final_wait_cycles)
