"""Circuit intermediate representation for the compiler backend.

The quantum compiler (OpenQL in the paper's toolflow) receives kernels
in a hardware-independent, circuit-model form.  This IR is that form:
a named sequence of operations on qubit indices, in program order.
Scheduling (time assignment) is a separate pass
(:mod:`repro.compiler.scheduler`).

The IR also computes the workload statistics the paper quotes for its
three DSE benchmarks — two-qubit-gate fraction ("IM ... has < 1 %
two-qubit gates", "SR ... has ~39 % two-qubit gates") and parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AssemblyError
from repro.core.operations import OperationKind, OperationSet


@dataclass(frozen=True)
class CircuitOp:
    """One gate or measurement on explicit qubits.

    ``qubits`` holds one index for single-qubit operations and an
    ordered (source, target) pair for two-qubit operations.
    """

    name: str
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.qubits) <= 2:
            raise AssemblyError(
                f"{self.name}: operations act on 1 or 2 qubits, "
                f"got {self.qubits}")
        if len(set(self.qubits)) != len(self.qubits):
            raise AssemblyError(f"{self.name}: duplicate qubit operand")

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    def __str__(self) -> str:
        operands = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.name} {operands}"


@dataclass
class Circuit:
    """An ordered operation list over ``num_qubits`` qubits."""

    name: str
    num_qubits: int
    operations: list[CircuitOp] = field(default_factory=list)

    def add(self, name: str, *qubits: int) -> "Circuit":
        """Append one operation (chainable)."""
        op = CircuitOp(name=name.upper(), qubits=tuple(qubits))
        for qubit in op.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise AssemblyError(
                    f"{op}: qubit outside circuit of {self.num_qubits}")
        self.operations.append(op)
        return self

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all operations of another circuit (chainable)."""
        if other.num_qubits > self.num_qubits:
            raise AssemblyError("appended circuit uses more qubits")
        self.operations.extend(other.operations)
        return self

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    # ------------------------------------------------------------------
    # Statistics (the numbers quoted in Section 4.2)
    # ------------------------------------------------------------------
    def gate_count(self) -> int:
        """Total number of operations."""
        return len(self.operations)

    def two_qubit_count(self) -> int:
        """Number of two-qubit operations."""
        return sum(1 for op in self.operations if op.is_two_qubit)

    def two_qubit_fraction(self) -> float:
        """Fraction of operations that are two-qubit gates."""
        if not self.operations:
            return 0.0
        return self.two_qubit_count() / len(self.operations)

    def used_qubits(self) -> tuple[int, ...]:
        """Qubits that appear in at least one operation."""
        used = sorted({q for op in self.operations for q in op.qubits})
        return tuple(used)

    def validate_against(self, operations: OperationSet) -> None:
        """Check every op is configured with the right arity."""
        for op in self.operations:
            definition = operations.get(op.name)
            if definition.kind is OperationKind.TWO_QUBIT:
                if not op.is_two_qubit:
                    raise AssemblyError(f"{op} needs two qubits")
            elif definition.kind in (OperationKind.SINGLE_QUBIT,
                                     OperationKind.MEASUREMENT):
                if op.is_two_qubit:
                    raise AssemblyError(f"{op} takes a single qubit")
            else:
                raise AssemblyError(f"{op}: QNOP cannot appear in the IR")
