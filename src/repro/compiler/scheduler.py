"""ASAP list scheduler: circuit IR -> timing-point schedule.

The compiler backend performs "qubit mapping and scheduling, and
low-level optimization" (Section 2.1).  This pass assigns each
operation a start cycle as early as its operands allow (ASAP), using
the durations configured in the operation set (1 cycle for single-qubit
gates, 2 for CZ, 15 for measurement in the paper's instantiation).

The resulting :class:`Schedule` is the input of both the eQASM code
generator and the DSE instruction counters; the paper's "parallelism"
of a workload is exactly the average number of operations per timing
point of this schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import Circuit, CircuitOp
from repro.core.operations import OperationSet


@dataclass(frozen=True)
class ScheduledOp:
    """An operation with its assigned start cycle and duration."""

    cycle: int
    op: CircuitOp
    duration: int


@dataclass
class Schedule:
    """Operations grouped by start cycle (the timeline to encode)."""

    name: str
    scheduled: list[ScheduledOp] = field(default_factory=list)

    def cycles(self) -> list[int]:
        """Distinct timing points, ascending."""
        return sorted({entry.cycle for entry in self.scheduled})

    def ops_at(self, cycle: int) -> list[ScheduledOp]:
        """Operations starting at one cycle."""
        return [entry for entry in self.scheduled if entry.cycle == cycle]

    def by_cycle(self) -> list[tuple[int, list[ScheduledOp]]]:
        """(cycle, operations) pairs in time order (single pass)."""
        buckets: dict[int, list[ScheduledOp]] = {}
        for entry in self.scheduled:
            buckets.setdefault(entry.cycle, []).append(entry)
        return sorted(buckets.items())

    def makespan(self) -> int:
        """Cycle at which the last operation completes."""
        return max((entry.cycle + entry.duration
                    for entry in self.scheduled), default=0)

    def operation_count(self) -> int:
        """Total scheduled operations."""
        return len(self.scheduled)

    def average_parallelism(self) -> float:
        """Mean operations per timing point."""
        points = self.cycles()
        if not points:
            return 0.0
        return len(self.scheduled) / len(points)

    def gaps(self) -> list[int]:
        """Interval (cycles) before each timing point.

        The first entry is the interval from cycle 0 to the first
        point; these are the values the timing-specification methods
        (ts1/ts2/ts3) must encode.
        """
        points = self.cycles()
        gaps = []
        previous = 0
        for cycle in points:
            gaps.append(cycle - previous)
            previous = cycle
        return gaps


def schedule_asap(circuit: Circuit, operations: OperationSet,
                  name: str | None = None) -> Schedule:
    """Greedy in-order ASAP scheduling with qubit resource constraints.

    Each operation starts at the earliest cycle at which all its qubits
    are free; qubits stay busy for the operation's configured duration.
    In-order processing preserves per-qubit program order, which is the
    only dependence that matters for circuits in executable form.
    """
    circuit.validate_against(operations)
    free_at = {qubit: 0 for qubit in range(circuit.num_qubits)}
    scheduled: list[ScheduledOp] = []
    for op in circuit.operations:
        duration = operations.get(op.name).duration_cycles
        start = max(free_at[qubit] for qubit in op.qubits)
        scheduled.append(ScheduledOp(cycle=start, op=op, duration=duration))
        for qubit in op.qubits:
            free_at[qubit] = start + max(duration, 1)
    return Schedule(name=name or circuit.name, scheduled=scheduled)


def schedule_serial(circuit: Circuit, operations: OperationSet,
                    name: str | None = None) -> Schedule:
    """Fully serialised schedule: one operation per timing point.

    The degenerate baseline used to isolate the benefit of parallelism
    in ablation benches.
    """
    circuit.validate_against(operations)
    scheduled: list[ScheduledOp] = []
    cycle = 0
    for op in circuit.operations:
        duration = operations.get(op.name).duration_cycles
        scheduled.append(ScheduledOp(cycle=cycle, op=op, duration=duration))
        cycle += max(duration, 1)
    return Schedule(name=name or circuit.name, scheduled=scheduled)


def schedule_with_interval(circuit: Circuit, operations: OperationSet,
                           interval_cycles: int,
                           name: str | None = None) -> Schedule:
    """Serial schedule with a fixed interval between operation starts.

    Used by the Fig. 12 experiment: "randomized benchmarking was
    performed for different intervals between the starting points of
    consecutive gates (320, 160, 80, 40, and 20 ns)".
    """
    if interval_cycles < 1:
        raise ValueError("interval must be at least one cycle")
    circuit.validate_against(operations)
    scheduled: list[ScheduledOp] = []
    cycle = 0
    for op in circuit.operations:
        duration = operations.get(op.name).duration_cycles
        scheduled.append(ScheduledOp(cycle=cycle, op=op, duration=duration))
        cycle += max(interval_cycles, duration)
    return Schedule(name=name or circuit.name, scheduled=scheduled)
