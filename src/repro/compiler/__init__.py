"""Compiler backend: circuit IR, scheduler, eQASM codegen, QuMIS baseline."""

from repro.compiler.codegen import (
    CodegenOptions,
    EQASMCodeGenerator,
    count_instructions,
    count_point_words,
    form_slots,
    generate_eqasm,
)
from repro.compiler.configs import (
    CHOSEN_CONFIG,
    CHOSEN_WIDTH,
    DSE_CONFIGS,
    DSEConfig,
    count_for_config,
    effective_ops_per_bundle,
    get_config,
    sweep,
)
from repro.compiler.frontend import CQASMFrontend, parse_cqasm
from repro.compiler.ir import Circuit, CircuitOp
from repro.compiler.quimis import (
    QuMISGenerator,
    QuMISInstruction,
    required_issue_rate,
)
from repro.compiler.scheduler import (
    Schedule,
    ScheduledOp,
    schedule_asap,
    schedule_serial,
    schedule_with_interval,
)

__all__ = [
    "CHOSEN_CONFIG",
    "CQASMFrontend",
    "CHOSEN_WIDTH",
    "Circuit",
    "CircuitOp",
    "CodegenOptions",
    "DSEConfig",
    "DSE_CONFIGS",
    "EQASMCodeGenerator",
    "QuMISGenerator",
    "QuMISInstruction",
    "Schedule",
    "ScheduledOp",
    "count_for_config",
    "parse_cqasm",
    "count_instructions",
    "count_point_words",
    "effective_ops_per_bundle",
    "form_slots",
    "generate_eqasm",
    "get_config",
    "required_issue_rate",
    "schedule_asap",
    "schedule_serial",
    "schedule_with_interval",
    "sweep",
]
