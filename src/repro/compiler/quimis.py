"""QuMIS baseline: the quantum microinstruction set of QuMA (ref [1]).

Fig. 7's baseline ("Config 1 with w = 1") is exactly the QuMIS coding
style, whose low instruction information density the paper dissects in
Section 1.2:

1. "an explicit waiting instruction is required to separate any two
   consecutive timing points";
2. "each target qubit of a quantum operation occupies a field in the
   instruction" — no qubit-set masks, so an operation on ``k`` qubits
   costs ``k`` operation fields, and with the single-operation format
   modelled here, ``k`` instructions;
3. "two parallel and different operations cannot be combined into a
   single instruction" — no VLIW.

This module renders a schedule into QuMIS-style assembly (``wait`` /
``pulse`` / ``trigger`` / ``measure`` mnemonics following the QuMA
paper) and counts instructions, providing the baseline series for the
Fig. 7 and issue-rate benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.scheduler import Schedule
from repro.core.operations import OperationKind, OperationSet


@dataclass(frozen=True)
class QuMISInstruction:
    """One QuMIS-style microinstruction (textual model)."""

    mnemonic: str
    operands: tuple

    def to_assembly(self) -> str:
        rendered = ", ".join(str(operand) for operand in self.operands)
        return f"{self.mnemonic} {rendered}".strip()


class QuMISGenerator:
    """Schedule -> QuMIS-style instruction stream."""

    def __init__(self, operations: OperationSet):
        self.operations = operations

    def generate(self, schedule: Schedule) -> list[QuMISInstruction]:
        """Emit the QuMIS instruction stream for a schedule.

        Every timing point costs one ``wait`` plus one instruction per
        (operation, qubit) instance: measurements become ``measure q``,
        two-qubit flux pulses ``trigger``s on both qubits, and
        single-qubit gates codeword ``pulse``s.
        """
        instructions: list[QuMISInstruction] = []
        previous_cycle = 0
        for cycle, point_ops in schedule.by_cycle():
            gap = cycle - previous_cycle
            previous_cycle = cycle
            instructions.append(QuMISInstruction("wait", (gap,)))
            for entry in point_ops:
                definition = self.operations.get(entry.op.name)
                if definition.kind is OperationKind.MEASUREMENT:
                    for qubit in entry.op.qubits:
                        instructions.append(
                            QuMISInstruction("measure", (f"q{qubit}",)))
                elif definition.kind is OperationKind.TWO_QUBIT:
                    source, target = entry.op.qubits
                    instructions.append(QuMISInstruction(
                        "trigger",
                        (f"flux_{entry.op.name.lower()}", f"q{source}",
                         f"q{target}")))
                else:
                    for qubit in entry.op.qubits:
                        instructions.append(QuMISInstruction(
                            "pulse", (entry.op.name.lower(), f"q{qubit}")))
        return instructions

    def count_instructions(self, schedule: Schedule) -> int:
        """Instruction count of the QuMIS encoding of a schedule."""
        return len(self.generate(schedule))

    def to_assembly(self, schedule: Schedule) -> str:
        """Render the QuMIS stream as text (for inspection/tests)."""
        return "\n".join(ins.to_assembly()
                         for ins in self.generate(schedule)) + "\n"


def required_issue_rate(schedule: Schedule, operations: OperationSet,
                        generator_count: int,
                        quantum_cycle_ns: float = 20.0,
                        classical_cycle_ns: float = 10.0) -> float:
    """Rreq / Rallowed for an encoding of a schedule (Section 1.2).

    ``generator_count`` is the number of instructions the encoding
    needs (QuMIS or eQASM).  The timeline spans ``makespan`` quantum
    cycles, during which the pipeline can issue
    ``makespan * quantum_cycle / classical_cycle`` instructions; the
    ratio above 1.0 means the stream cannot be sustained
    (Rreq > Rallowed) and timing slips.
    """
    makespan = schedule.makespan()
    if makespan == 0:
        return 0.0
    allowed = makespan * quantum_cycle_ns / classical_cycle_ns
    return generator_count / allowed
