"""eQASM reproduction: an executable quantum instruction set architecture.

Reproduction of Fu et al., "eQASM: An Executable Quantum Instruction
Set Architecture" (HPCA 2019).  The package layers:

* :mod:`repro.core` — the eQASM ISA: operations, assembly, binary
  encoding, timing semantics;
* :mod:`repro.topology` — quantum chip descriptions (Fig. 6);
* :mod:`repro.quantum` — the quantum plant (density-matrix simulator
  with the calibrated noise model);
* :mod:`repro.uarch` — the QuMA v2 control microarchitecture (Fig. 9);
* :mod:`repro.compiler` — the OpenQL-like backend and QuMIS baseline;
* :mod:`repro.workloads` — the paper's benchmark circuits;
* :mod:`repro.experiments` — runners reproducing every table/figure.

Quickstart::

    from repro import ExperimentSetup

    setup = ExperimentSetup.create(seed=1)
    assembled = setup.assemble_text(\"\"\"
        SMIS S2, {2}
        X90 S2
        MEASZ S2
        STOP
    \"\"\")
    traces = setup.run(assembled, shots=100)
    print(sum(t.last_result(2) for t in traces) / 100)
"""

from repro.core import (
    Assembler,
    Disassembler,
    EQASMInstantiation,
    Program,
    default_operation_set,
    seven_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.experiments import ExperimentSetup
from repro.quantum import NoiseModel, QuantumPlant
from repro.topology import surface7, two_qubit_chip
from repro.uarch import QuMAv2, UarchConfig

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "Disassembler",
    "EQASMInstantiation",
    "ExperimentSetup",
    "NoiseModel",
    "Program",
    "QuMAv2",
    "QuantumPlant",
    "UarchConfig",
    "__version__",
    "default_operation_set",
    "seven_qubit_instantiation",
    "surface7",
    "two_qubit_chip",
    "two_qubit_instantiation",
]
