"""Chip topologies used by the paper and its evaluation.

* :func:`surface7` — the seven-qubit superconducting chip of Fig. 6
  (a distance-2 surface-code patch with 16 directed allowed pairs and
  two feedlines).
* :func:`two_qubit_chip` — the two-transmon processor used for the
  Section 5 experiments (qubits renamed 0 and 2, single feedline).
* :func:`ibm_qx2` — IBM Q 5 "Yorktown": five qubits, six allowed pairs
  (the paper's mask-efficiency example in Section 3.3.2).
* :func:`fully_connected_ion_trap` — a fully connected 5-qubit trapped
  ion processor (the paper's address-pair-efficiency example).
* :func:`linear_chain` — parameterisable 1-D chain, used by workload
  generators for qubit counts the fixed chips do not cover.
"""

from __future__ import annotations

from repro.topology.chip import QuantumChipTopology, QubitPair


def surface7() -> QuantumChipTopology:
    """The seven-qubit chip of Fig. 6.

    Vertices 0..6; the edge addressing follows the figure: each physical
    coupling contributes two directed pairs, with address ``i`` and
    ``i + 8`` pointing in opposite directions.  Pair 0 has source qubit 2
    and target qubit 0 (the worked example in Section 3.3.1), and the
    OpSel example of Section 4.3 requires qubit 0 to touch edges 0, 1,
    8 and 9 with 0/9 making it the target and 1/8 the source.
    """
    forward = [
        (2, 0),   # edge 0
        (0, 3),   # edge 1
        (1, 3),   # edge 2
        (1, 4),   # edge 3
        (2, 5),   # edge 4
        (3, 5),   # edge 5
        (3, 6),   # edge 6
        (4, 6),   # edge 7
    ]
    pairs = []
    for address, (source, target) in enumerate(forward):
        pairs.append(QubitPair(address=address, source=source, target=target))
        pairs.append(QubitPair(address=address + 8, source=target,
                               target=source))
    return QuantumChipTopology(
        name="surface-7",
        qubits=(0, 1, 2, 3, 4, 5, 6),
        pairs=tuple(pairs),
        feedlines={0: (0, 2, 3, 5, 6), 1: (1, 4)},
    )


#: Surface-17 layout: 3x3 data-qubit grid (addresses 0..8, row-major)
#: plus eight ancillas (9..16), one per stabilizer of the rotated
#: distance-3 surface code.  Z ancillas first, X ancillas second; the
#: weight-4 plaquettes sit in the bulk, the weight-2 checks on the
#: boundary (Versluis et al., "Scalable quantum circuit and control
#: for a superconducting surface code" — the chip the CC-Light eQASM
#: instantiation targets next).
SURFACE17_DATA_QUBITS = (0, 1, 2, 3, 4, 5, 6, 7, 8)
SURFACE17_Z_CHECKS = {
    9: (0, 1, 3, 4),    # Z plaquette, upper-left bulk
    10: (4, 5, 7, 8),   # Z plaquette, lower-right bulk
    11: (2, 5),         # Z boundary, right edge
    12: (3, 6),         # Z boundary, left edge
}
SURFACE17_X_CHECKS = {
    13: (1, 2, 4, 5),   # X plaquette, upper-right bulk
    14: (3, 4, 6, 7),   # X plaquette, lower-left bulk
    15: (0, 1),         # X boundary, top edge
    16: (7, 8),         # X boundary, bottom edge
}


def surface17() -> QuantumChipTopology:
    """The 17-qubit distance-3 surface-code chip.

    Each ancilla couples to its stabilizer's data qubits (24 couplings
    in total).  Mirroring :func:`surface7`'s addressing, every coupling
    contributes two directed allowed pairs — ancilla-as-source at
    address ``i``, the reverse at ``i + 24`` — for a 48-bit pair mask,
    which is why this chip needs the 64-bit eQASM instantiation
    (:func:`repro.core.isa.seventeen_qubit_instantiation`).  Readout is
    frequency-multiplexed over three feedlines, as on the real device.
    """
    forward: list[tuple[int, int]] = []
    for checks in (SURFACE17_Z_CHECKS, SURFACE17_X_CHECKS):
        for ancilla, data in checks.items():
            forward.extend((ancilla, qubit) for qubit in data)
    pairs = []
    for address, (source, target) in enumerate(forward):
        pairs.append(QubitPair(address=address, source=source,
                               target=target))
        pairs.append(QubitPair(address=address + len(forward),
                               source=target, target=source))
    return QuantumChipTopology(
        name="surface-17",
        qubits=tuple(range(17)),
        pairs=tuple(pairs),
        feedlines={0: (0, 1, 2, 9, 11, 13, 15),
                   1: (3, 4, 5, 10, 12, 14),
                   2: (6, 7, 8, 16)},
    )


def rotated_surface_checks(
        distance: int) -> tuple[dict[int, tuple[int, ...]],
                                dict[int, tuple[int, ...]]]:
    """Stabilizers of the rotated distance-``d`` surface code.

    Data qubits are ``0 .. d*d - 1`` (row-major ``d x d`` grid); one
    ancilla per stabilizer follows, Z checks first, then X, each group
    in plaquette row-major order.  Plaquette ``(r, c)`` (corners of the
    dual lattice, ``0 <= r, c <= d``) touches the up-to-four data
    qubits around it and measures Z when ``r + c`` is even, X when odd;
    the bulk keeps every weight-4 plaquette, the boundary keeps the
    weight-2 X checks on the top/bottom rows and the weight-2 Z checks
    on the left/right columns.  ``rotated_surface_checks(3)``
    reproduces :data:`SURFACE17_Z_CHECKS` / :data:`SURFACE17_X_CHECKS`
    exactly (up to the hand-chosen ancilla order).
    """
    z_plaquettes: list[tuple[int, ...]] = []
    x_plaquettes: list[tuple[int, ...]] = []
    for row in range(distance + 1):
        for col in range(distance + 1):
            data = tuple(
                r * distance + c
                for r, c in ((row - 1, col - 1), (row - 1, col),
                             (row, col - 1), (row, col))
                if 0 <= r < distance and 0 <= c < distance)
            is_z = (row + col) % 2 == 0
            if len(data) == 4:
                (z_plaquettes if is_z else x_plaquettes).append(data)
            elif len(data) == 2:
                # Boundary: X checks terminate the top/bottom edges,
                # Z checks the left/right edges.
                if is_z and col in (0, distance):
                    z_plaquettes.append(data)
                elif not is_z and row in (0, distance):
                    x_plaquettes.append(data)
    ancilla = distance * distance
    z_checks = {}
    for data in z_plaquettes:
        z_checks[ancilla] = data
        ancilla += 1
    x_checks = {}
    for data in x_plaquettes:
        x_checks[ancilla] = data
        ancilla += 1
    return z_checks, x_checks


#: Surface-49 layout: 5x5 data-qubit grid (addresses 0..24, row-major)
#: plus 24 ancillas (25..36 Z, 37..48 X), one per stabilizer of the
#: rotated distance-5 surface code.
SURFACE49_DATA_QUBITS = tuple(range(25))
SURFACE49_Z_CHECKS, SURFACE49_X_CHECKS = rotated_surface_checks(5)


def surface49() -> QuantumChipTopology:
    """The 49-qubit distance-5 surface-code chip.

    The scaling step past :func:`surface17`: 80 ancilla-data couplings
    (16 weight-4 plaquettes plus 8 weight-2 boundary checks), so the
    same two-directions-per-coupling addressing — ancilla-as-source at
    address ``i``, the reverse at ``i + 80`` — needs a 160-bit pair
    mask.  No hand-written word layout covers that; the chip is served
    by the 192-bit spec-driven instantiation
    (:func:`repro.core.isa.forty_nine_qubit_instantiation`).  Readout
    is frequency-multiplexed over five feedlines of at most ten qubits.
    """
    forward: list[tuple[int, int]] = []
    for checks in (SURFACE49_Z_CHECKS, SURFACE49_X_CHECKS):
        for ancilla, data in checks.items():
            forward.extend((ancilla, qubit) for qubit in data)
    pairs = []
    for address, (source, target) in enumerate(forward):
        pairs.append(QubitPair(address=address, source=source,
                               target=target))
        pairs.append(QubitPair(address=address + len(forward),
                               source=target, target=source))
    qubits = tuple(range(49))
    return QuantumChipTopology(
        name="surface-49",
        qubits=qubits,
        pairs=tuple(pairs),
        feedlines={line: qubits[line * 10:(line + 1) * 10]
                   for line in range(5)},
    )


def two_qubit_chip() -> QuantumChipTopology:
    """The two-qubit processor used for the experiments in Section 5.

    The two interconnected qubits are renamed 0 and 2 (matching the
    programs of Figs. 3-5), coupled to a single feedline.
    """
    return QuantumChipTopology(
        name="two-qubit",
        qubits=(0, 2),
        pairs=(
            QubitPair(address=0, source=2, target=0),
            QubitPair(address=1, source=0, target=2),
        ),
        feedlines={0: (0, 2)},
    )


def ibm_qx2() -> QuantumChipTopology:
    """IBM Q 5 Yorktown: 5 qubits, 6 allowed (directed) pairs.

    Section 3.3.2 uses this chip to argue a 6-bit pair mask beats
    address-pair encoding when connectivity is limited.  CNOT directions
    follow the published backend specification.
    """
    directed = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)]
    pairs = tuple(QubitPair(address=i, source=s, target=t)
                  for i, (s, t) in enumerate(directed))
    return QuantumChipTopology(name="ibm-qx2", qubits=(0, 1, 2, 3, 4),
                               pairs=pairs, feedlines={0: (0, 1, 2, 3, 4)})


def fully_connected_ion_trap(num_qubits: int = 5) -> QuantumChipTopology:
    """A fully connected trapped-ion processor (Section 3.3.2 example).

    Every ordered pair of distinct qubits is an allowed pair, giving
    ``n * (n - 1)`` directed edges (20 for five qubits).
    """
    qubits = tuple(range(num_qubits))
    pairs = []
    address = 0
    for source in qubits:
        for target in qubits:
            if source == target:
                continue
            pairs.append(QubitPair(address=address, source=source,
                                   target=target))
            address += 1
    return QuantumChipTopology(name=f"ion-trap-{num_qubits}", qubits=qubits,
                               pairs=tuple(pairs),
                               feedlines={0: qubits})


def linear_chain(num_qubits: int) -> QuantumChipTopology:
    """A 1-D nearest-neighbour chain with both edge directions allowed.

    Used by the 8-qubit Grover square-root workload (the surface-7 chip
    has only seven qubits; the paper compiled SR for an 8-qubit target).
    """
    qubits = tuple(range(num_qubits))
    pairs = []
    address = 0
    for left in range(num_qubits - 1):
        pairs.append(QubitPair(address=address, source=left, target=left + 1))
        address += 1
        pairs.append(QubitPair(address=address, source=left + 1, target=left))
        address += 1
    return QuantumChipTopology(name=f"chain-{num_qubits}", qubits=qubits,
                               pairs=tuple(pairs), feedlines={0: qubits})


CHIP_LIBRARY = {
    "surface-7": surface7,
    "surface-17": surface17,
    "surface-49": surface49,
    "two-qubit": two_qubit_chip,
    "ibm-qx2": ibm_qx2,
    "ion-trap-5": fully_connected_ion_trap,
}


def get_chip(name: str) -> QuantumChipTopology:
    """Look a chip up by name in the library."""
    try:
        factory = CHIP_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(CHIP_LIBRARY))
        raise KeyError(f"unknown chip {name!r}; known chips: {known}")
    return factory()
