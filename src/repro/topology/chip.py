"""Quantum chip topology: available qubits and allowed qubit pairs.

Section 3.3 of the paper defines the *quantum chip topology* as a directed
graph: each vertex is an available qubit (identified by its physical
address) and each directed edge is an *allowed qubit pair* — an ordered
pair of qubits on which a physical two-qubit gate can be applied directly.
Each edge also carries its own address, used by the two-qubit target
register masks (``SMIT``).

The topology is consumed by three parts of the stack:

* the assembler, to size the S/T register masks and validate operands;
* the microarchitecture, to resolve T-register masks into per-qubit
  micro-operation selection signals (Table 2);
* the compiler, to check that two-qubit gates are mapped onto allowed
  pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import TopologyError


@dataclass(frozen=True)
class QubitPair:
    """A directed allowed qubit pair (source, target) with its address."""

    address: int
    source: int
    target: int

    def as_tuple(self) -> tuple[int, int]:
        """Return the pair as a plain ``(source, target)`` tuple."""
        return (self.source, self.target)

    def __str__(self) -> str:
        return f"({self.source}, {self.target})"


@dataclass
class QuantumChipTopology:
    """The directed-graph description of a quantum chip.

    Parameters
    ----------
    name:
        Human-readable chip name (e.g. ``"surface-7"``).
    qubits:
        Physical addresses of available qubits.  Addresses need not be
        contiguous, but masks are sized by ``max(qubits) + 1``.
    pairs:
        Allowed qubit pairs.  Edge addresses must be unique; both
        endpoints must be available qubits.
    feedlines:
        Optional map feedline-index -> qubits measured through it
        (Fig. 6 shows two feedlines on the seven-qubit chip).
    """

    name: str
    qubits: tuple[int, ...]
    pairs: tuple[QubitPair, ...]
    feedlines: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.qubits:
            raise TopologyError("a chip needs at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise TopologyError("duplicate qubit addresses")
        qubit_set = set(self.qubits)
        seen_addresses: set[int] = set()
        seen_edges: set[tuple[int, int]] = set()
        for pair in self.pairs:
            if pair.address in seen_addresses:
                raise TopologyError(f"duplicate pair address {pair.address}")
            seen_addresses.add(pair.address)
            if pair.source == pair.target:
                raise TopologyError(f"pair {pair} is a self loop")
            if pair.source not in qubit_set or pair.target not in qubit_set:
                raise TopologyError(f"pair {pair} references unknown qubit")
            if pair.as_tuple() in seen_edges:
                raise TopologyError(f"duplicate directed edge {pair}")
            seen_edges.add(pair.as_tuple())
        for feedline, measured in self.feedlines.items():
            for qubit in measured:
                if qubit not in qubit_set:
                    raise TopologyError(
                        f"feedline {feedline} measures unknown qubit {qubit}")

    # ------------------------------------------------------------------
    # Sizing helpers used by the ISA instantiation
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of available qubits."""
        return len(self.qubits)

    @property
    def num_pairs(self) -> int:
        """Number of allowed (directed) qubit pairs."""
        return len(self.pairs)

    @property
    def qubit_mask_width(self) -> int:
        """Bit width of a single-qubit target mask (one bit per address)."""
        return max(self.qubits) + 1

    @property
    def pair_mask_width(self) -> int:
        """Bit width of a two-qubit target mask (one bit per edge address)."""
        if not self.pairs:
            return 0
        return max(pair.address for pair in self.pairs) + 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def pair_by_address(self, address: int) -> QubitPair:
        """Return the allowed pair with the given edge address."""
        for pair in self.pairs:
            if pair.address == address:
                return pair
        raise TopologyError(f"no allowed pair with address {address}")

    def pair_address(self, source: int, target: int) -> int:
        """Return the edge address for a directed (source, target) pair."""
        for pair in self.pairs:
            if pair.source == source and pair.target == target:
                return pair.address
        raise TopologyError(f"({source}, {target}) is not an allowed pair")

    def is_allowed_pair(self, source: int, target: int) -> bool:
        """Whether a directed two-qubit gate (source, target) is legal."""
        return any(p.source == source and p.target == target
                   for p in self.pairs)

    def edges_touching(self, qubit: int) -> tuple[QubitPair, ...]:
        """All allowed pairs that contain ``qubit`` as source or target."""
        return tuple(p for p in self.pairs
                     if p.source == qubit or p.target == qubit)

    def neighbours(self, qubit: int) -> tuple[int, ...]:
        """Qubits connected to ``qubit`` by at least one allowed pair."""
        out: list[int] = []
        for pair in self.pairs:
            if pair.source == qubit and pair.target not in out:
                out.append(pair.target)
            if pair.target == qubit and pair.source not in out:
                out.append(pair.source)
        return tuple(sorted(out))

    def feedline_of(self, qubit: int) -> int | None:
        """The feedline that measures ``qubit``, or None if not assigned."""
        for feedline, measured in self.feedlines.items():
            if qubit in measured:
                return feedline
        return None

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    def to_graph(self) -> nx.DiGraph:
        """Return the topology as a networkx directed graph.

        Vertices carry no attributes; edges carry ``address``.
        """
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self.qubits)
        for pair in self.pairs:
            graph.add_edge(pair.source, pair.target, address=pair.address)
        return graph

    def undirected_connectivity(self) -> nx.Graph:
        """Undirected view, used for mapping distance computations."""
        return self.to_graph().to_undirected()

    def validate_pair_mask(self, mask: int) -> None:
        """Check a two-qubit target mask per Section 4.3.

        A mask is invalid when two selected edges share a qubit: the
        operation-combination stage would have to emit two
        micro-operations on the same qubit, which the paper defines as an
        assembler-rejected error.
        """
        selected = [p for p in self.pairs if (mask >> p.address) & 1]
        used: set[int] = set()
        for pair in selected:
            for qubit in pair.as_tuple():
                if qubit in used:
                    raise TopologyError(
                        f"mask {mask:#x} selects two edges sharing qubit "
                        f"{qubit}")
                used.add(qubit)
