"""Quantum chip topology substrate (Fig. 6 and Section 3.3)."""

from repro.topology.chip import QuantumChipTopology, QubitPair
from repro.topology.library import (
    CHIP_LIBRARY,
    fully_connected_ion_trap,
    get_chip,
    ibm_qx2,
    linear_chain,
    surface7,
    two_qubit_chip,
)

__all__ = [
    "CHIP_LIBRARY",
    "QuantumChipTopology",
    "QubitPair",
    "fully_connected_ion_trap",
    "get_chip",
    "ibm_qx2",
    "linear_chain",
    "surface7",
    "two_qubit_chip",
]
