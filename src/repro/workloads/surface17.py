"""Distance-3 surface code on the 17-qubit chip.

The distance-2 patch of Section 4.1 detects one error; the natural next
step — and the chip the CC-Light control architecture was built toward
— is the distance-3 *surface-17* layout: nine data qubits in a 3x3
grid, four Z-stabilizer and four X-stabilizer ancillas
(:mod:`repro.topology.library` holds the couplings).  This workload
could not run on the repository's plant at all before the stabilizer
tableau backend existed: the dense density matrix for 17 qubits is a
2^17 x 2^17 complex array (~256 GB).  Every gate in a syndrome round is
Clifford, so the tableau backend runs it in polynomial time and the
machine's automatic backend selection picks it whenever the noise
model is Pauli/readout-only.

Check construction reuses the distance-2 building blocks
(:func:`repro.workloads.surface_code.z_check_circuit` /
:func:`x_check_circuit` are layout-agnostic): ancilla in |+> via Y90,
CZ to each data qubit, decode, measure, actively reset via the
conditional ``C_X`` — the paper's own Fig. 4 mechanism.

With data prepared in |0...0> the Z syndromes are deterministic and an
injected X error must fire exactly the Z-checks whose plaquette
contains it; the X-check outcomes on |0...0> are intrinsically random,
so the default experiment omits them (same convention as distance 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Circuit
from repro.core.errors import InvalidRequestError
from repro.topology.library import (
    SURFACE17_DATA_QUBITS,
    SURFACE17_X_CHECKS,
    SURFACE17_Z_CHECKS,
)
from repro.workloads.surface_code import (
    x_check_circuit,
    z_check_circuit,
)

#: Ancillas in measurement order (Z checks, then optional X checks).
SURFACE17_Z_ANCILLAS = tuple(sorted(SURFACE17_Z_CHECKS))
SURFACE17_X_ANCILLAS = tuple(sorted(SURFACE17_X_CHECKS))


def surface17_syndrome_round(circuit: Circuit,
                             include_x_checks: bool = False,
                             reset: bool = True) -> None:
    """Append one full distance-3 syndrome-extraction round.

    The two bulk Z-plaquettes share data qubit 4, so their CZ layers
    serialise there; everything else schedules in parallel and the
    compiler's SOMQ merging packs the identical Y90/measure layers
    into masked operations exactly as on the distance-2 patch.
    ``reset=False`` omits the conditional ``C_X`` ancilla reset — the
    feedback-free variant whose gate sequence cannot fork on per-shot
    outcomes (what the Pauli-frame batched engine requires; with data
    in |0...0> the noise-free Z ancillas end in |0> anyway).
    """
    for ancilla in SURFACE17_Z_ANCILLAS:
        z_check_circuit(circuit, ancilla, SURFACE17_Z_CHECKS[ancilla],
                        reset=reset)
    if include_x_checks:
        for ancilla in SURFACE17_X_ANCILLAS:
            x_check_circuit(circuit, ancilla,
                            SURFACE17_X_CHECKS[ancilla], reset=reset)


def surface17_circuit(rounds: int = 2,
                      error: tuple[str, int] | None = None,
                      error_after_round: int = 0,
                      include_x_checks: bool = False,
                      reset: bool = True) -> Circuit:
    """Distance-3 syndrome-extraction experiment circuit.

    ``error`` optionally injects a Pauli (``("X", data_qubit)`` or
    ``("Z", data_qubit)``) after round ``error_after_round``; a data
    X error must flip exactly the Z-stabilizers whose plaquette
    contains the qubit (one or two of them — distance 3 separates
    every single error).  ``reset=False`` builds the feedback-free
    variant (see :func:`surface17_syndrome_round`).
    """
    if rounds < 1:
        raise InvalidRequestError(
            f"need at least one round, got {rounds}")
    circuit = Circuit(name="surface-code-d3", num_qubits=17)
    for round_index in range(rounds):
        surface17_syndrome_round(circuit,
                                 include_x_checks=include_x_checks,
                                 reset=reset)
        if error is not None and round_index == error_after_round:
            pauli, qubit = error
            if qubit not in SURFACE17_DATA_QUBITS:
                raise InvalidRequestError(
                    f"errors are injected on data qubits, got {qubit}")
            if pauli == "Z":
                circuit.add("Y", qubit)   # Z = X . Y up to phase
                circuit.add("X", qubit)
            else:
                circuit.add(pauli, qubit)
    return circuit


@dataclass(frozen=True)
class Syndrome17:
    """One round's Z-check outcomes, keyed by ancilla address."""

    z_checks: tuple[tuple[int, int], ...]   # (ancilla, bit), sorted

    def bit(self, ancilla: int) -> int:
        for address, value in self.z_checks:
            if address == ancilla:
                return value
        raise KeyError(f"no Z check on ancilla {ancilla}")

    def fired(self) -> bool:
        """Whether any deterministic (Z) check flagged an error."""
        return any(value for _, value in self.z_checks)


def expected_z_syndrome17(
        error: tuple[str, int] | None) -> Syndrome17:
    """Which Z-checks an injected error must fire (data from |0...0>)."""
    if error is None or error[0] != "X":
        return Syndrome17(z_checks=tuple(
            (ancilla, 0) for ancilla in SURFACE17_Z_ANCILLAS))
    qubit = error[1]
    return Syndrome17(z_checks=tuple(
        (ancilla, int(qubit in SURFACE17_Z_CHECKS[ancilla]))
        for ancilla in SURFACE17_Z_ANCILLAS))
