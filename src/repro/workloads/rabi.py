"""Rabi-oscillation calibration workload (Section 5).

"The Rabi oscillation applies an x-rotation pulse on the qubit after
initialization and then measures it.  A sequence of fixed-length
x-rotation pulses with variable amplitudes are used.  Each pulse ...
is configured to be an operation X_Amp_i in eQASM."

This module generates the amplitude-sweep circuits over the
``X_AMP_<i>`` operations registered by
:func:`repro.core.operations.add_rabi_amplitude_operations` and the
ideal reference curve ``P(1) = sin^2(theta_i / 2)``.
"""

from __future__ import annotations

import math

from repro.compiler.ir import Circuit


def rabi_step_circuit(step: int, qubit: int = 2,
                      num_qubits: int = 3) -> Circuit:
    """One Rabi point: the X_AMP_<step> pulse then a measurement."""
    circuit = Circuit(name=f"rabi-{step}", num_qubits=num_qubits)
    circuit.add(f"X_AMP_{step}", qubit)
    circuit.add("MEASZ", qubit)
    return circuit


def rabi_ideal_curve(num_steps: int,
                     max_angle: float = 2.0 * math.pi) -> list[float]:
    """Ideal excited-state population per amplitude step."""
    curve = []
    for step in range(num_steps):
        angle = max_angle * step / (num_steps - 1)
        curve.append(math.sin(angle / 2.0) ** 2)
    return curve


def fit_pi_pulse_step(populations: list[float]) -> int:
    """Calibration outcome: the step whose pulse best implements X.

    The amplitude step with the highest measured excited-state
    population is the calibrated pi-pulse — the quantity the Rabi
    experiment exists to find.
    """
    best_step = 0
    best_value = -1.0
    for step, value in enumerate(populations):
        if value > best_value:
            best_step = step
            best_value = value
    return best_step
