"""Benchmark circuit generators for the paper's workloads."""

from repro.workloads.allxy import (
    ALLXY_PAIRS,
    allxy_ideal_staircase,
    allxy_single_qubit_circuit,
    allxy_two_qubit_circuit,
    allxy_two_qubit_expected,
    two_qubit_allxy_steps,
)
from repro.workloads.clifford import (
    Clifford,
    average_primitives_per_clifford,
    clifford_from_unitary,
    clifford_group,
    compose,
    inverse,
    random_clifford_sequence,
    recovery_clifford,
)
from repro.workloads.coherence import (
    echo_program,
    ramsey_program,
    ramsey_reference,
    sweep_waits,
    t1_program,
    t1_reference,
)
from repro.workloads.grover2q import (
    grover2q_circuit,
    grover2q_ideal_state,
)
from repro.workloads.grover_sqrt import (
    grover_sqrt_circuit,
    grover_sqrt_statistics,
)
from repro.workloads.ising import ising_circuit, ising_statistics
from repro.workloads.rabi import (
    fit_pi_pulse_step,
    rabi_ideal_curve,
    rabi_step_circuit,
)
from repro.workloads.surface17 import (
    SURFACE17_DATA_QUBITS,
    SURFACE17_X_ANCILLAS,
    SURFACE17_Z_ANCILLAS,
    Syndrome17,
    expected_z_syndrome17,
    surface17_circuit,
    surface17_syndrome_round,
)
from repro.workloads.surface49 import (
    SURFACE49_DATA_QUBITS,
    SURFACE49_X_ANCILLAS,
    SURFACE49_Z_ANCILLAS,
    Syndrome49,
    expected_z_syndrome49,
    surface49_circuit,
    surface49_syndrome_round,
)
from repro.workloads.surface_code import (
    Syndrome,
    expected_z_syndrome,
    surface_code_circuit,
    syndrome_round,
)
from repro.workloads.rb import (
    rb_dse_circuit,
    rb_primitive_count,
    rb_sequence_circuit,
    survival_reference,
)

__all__ = [
    "ALLXY_PAIRS",
    "Clifford",
    "allxy_ideal_staircase",
    "allxy_single_qubit_circuit",
    "allxy_two_qubit_circuit",
    "allxy_two_qubit_expected",
    "average_primitives_per_clifford",
    "clifford_from_unitary",
    "clifford_group",
    "echo_program",
    "compose",
    "fit_pi_pulse_step",
    "grover2q_circuit",
    "grover2q_ideal_state",
    "grover_sqrt_circuit",
    "grover_sqrt_statistics",
    "inverse",
    "ising_circuit",
    "ising_statistics",
    "rabi_ideal_curve",
    "ramsey_program",
    "ramsey_reference",
    "rabi_step_circuit",
    "random_clifford_sequence",
    "rb_dse_circuit",
    "rb_primitive_count",
    "rb_sequence_circuit",
    "recovery_clifford",
    "SURFACE17_DATA_QUBITS",
    "SURFACE17_X_ANCILLAS",
    "SURFACE17_Z_ANCILLAS",
    "Syndrome",
    "Syndrome17",
    "survival_reference",
    "surface17_circuit",
    "surface17_syndrome_round",
    "SURFACE49_DATA_QUBITS",
    "SURFACE49_X_ANCILLAS",
    "SURFACE49_Z_ANCILLAS",
    "Syndrome49",
    "expected_z_syndrome49",
    "surface49_circuit",
    "surface49_syndrome_round",
    "surface_code_circuit",
    "syndrome_round",
    "expected_z_syndrome",
    "expected_z_syndrome17",
    "sweep_waits",
    "t1_program",
    "t1_reference",
    "two_qubit_allxy_steps",
]
