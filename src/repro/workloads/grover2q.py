"""Two-qubit Grover's search (Section 5, following DiCarlo et al. [55]).

The proof-of-concept algorithm run on the two-qubit processor: for a
marked state |ab>, one Grover iteration suffices on two qubits and the
ideal output is exactly the marked basis state.

Textbook structure (two CZ gates — the paper finds the algorithmic
fidelity "limited by the CZ gate"):

1. ``H (x) H`` — equal superposition;
2. oracle ``(Z^(1-a) (x) Z^(1-b)) . CZ`` — phase-flips only |ab>;
3. ``H (x) H``;
4. reflection about |00>: ``(Z (x) Z) . CZ`` (equal, up to global
   phase, to ``2|00><00| - I``);
5. ``H (x) H`` — the state is now exactly |ab>.

With ``native=True`` the H and Z gates are decomposed into the
operation set configured for the Section 5 experiments
({I, X, Y, X90, Y90, Xm90, Ym90} + CZ): ``H = X . Y90`` and
``Z = X . Y`` (both exact up to global phase), verified in the tests.
"""

from __future__ import annotations

from repro.compiler.ir import Circuit
from repro.quantum import Statevector, gates


def _emit_h(circuit: Circuit, qubit: int, native: bool) -> None:
    """Hadamard, optionally as the native pulse pair Y90 then X."""
    if native:
        circuit.add("Y90", qubit)
        circuit.add("X", qubit)
    else:
        circuit.add("H", qubit)


def _emit_z(circuit: Circuit, qubit: int, native: bool) -> None:
    """Pauli Z, optionally as the native pulse pair Y then X."""
    if native:
        circuit.add("Y", qubit)
        circuit.add("X", qubit)
    else:
        circuit.add("Z", qubit)


def grover2q_circuit(marked_state: int, qubit_a: int = 0, qubit_b: int = 2,
                     num_qubits: int = 3, native: bool = True,
                     include_measurement: bool = False) -> Circuit:
    """One-iteration two-qubit Grover search for ``marked_state``.

    ``marked_state`` is the two-bit integer ``(a << 1) | b`` with ``a``
    the state of ``qubit_a``.  Default addresses (0 and 2) match the
    Section 5 chip.
    """
    if not 0 <= marked_state <= 3:
        raise ValueError("marked state must be 0..3")
    circuit = Circuit(name=f"grover2q-{marked_state:02b}",
                      num_qubits=num_qubits)
    # 1. Superposition.
    _emit_h(circuit, qubit_a, native)
    _emit_h(circuit, qubit_b, native)
    # 2. Oracle: (Z^(1-b) (x) Z^(1-a)) . CZ phase-flips exactly |ab> —
    # note the crossing: Z acts on qubit a iff the *other* qubit's
    # marked bit is 0 (e.g. flipping |01> needs I (x) Z = Z on b).
    if not marked_state & 1:
        _emit_z(circuit, qubit_a, native)
    if not (marked_state >> 1) & 1:
        _emit_z(circuit, qubit_b, native)
    circuit.add("CZ", qubit_a, qubit_b)
    # 3. Back to the computational basis.
    _emit_h(circuit, qubit_a, native)
    _emit_h(circuit, qubit_b, native)
    # 4. Reflection about |00>.
    _emit_z(circuit, qubit_a, native)
    _emit_z(circuit, qubit_b, native)
    circuit.add("CZ", qubit_a, qubit_b)
    # 5. Decode.
    _emit_h(circuit, qubit_a, native)
    _emit_h(circuit, qubit_b, native)
    if include_measurement:
        circuit.add("MEASZ", qubit_a)
        circuit.add("MEASZ", qubit_b)
    return circuit


def grover2q_ideal_state(marked_state: int) -> Statevector:
    """The ideal two-qubit output state (the marked basis state)."""
    state = Statevector(2)
    circuit = grover2q_circuit(marked_state, qubit_a=0, qubit_b=1,
                               num_qubits=2, native=False)
    for op in circuit:
        state.apply_gate(gates.gate_matrix(op.name), op.qubits)
    return state
