"""The Ising-model DSE benchmark (Section 4.2).

The paper selects from ScaffCC "a parallel algorithm (Ising model using
7 qubits, IM) which has < 1 % two-qubit gates".  The ScaffCC Ising
benchmark performs a digitised adiabatic evolution of a transverse-field
Ising chain: per time step every qubit receives single-qubit rotations
whose angles depend on the site-local fields (J_i, h_i) and the
annealing schedule, while qubit-qubit couplings appear only sparsely —
a circuit of wide parallel single-qubit layers with < 1 % two-qubit
gates.

Because the site fields differ per qubit and the schedule advances per
step, the compiled rotations are *mostly distinct* operations across a
layer (each angle compiles to its own pulse sequence).  That limits how
much SOMQ can merge: the paper reports only ~24/19/9/2 % instruction
reduction from SOMQ for IM at w = 1..4.  This generator reproduces that
structure by drawing each qubit's layer pulses deterministically from
the primitive alphabet, keyed by (qubit, step) — uniform enough to be
parallel, varied enough that a layer holds several distinct operations.
"""

from __future__ import annotations

from repro.compiler.ir import Circuit

#: The pulse alphabet arbitrary compiled rotations decompose into.
_ROTATION_ALPHABET = ("X90", "XM90", "Y90", "YM90", "X", "Y",
                      "H", "Z", "S", "SDG")


def _site_rotation(qubit: int, step: int, layer: int) -> str:
    """Deterministic per-(site, step, layer) pulse name.

    Emulates the distinct compiled angles of site-dependent fields: a
    small multiplicative hash spreads (qubit, step, layer) over the
    alphabet so a 7-qubit layer typically holds ~5 distinct names —
    calibrated so SOMQ merges roughly as much as the paper reports for
    IM (~24 % instruction reduction at w = 1, shrinking with w).
    """
    index = (qubit * 2 + step * 3 + layer * 7) % len(_ROTATION_ALPHABET)
    return _ROTATION_ALPHABET[index]


def ising_circuit(num_qubits: int = 7, steps: int = 120,
                  coupling_every: int = 24,
                  include_measurement: bool = True) -> Circuit:
    """Digitised adiabatic Ising evolution.

    Per step: two single-qubit layers (transverse + local fields) on
    all qubits in parallel, with per-site pulse names.  Every
    ``coupling_every`` steps one layer of nearest-neighbour couplings
    is applied to alternating chain pairs with the native CZ.
    """
    circuit = Circuit(name="ising-im", num_qubits=num_qubits)
    for step in range(steps):
        for layer in range(2):
            for qubit in range(num_qubits):
                circuit.add(_site_rotation(qubit, step, layer), qubit)
        if coupling_every and (step + 1) % coupling_every == 0:
            for left in range(0, num_qubits - 1, 2):
                circuit.add("CZ", left, left + 1)
    if include_measurement:
        for qubit in range(num_qubits):
            circuit.add("MEASZ", qubit)
    return circuit


def ising_statistics(circuit: Circuit) -> dict[str, float]:
    """Workload statistics quoted by the paper for IM."""
    return {
        "gates": float(circuit.gate_count()),
        "two_qubit_fraction": circuit.two_qubit_fraction(),
        "qubits": float(circuit.num_qubits),
    }
