"""The AllXY calibration sequence (Fig. 3 / Fig. 11).

AllXY applies 21 pairs of gates drawn from {I, X, Y, X90, Y90} to a
qubit prepared in |0> and measures it.  The expected outcomes form the
characteristic staircase: the first five pairs leave the qubit in |0>
(F_|1> = 0), the middle twelve in an equal superposition (0.5), and the
final four in |1> (1.0) — "highly sensitive to gate errors".

The two-qubit variant of Section 5 runs both qubits simultaneously with
the sequence modified "to distinguish the qubits on which it is
applied: each gate pair in the sequence is repeated on the first qubit
while the entire sequence is repeated on the second qubit", giving a
42-step sequence whose expectation doubles each staircase plateau for
qubit 0 and repeats the 21-step staircase twice for qubit 2.
"""

from __future__ import annotations

from repro.compiler.ir import Circuit

#: The canonical 21 AllXY gate pairs with their ideal F_|1>.
ALLXY_PAIRS: list[tuple[str, str, float]] = [
    ("I", "I", 0.0),
    ("X", "X", 0.0),
    ("Y", "Y", 0.0),
    ("X", "Y", 0.0),
    ("Y", "X", 0.0),
    ("X90", "I", 0.5),
    ("Y90", "I", 0.5),
    ("X90", "Y90", 0.5),
    ("Y90", "X90", 0.5),
    ("X90", "Y", 0.5),
    ("Y90", "X", 0.5),
    ("X", "Y90", 0.5),
    ("Y", "X90", 0.5),
    ("X90", "X", 0.5),
    ("X", "X90", 0.5),
    ("Y90", "Y", 0.5),
    ("Y", "Y90", 0.5),
    ("X", "I", 1.0),
    ("Y", "I", 1.0),
    ("X90", "X90", 1.0),
    ("Y90", "Y90", 1.0),
]


def allxy_ideal_staircase() -> list[float]:
    """The 21 ideal F_|1> values (the red line of Fig. 11)."""
    return [expected for _, _, expected in ALLXY_PAIRS]


def allxy_single_qubit_circuit(step: int, qubit: int = 0,
                               num_qubits: int = 1) -> Circuit:
    """One AllXY step: the pair applied to one qubit, then MEASZ."""
    first, second, _ = ALLXY_PAIRS[step]
    circuit = Circuit(name=f"allxy-{step}", num_qubits=num_qubits)
    circuit.add(first, qubit)
    circuit.add(second, qubit)
    circuit.add("MEASZ", qubit)
    return circuit


def two_qubit_allxy_steps(qubit_a: int = 0, qubit_b: int = 2
                          ) -> list[tuple[int, int]]:
    """The 42 (step_a, step_b) index pairs of the two-qubit AllXY.

    Qubit A repeats each gate pair (0,0,1,1,...,20,20); qubit B repeats
    the whole sequence (0..20, 0..20).  Gate-pair combination ``i`` of
    Fig. 11 therefore runs pair ``i // 2`` on A and pair ``i % 21`` on B.
    """
    steps = []
    for i in range(42):
        steps.append((i // 2, i % 21))
    return steps


def allxy_two_qubit_circuit(step: int, qubit_a: int = 0, qubit_b: int = 2,
                            num_qubits: int = 3) -> Circuit:
    """One two-qubit AllXY step (Fig. 3's code is step 29 of this).

    Both qubits receive their gate pair simultaneously and are measured
    together (SOMQ-friendly: the compiler merges equal gates and the
    measurement into masked operations).
    """
    step_a, step_b = two_qubit_allxy_steps(qubit_a, qubit_b)[step]
    first_a, second_a, _ = ALLXY_PAIRS[step_a]
    first_b, second_b, _ = ALLXY_PAIRS[step_b]
    circuit = Circuit(name=f"allxy2q-{step}", num_qubits=num_qubits)
    circuit.add(first_a, qubit_a)
    circuit.add(first_b, qubit_b)
    circuit.add(second_a, qubit_a)
    circuit.add(second_b, qubit_b)
    circuit.add("MEASZ", qubit_a)
    circuit.add("MEASZ", qubit_b)
    return circuit


def allxy_two_qubit_expected(step: int) -> tuple[float, float]:
    """Ideal (F_|1> qubit A, F_|1> qubit B) for a two-qubit step."""
    step_a, step_b = two_qubit_allxy_steps()[step]
    return ALLXY_PAIRS[step_a][2], ALLXY_PAIRS[step_b][2]
