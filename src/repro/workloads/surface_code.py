"""Distance-2 surface code on the seven-qubit chip (Section 4.1).

"[The chip] can implement a distance-2 surface code, which can detect
one physical error."  And Section 4.2: "An application that would
benefit significantly from SOMQ is quantum error correction, which
requires performing well-patterned error syndrome measurements
repeatedly presenting high parallelism."

Layout on the Fig. 6 topology (data qubits on the corners, ancillas in
the middle row, all couplings are allowed pairs of the chip):

* data qubits: 0, 1, 5, 6;
* ancilla 2 measures the Z-stabilizer Z0 Z5 (edges (2,0), (2,5));
* ancilla 4 measures the Z-stabilizer Z1 Z6 (edges (4,1), (4,6));
* ancilla 3 measures the X-stabilizer X0 X1 X5 X6
  (edges (3,0), (3,1), (3,5), (3,6) via their reverses).

All checks are built from the native gate set: ancilla in |+> (Y90),
CZ to each data qubit, decode with Ym90, measure.  X-checks conjugate
the data qubits with Ym90/Y90 so the CZ parity picks up X instead
of Z.

A syndrome round is highly parallel and well-patterned: the two
Z-checks run simultaneously (disjoint qubits), and the compiler's SOMQ
merging packs the identical Y90/measure layers into masked operations
— the quantified benefit is shown in ``benchmarks/bench_surface_code.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Circuit
from repro.core.errors import InvalidRequestError

DATA_QUBITS = (0, 1, 5, 6)
Z_CHECKS = {2: (0, 5), 4: (1, 6)}     # ancilla -> data pair
X_CHECK = {3: (0, 1, 5, 6)}           # ancilla -> data plaquette
ANCILLAS = (2, 3, 4)


def ancilla_reset(circuit: Circuit, ancilla: int,
                  pad_cycles: int = 4) -> None:
    """Active ancilla reset via fast conditional execution.

    After a syndrome measurement the ancilla stays in the measured
    state; reusing it next round would alternate odd-parity outcomes.
    The reset is the paper's own mechanism (Fig. 4): a ``C_X``
    conditioned on the last result being |1>.  ``pad_cycles`` identity
    pulses keep the conditional gate behind the execution-flag update
    (result transport + ingest + flag refresh ≈ 3 cycles past the
    15-cycle integration window).
    """
    for _ in range(pad_cycles):
        circuit.add("I", ancilla)
    circuit.add("C_X", ancilla)


def z_check_circuit(circuit: Circuit, ancilla: int,
                    data: tuple[int, ...],
                    reset: bool = True) -> None:
    """Append one CZ-based Z-parity check: outcome = parity of data."""
    circuit.add("Y90", ancilla)
    for qubit in data:
        circuit.add("CZ", ancilla, qubit)
    circuit.add("YM90", ancilla)
    circuit.add("MEASZ", ancilla)
    if reset:
        ancilla_reset(circuit, ancilla)


def x_check_circuit(circuit: Circuit, ancilla: int,
                    data: tuple[int, ...],
                    reset: bool = True) -> None:
    """Append one X-parity check (data conjugated into the X basis)."""
    circuit.add("Y90", ancilla)
    for qubit in data:
        circuit.add("YM90", qubit)
    for qubit in data:
        circuit.add("CZ", ancilla, qubit)
    for qubit in data:
        circuit.add("Y90", qubit)
    circuit.add("YM90", ancilla)
    circuit.add("MEASZ", ancilla)
    if reset:
        ancilla_reset(circuit, ancilla)


def syndrome_round(circuit: Circuit, include_x_check: bool = True) -> None:
    """Append one full syndrome-extraction round.

    The two Z-checks are emitted first (they share no qubits and
    schedule in parallel), then the X-check (its plaquette overlaps
    both Z-checks' data, so it serialises after them).
    """
    for ancilla, data in Z_CHECKS.items():
        z_check_circuit(circuit, ancilla, data)
    if include_x_check:
        for ancilla, data in X_CHECK.items():
            x_check_circuit(circuit, ancilla, data)


def surface_code_circuit(rounds: int = 1,
                         error: tuple[str, int] | None = None,
                         error_after_round: int = 0,
                         include_x_check: bool = False) -> Circuit:
    """Syndrome-extraction experiment circuit.

    ``error`` optionally injects a Pauli (``("X", data_qubit)`` or
    ``("Z", data_qubit)``) after round ``error_after_round`` —
    emulating a physical fault the code must detect.  With data
    prepared in |0000> the Z-check outcomes are deterministic, so the
    default experiment omits the X-check (whose outcome on |0000> is
    intrinsically random); set ``include_x_check`` for full rounds.
    """
    circuit = Circuit(name="surface-code-d2", num_qubits=7)
    for round_index in range(rounds):
        syndrome_round(circuit, include_x_check=include_x_check)
        if error is not None and round_index == error_after_round:
            pauli, qubit = error
            if qubit not in DATA_QUBITS:
                raise InvalidRequestError(
                    f"errors are injected on data qubits, got {qubit}")
            if pauli == "Z":
                # Z = X . Y up to phase in the native set.
                circuit.add("Y", qubit)
                circuit.add("X", qubit)
            else:
                circuit.add(pauli, qubit)
    return circuit


@dataclass(frozen=True)
class Syndrome:
    """One round's ancilla outcomes."""

    z_check_2: int   # parity of Z0 Z5
    z_check_4: int   # parity of Z1 Z6
    x_check_3: int | None = None

    def fired(self) -> bool:
        """Whether any deterministic (Z) check flagged an error."""
        return bool(self.z_check_2 or self.z_check_4)


def expected_z_syndrome(error: tuple[str, int] | None) -> Syndrome:
    """Which Z-checks an injected error must fire (data from |0000>)."""
    if error is None or error[0] != "X":
        return Syndrome(z_check_2=0, z_check_4=0)
    qubit = error[1]
    return Syndrome(z_check_2=int(qubit in Z_CHECKS[2]),
                    z_check_4=int(qubit in Z_CHECKS[4]))
