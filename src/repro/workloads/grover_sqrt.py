"""The square-root DSE benchmark (Section 4.2).

The paper selects from ScaffCC "a relatively sequential algorithm
(Grover's algorithm to calculate the square root using 8 qubits, which
is the minimum number of qubits required, SR), which has ~39 %
two-qubit gates".

The ScaffCC square-root benchmark is Grover search over an n-bit
register where the oracle computes ``x * x == N`` into an ancilla;
after decomposition to the {1q, CNOT} gate set the circuit is dominated
by Toffoli ladders — long sequential CNOT/T chains with the quoted
two-qubit-gate fraction (a decomposed Toffoli is 6 CNOTs out of 15
gates = 40 %).

This generator builds that structure for 8 qubits (4 data + 3 work +
1 oracle ancilla): Grover iterations of [oracle: multiply-compare
Toffoli cascade] + [diffusion: H layer + multi-controlled Z].  Tests
assert the ~39 % two-qubit fraction and the low parallelism the paper
relies on.
"""

from __future__ import annotations

from repro.compiler.ir import Circuit


def toffoli(circuit: Circuit, control_a: int, control_b: int,
            target: int) -> None:
    """Standard 6-CNOT Toffoli decomposition (15 gates, 40 % 2q)."""
    circuit.add("H", target)
    circuit.add("CNOT", control_b, target)
    circuit.add("TDG", target)
    circuit.add("CNOT", control_a, target)
    circuit.add("T", target)
    circuit.add("CNOT", control_b, target)
    circuit.add("TDG", target)
    circuit.add("CNOT", control_a, target)
    circuit.add("T", control_b)
    circuit.add("T", target)
    circuit.add("H", target)
    circuit.add("CNOT", control_a, control_b)
    circuit.add("T", control_a)
    circuit.add("TDG", control_b)
    circuit.add("CNOT", control_a, control_b)


def multi_controlled_z(circuit: Circuit, controls: list[int],
                       target: int, work: list[int]) -> None:
    """Multi-controlled Z via a Toffoli ladder into work qubits."""
    if len(controls) == 1:
        circuit.add("H", target)
        circuit.add("CNOT", controls[0], target)
        circuit.add("H", target)
        return
    if len(controls) == 2:
        circuit.add("H", target)
        toffoli(circuit, controls[0], controls[1], target)
        circuit.add("H", target)
        return
    if len(work) < len(controls) - 2:
        raise ValueError("not enough work qubits for the ladder")
    # Compute the AND chain into work qubits.
    toffoli(circuit, controls[0], controls[1], work[0])
    for i in range(2, len(controls) - 1):
        toffoli(circuit, controls[i], work[i - 2], work[i - 1])
    # Controlled-Z from the last control and the chain head.
    circuit.add("H", target)
    toffoli(circuit, controls[-1], work[len(controls) - 3], target)
    circuit.add("H", target)
    # Uncompute the chain.
    for i in range(len(controls) - 2, 1, -1):
        toffoli(circuit, controls[i], work[i - 2], work[i - 1])
    toffoli(circuit, controls[0], controls[1], work[0])


def oracle_square_compare(circuit: Circuit, data: list[int],
                          work: list[int], ancilla: int,
                          target_value: int) -> None:
    """Oracle marking |x> with x*x == target (schematic decomposition).

    The ScaffCC oracle computes the square with ripple multipliers; the
    dominant cost is the Toffoli cascade per partial product.  We model
    one cascade per data-bit pair plus the comparison, which matches the
    real benchmark's structure (sequential Toffoli chains) and keeps the
    gate mix at the quoted fraction.
    """
    n = len(data)
    # Partial products: Toffoli per (i, j) pair into work qubits.
    for i in range(n):
        for j in range(i + 1, n):
            toffoli(circuit, data[i], data[j], work[(i + j) % len(work)])
    # Comparison with the constant: X gates select the matching pattern,
    # then a multi-controlled Z onto the ancilla.
    for i, bit in enumerate(reversed(range(n))):
        if not (target_value >> i) & 1:
            circuit.add("X", data[bit])
    multi_controlled_z(circuit, data[:-1], ancilla, work)
    for i, bit in enumerate(reversed(range(n))):
        if not (target_value >> i) & 1:
            circuit.add("X", data[bit])
    # Uncompute partial products.
    for i in reversed(range(n)):
        for j in reversed(range(i + 1, n)):
            toffoli(circuit, data[i], data[j], work[(i + j) % len(work)])


def diffusion(circuit: Circuit, data: list[int], work: list[int]) -> None:
    """Grover diffusion on the data register."""
    for qubit in data:
        circuit.add("H", qubit)
    for qubit in data:
        circuit.add("X", qubit)
    multi_controlled_z(circuit, data[:-1], data[-1], work)
    for qubit in data:
        circuit.add("X", qubit)
    for qubit in data:
        circuit.add("H", qubit)


def grover_sqrt_circuit(iterations: int = 3, target_value: int = 9,
                        include_measurement: bool = True) -> Circuit:
    """The 8-qubit SR benchmark circuit.

    4 data qubits, 3 work qubits, 1 oracle ancilla = 8 qubits (the
    paper's "minimum number of qubits required").
    """
    circuit = Circuit(name="grover-sqrt", num_qubits=8)
    data = [0, 1, 2, 3]
    work = [4, 5, 6]
    ancilla = 7
    for qubit in data:
        circuit.add("H", qubit)
    for _ in range(iterations):
        oracle_square_compare(circuit, data, work, ancilla, target_value)
        diffusion(circuit, data, work)
    if include_measurement:
        for qubit in data:
            circuit.add("MEASZ", qubit)
    return circuit


def grover_sqrt_statistics(circuit: Circuit) -> dict[str, float]:
    """Workload statistics quoted by the paper for SR."""
    return {
        "gates": float(circuit.gate_count()),
        "two_qubit_fraction": circuit.two_qubit_fraction(),
        "qubits": float(circuit.num_qubits),
    }
