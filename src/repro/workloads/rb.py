"""Randomized-benchmarking sequence generation (Figs. 7 and 12).

Two uses in the paper:

* **DSE workload** (Section 4.2): "Each qubit is subject to 4096
  single-qubit Clifford gates which have been decomposed into x and y
  rotations.  Because every gate happens immediately following the
  previous one" — independent per-qubit random streams, back to back,
  maximally parallel across qubits.
* **Experiment** (Section 5 / Fig. 12): sequences of k random Cliffords
  plus the recovery Clifford, run for several k and several intervals
  between gate starting points, fit to an exponential decay.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Circuit
from repro.workloads.clifford import (
    Clifford,
    random_clifford_sequence,
    recovery_clifford,
)


def rb_sequence_circuit(num_cliffords: int, rng: np.random.Generator,
                        qubit: int = 0, num_qubits: int = 1,
                        include_recovery: bool = True,
                        include_measurement: bool = True) -> Circuit:
    """One RB sequence on one qubit as a primitive-gate circuit.

    ``num_cliffords`` random Cliffords, the recovery Clifford, and a
    final measurement; every Clifford is expanded into its x/y
    primitive decomposition.
    """
    circuit = Circuit(name=f"rb-k{num_cliffords}", num_qubits=num_qubits)
    sequence = random_clifford_sequence(num_cliffords, rng)
    if include_recovery:
        sequence = sequence + [recovery_clifford(sequence)]
    for clifford in sequence:
        for primitive in clifford.decomposition:
            circuit.add(primitive, qubit)
    if include_measurement:
        circuit.add("MEASZ", qubit)
    return circuit


def rb_primitive_count(sequence: list[Clifford]) -> int:
    """Physical pulses in a Clifford sequence."""
    return sum(clifford.num_primitives for clifford in sequence)


def rb_dse_circuit(num_qubits: int = 7, cliffords_per_qubit: int = 4096,
                   seed: int = 2019) -> Circuit:
    """The Fig. 7 RB workload: independent streams on every qubit.

    Per-qubit random Clifford streams are expanded to primitives and
    interleaved *by primitive index*: primitive ``i`` of every qubit
    shares one timing point, reproducing "every gate happens
    immediately following the previous one" with maximal cross-qubit
    parallelism (the streams have different lengths, so later points
    thin out — exactly the behaviour an ASAP schedule produces).
    """
    rng = np.random.default_rng(seed)
    streams: list[list[str]] = []
    for _ in range(num_qubits):
        sequence = random_clifford_sequence(cliffords_per_qubit, rng)
        primitives = [name for clifford in sequence
                      for name in clifford.decomposition]
        streams.append(primitives)
    circuit = Circuit(name="rb-dse", num_qubits=num_qubits)
    depth = max(len(stream) for stream in streams)
    for position in range(depth):
        for qubit, stream in enumerate(streams):
            if position < len(stream):
                circuit.add(stream[position], qubit)
    return circuit


def survival_reference(num_cliffords: int,
                       error_per_clifford: float) -> float:
    """Ideal RB decay model: p(k) = 0.5 + 0.5 * f^k with
    f = 1 - 2 * error_per_clifford (depolarizing parameter for d=2)."""
    decay = 1.0 - 2.0 * error_per_clifford
    return 0.5 + 0.5 * decay ** num_cliffords
