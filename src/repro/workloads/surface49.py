"""Distance-5 surface code on the 49-qubit chip.

The scaling step the declarative encoding spec unlocks: 25 data qubits
in a 5x5 grid, 12 Z- and 12 X-stabilizer ancillas
(:func:`repro.topology.library.rotated_surface_checks` generates the
layout; :func:`repro.topology.library.surface49` holds the couplings).
A dense simulation of 49 qubits is out of the question (a 2^49 x 2^49
density matrix); every gate in a syndrome round is Clifford, so the
bit-packed stabilizer tableau backend (~10k tableau bits at 49 qubits)
runs it in polynomial time and the machine's automatic backend
selection picks it for Pauli/readout-only noise.

Check construction reuses the layout-agnostic distance-2 builders
(:func:`repro.workloads.surface_code.z_check_circuit` /
:func:`x_check_circuit`).  When X checks are included the round
*interleaves* the two groups (Z, X, Z, X ... in plaquette order)
instead of emitting all Z checks first: neighbouring Z and X plaquettes
share no ancilla and only touch partially-overlapping data, so the
scheduler overlaps more of the 24 checks per round than the
grouped order allows.

With data prepared in |0...0> the Z syndromes are deterministic and an
injected X error must fire exactly the Z-checks whose plaquette
contains it; X-check outcomes on |0...0> are intrinsically random, so
the default experiment omits them (same convention as distances 2/3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest

from repro.compiler.ir import Circuit
from repro.core.errors import InvalidRequestError
from repro.topology.library import (
    SURFACE49_DATA_QUBITS,
    SURFACE49_X_CHECKS,
    SURFACE49_Z_CHECKS,
)
from repro.workloads.surface_code import (
    x_check_circuit,
    z_check_circuit,
)

#: Ancillas in measurement order (Z checks, then optional X checks).
SURFACE49_Z_ANCILLAS = tuple(sorted(SURFACE49_Z_CHECKS))
SURFACE49_X_ANCILLAS = tuple(sorted(SURFACE49_X_CHECKS))


def surface49_syndrome_round(circuit: Circuit,
                             include_x_checks: bool = False,
                             reset: bool = True) -> None:
    """Append one full distance-5 syndrome-extraction round.

    Z and X checks are interleaved in plaquette order (see the module
    docstring).  ``reset=False`` omits the conditional ``C_X`` ancilla
    reset — the feedback-free variant whose gate sequence cannot fork
    on per-shot outcomes (what the Pauli-frame batched engine
    requires; with data in |0...0> the noise-free Z ancillas end in
    |0> anyway).
    """
    x_ancillas = SURFACE49_X_ANCILLAS if include_x_checks else ()
    for z_ancilla, x_ancilla in zip_longest(SURFACE49_Z_ANCILLAS,
                                            x_ancillas):
        if z_ancilla is not None:
            z_check_circuit(circuit, z_ancilla,
                            SURFACE49_Z_CHECKS[z_ancilla], reset=reset)
        if x_ancilla is not None:
            x_check_circuit(circuit, x_ancilla,
                            SURFACE49_X_CHECKS[x_ancilla], reset=reset)


def surface49_circuit(rounds: int = 1,
                      error: tuple[str, int] | None = None,
                      error_after_round: int = 0,
                      include_x_checks: bool = False,
                      reset: bool = True) -> Circuit:
    """Distance-5 syndrome-extraction experiment circuit.

    ``error`` optionally injects a Pauli (``("X", data_qubit)`` or
    ``("Z", data_qubit)``) after round ``error_after_round``; a data
    X error must flip exactly the Z-stabilizers whose plaquette
    contains the qubit (one or two of them — distance 5 separates
    every single error).  ``reset=False`` builds the feedback-free
    variant (see :func:`surface49_syndrome_round`).
    """
    if rounds < 1:
        raise InvalidRequestError(
            f"need at least one round, got {rounds}")
    circuit = Circuit(name="surface-code-d5", num_qubits=49)
    for round_index in range(rounds):
        surface49_syndrome_round(circuit,
                                 include_x_checks=include_x_checks,
                                 reset=reset)
        if error is not None and round_index == error_after_round:
            pauli, qubit = error
            if qubit not in SURFACE49_DATA_QUBITS:
                raise InvalidRequestError(
                    f"errors are injected on data qubits, got {qubit}")
            if pauli == "Z":
                circuit.add("Y", qubit)   # Z = X . Y up to phase
                circuit.add("X", qubit)
            else:
                circuit.add(pauli, qubit)
    return circuit


@dataclass(frozen=True)
class Syndrome49:
    """One round's Z-check outcomes, keyed by ancilla address."""

    z_checks: tuple[tuple[int, int], ...]   # (ancilla, bit), sorted

    def bit(self, ancilla: int) -> int:
        for address, value in self.z_checks:
            if address == ancilla:
                return value
        raise KeyError(f"no Z check on ancilla {ancilla}")

    def fired(self) -> bool:
        """Whether any deterministic (Z) check flagged an error."""
        return any(value for _, value in self.z_checks)


def expected_z_syndrome49(
        error: tuple[str, int] | None) -> Syndrome49:
    """Which Z-checks an injected error must fire (data from |0...0>)."""
    if error is None or error[0] != "X":
        return Syndrome49(z_checks=tuple(
            (ancilla, 0) for ancilla in SURFACE49_Z_ANCILLAS))
    qubit = error[1]
    return Syndrome49(z_checks=tuple(
        (ancilla, int(qubit in SURFACE49_Z_CHECKS[ancilla]))
        for ancilla in SURFACE49_Z_ANCILLAS))
