"""The single-qubit Clifford group and its x/y-rotation decomposition.

Randomized benchmarking (Figs. 7 and 12) applies random Clifford gates
"which have been decomposed into x and y rotations"; "because each
Clifford gate is decomposed into primitive x- and y-rotations the gate
count is increased by 1.875 on average" (Section 5).

This module derives the 24 Cliffords and, by breadth-first search over
the primitive set {X90, Xm90, X, Y90, Ym90, Y} (with I for the identity
class), a minimal decomposition for each.  The search reproduces the
1.875 average primitive count of the paper.  It also provides the group
operations RB needs: composition, inversion, and the recovery Clifford
that returns a sequence to the identity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.errors import ConfigurationError
from repro.quantum import gates

#: The primitive pulses available on the hardware (plus I).
PRIMITIVES: dict[str, np.ndarray] = {
    "I": gates.I,
    "X90": gates.X90,
    "XM90": gates.XM90,
    "X": gates.X,
    "Y90": gates.Y90,
    "YM90": gates.YM90,
    "Y": gates.Y,
}


def _canonical_key(unitary: np.ndarray) -> tuple:
    """A hashable form of a 2x2 unitary, unique up to global phase.

    The phase is fixed by the *first* entry whose magnitude exceeds a
    threshold (all Clifford entries have magnitude 0, 1/2, 1/sqrt(2) or
    1, so 0.3 separates zero from non-zero robustly); entries are then
    rounded coarsely enough that accumulated float error cannot split
    one group element into two keys.
    """
    flat = unitary.ravel()
    index = next(i for i, x in enumerate(flat) if abs(x) > 0.3)
    phase = flat[index] / abs(flat[index])
    normalised = unitary / phase
    rounded = np.round(normalised, 6) + 0.0
    return tuple((float(x.real), float(x.imag)) for x in rounded.ravel())


@dataclass(frozen=True)
class Clifford:
    """One element of the single-qubit Clifford group."""

    index: int
    decomposition: tuple[str, ...]  # primitive names, applied in order

    @property
    def num_primitives(self) -> int:
        """Physical pulses needed (the identity costs one I pulse)."""
        return len(self.decomposition)

    def unitary(self) -> np.ndarray:
        """The 2x2 unitary (primitives applied left-to-right in time)."""
        matrix = np.eye(2, dtype=complex)
        for name in self.decomposition:
            matrix = PRIMITIVES[name] @ matrix
        return matrix


@lru_cache(maxsize=1)
def clifford_group() -> tuple[Clifford, ...]:
    """The 24 single-qubit Cliffords with minimal decompositions.

    BFS over products of the six non-identity primitives, shortest
    product first (ties broken deterministically by generation order);
    the identity class is assigned the single physical ``I`` pulse.
    """
    found: dict[tuple, tuple[str, ...]] = {}
    identity_key = _canonical_key(np.eye(2, dtype=complex))
    found[identity_key] = ("I",)
    frontier: list[tuple[np.ndarray, tuple[str, ...]]] = [
        (np.eye(2, dtype=complex), ())]
    generators = [name for name in PRIMITIVES if name != "I"]
    while len(found) < 24 and frontier:
        next_frontier = []
        for matrix, names in frontier:
            for generator in generators:
                candidate = PRIMITIVES[generator] @ matrix
                key = _canonical_key(candidate)
                sequence = names + (generator,)
                if key not in found:
                    found[key] = sequence
                    next_frontier.append((candidate, sequence))
        frontier = next_frontier
    if len(found) != 24:
        raise ConfigurationError(
            f"Clifford enumeration found {len(found)} elements, "
            f"expected 24")
    ordered = sorted(found.values(), key=lambda seq: (len(seq), seq))
    return tuple(Clifford(index=i, decomposition=seq)
                 for i, seq in enumerate(ordered))


def average_primitives_per_clifford() -> float:
    """Mean physical pulses per Clifford (paper: 1.875)."""
    group = clifford_group()
    return sum(c.num_primitives for c in group) / len(group)


@lru_cache(maxsize=1)
def _key_to_index() -> dict:
    return {_canonical_key(c.unitary()): c.index for c in clifford_group()}


def clifford_from_unitary(unitary: np.ndarray) -> Clifford:
    """The group element equal (up to phase) to a unitary."""
    key = _canonical_key(unitary)
    table = _key_to_index()
    if key not in table:
        raise ConfigurationError("matrix is not a Clifford")
    return clifford_group()[table[key]]


@lru_cache(maxsize=1)
def _composition_table() -> dict[tuple[int, int], int]:
    """table[(a, b)] = index of Clifford b∘a (a applied first)."""
    group = clifford_group()
    table = {}
    for a, b in itertools.product(group, group):
        product = b.unitary() @ a.unitary()
        table[(a.index, b.index)] = clifford_from_unitary(product).index
    return table


def compose(first: Clifford, second: Clifford) -> Clifford:
    """The Clifford equal to applying ``first`` then ``second``."""
    index = _composition_table()[(first.index, second.index)]
    return clifford_group()[index]


@lru_cache(maxsize=1)
def _inverse_table() -> dict[int, int]:
    group = clifford_group()
    identity = clifford_from_unitary(np.eye(2, dtype=complex)).index
    table = {}
    for element in group:
        for candidate in group:
            if _composition_table()[(element.index,
                                     candidate.index)] == identity:
                table[element.index] = candidate.index
                break
    return table


def inverse(element: Clifford) -> Clifford:
    """The group inverse of a Clifford."""
    return clifford_group()[_inverse_table()[element.index]]


def recovery_clifford(sequence: list[Clifford]) -> Clifford:
    """The Clifford that inverts an applied sequence.

    RB appends this so "the qubit should end up in the |0> state"
    (Section 5).
    """
    group = clifford_group()
    identity = clifford_from_unitary(np.eye(2, dtype=complex))
    accumulated = identity
    for element in sequence:
        accumulated = compose(accumulated, element)
    return inverse(accumulated)


def random_clifford_sequence(length: int,
                             rng: np.random.Generator) -> list[Clifford]:
    """``length`` uniformly random Cliffords."""
    group = clifford_group()
    return [group[int(rng.integers(0, len(group)))]
            for _ in range(length)]
