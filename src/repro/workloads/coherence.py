"""Coherence-time calibration workloads: T1, Ramsey, and echo.

Section 2.2 makes "some quantum experiments such as measuring the
relaxation time of qubits (T1 experiment)" an explicit design
requirement for eQASM's timing support — the experiment *is* a timing
sweep.  These workloads exercise exactly that: a pulse, a programmed
variable wait (QWAIT with a swept immediate), and a measurement.

* **T1**: X pulse -> wait t -> measure; P(1) decays as exp(-t/T1);
* **Ramsey (T2*)**: X90 -> wait t -> X90 -> measure; decays with Tphi
  and T1 combined;
* **Echo (T2)**: X90 -> wait t/2 -> X -> wait t/2 -> X90 -> measure;
  the refocusing pulse cancels quasi-static dephasing (in this plant's
  Markovian model, echo and Ramsey coincide — documented in the
  experiment docstring).
"""

from __future__ import annotations

import math

from repro.compiler.ir import Circuit
from repro.core.program import Program
from repro.core.instructions import Bundle, BundleOperation, QWait, SMIS, \
    Stop


def t1_program(qubit: int, wait_cycles: int,
               initialize_cycles: int = 10000) -> Program:
    """Hand-rolled eQASM for one T1 point (pulse, wait, measure)."""
    program = Program()
    program.append(SMIS(sd=0, qubits=frozenset({qubit})))
    program.append(QWait(cycles=initialize_cycles))
    program.append(Bundle(operations=(BundleOperation("X", ("S", 0)),),
                          pi=1))
    program.append(QWait(cycles=wait_cycles))
    program.append(Bundle(operations=(BundleOperation("MEASZ", ("S", 0)),),
                          pi=0))
    program.append(QWait(cycles=50))
    program.append(Stop())
    return program


def ramsey_program(qubit: int, wait_cycles: int,
                   initialize_cycles: int = 10000) -> Program:
    """One Ramsey point: X90, wait, X90, measure."""
    program = Program()
    program.append(SMIS(sd=0, qubits=frozenset({qubit})))
    program.append(QWait(cycles=initialize_cycles))
    program.append(Bundle(operations=(BundleOperation("X90", ("S", 0)),),
                          pi=1))
    program.append(QWait(cycles=wait_cycles))
    program.append(Bundle(operations=(BundleOperation("X90", ("S", 0)),),
                          pi=0))
    program.append(Bundle(operations=(BundleOperation("MEASZ", ("S", 0)),),
                          pi=1))
    program.append(QWait(cycles=50))
    program.append(Stop())
    return program


def echo_program(qubit: int, wait_cycles: int,
                 initialize_cycles: int = 10000) -> Program:
    """One Hahn-echo point: X90, wait/2, X, wait/2, X90, measure."""
    half = max(wait_cycles // 2, 1)
    program = Program()
    program.append(SMIS(sd=0, qubits=frozenset({qubit})))
    program.append(QWait(cycles=initialize_cycles))
    program.append(Bundle(operations=(BundleOperation("X90", ("S", 0)),),
                          pi=1))
    program.append(QWait(cycles=half))
    program.append(Bundle(operations=(BundleOperation("X", ("S", 0)),),
                          pi=0))
    program.append(QWait(cycles=half))
    program.append(Bundle(operations=(BundleOperation("X90", ("S", 0)),),
                          pi=0))
    program.append(Bundle(operations=(BundleOperation("MEASZ", ("S", 0)),),
                          pi=1))
    program.append(QWait(cycles=50))
    program.append(Stop())
    return program


def t1_reference(wait_ns: float, t1_ns: float) -> float:
    """Ideal excited-state population after a T1 wait."""
    return math.exp(-wait_ns / t1_ns)


def ramsey_reference(wait_ns: float, decoherence) -> float:
    """Exact P(1) after X90-wait-X90 under a decoherence model.

    Computed directly through the same Kraus channel the plant applies
    (no hand-derived closed form to drift out of sync): prepare the
    equator state, idle, rotate back, read the population.
    """
    from repro.quantum import DensityMatrix, gates
    rho = DensityMatrix(1)
    rho.apply_gate(gates.X90, (0,))
    rho.apply_channel(decoherence.idle_channel(wait_ns), (0,))
    rho.apply_gate(gates.X90, (0,))
    return rho.probability_one(0)


def sweep_waits(max_cycles: int, count: int) -> list[int]:
    """Roughly log-spaced wait durations for a decay sweep."""
    if count < 2:
        raise ValueError("need at least two sweep points")
    waits = sorted({max(1, round(max_cycles ** (i / (count - 1))))
                    for i in range(count)})
    return waits
