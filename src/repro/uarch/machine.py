"""QuMA v2: the quantum control microarchitecture (Fig. 9), simulated.

The machine executes an assembled eQASM binary against a quantum plant.
It is organised exactly as the paper's block diagram:

* a **classical pipeline** (100 MHz) fetches and executes instructions
  in order — auxiliary classical instructions locally, quantum
  instructions forwarded to the quantum pipeline; ``FMR`` stalls while
  the addressed Q register is invalid (the CFC counter mechanism);
* the **quantum pipeline** (reserve phase) builds timing points and
  per-qubit micro-operations (:mod:`repro.uarch.quantum_pipeline`);
* the **device event distributor** groups micro-ops per device and the
  **timing controller** (50 MHz) triggers each device operation at its
  timing point — events are simulated with a global chronological
  queue, so fast-conditional flag reads always observe the flag state
  of their trigger instant;
* **fast conditional execution** checks the selected execution flag of
  each target qubit at trigger time and cancels or releases the
  micro-operation;
* the **measurement discrimination unit** starts readouts on the plant
  and returns (or fabricates, for CFC verification) results which
  update the Q registers and execution flags after the transport and
  ingest latencies.

Timeline anchoring: the deterministic-domain timer starts when the
first timing point's reservation completes (the paper's "external
trigger" starting the timeline), so the first operation fires as soon
as the pipeline has filled and all later points keep their programmed
relative timing.  If a later point is reserved after its trigger was
due, the machine either raises (``late_policy="strict"``) or stalls the
timer and records the slip (``"slip"``) — this is the quantum-operation
issue-rate problem made observable.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.assembler import AssembledProgram
from repro.core.encoding import InstructionDecoder
from repro.core.errors import (
    ConfigurationError,
    EQASMError,
    QueueOverflowError,
    RuntimeFault,
    ShotTimeoutError,
    TimingViolationError,
)
from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.isa import EQASMInstantiation
from repro.core.microcode import MicrocodeUnit, MicroOpRole
from repro.core.operations import ExecutionFlag
from repro.core.registers import (
    ComparisonFlags,
    DataMemory,
    ExecutionFlagsFile,
    GPRFile,
    MeasurementResultRegisters,
    to_signed32,
    to_unsigned32,
)
from repro.quantum.pauli_frame import FrameRecorder, propagate_frames
from repro.quantum.plant import QuantumPlant
from repro.quantum.stabilizer import cached_clifford_action
from repro.uarch.config import UarchConfig
from repro.uarch.devices import (
    DeviceEventDistributor,
    DeviceId,
    DeviceOperation,
    EventQueue,
    PulseLibrary,
    QubitMicroOp,
)
from repro.uarch.dataflow import DataMemoryReport, analyze_data_memory
from repro.uarch.faults import FaultPlan
from repro.uarch.measurement import MeasurementUnit, PendingResult
from repro.uarch.quantum_pipeline import QuantumPipeline, ReservedPoint
from repro.uarch.replay import (
    EngineStats,
    MeasurementSample,
    ReplayAudit,
    TimelineTree,
    replay_unsupported_reason,
    replay_unsupported_reasons,
)

from repro.uarch.trace import (
    ResultRecord,
    ShotCounts,
    ShotTrace,
    SlipRecord,
    TriggerRecord,
)

#: Bound on retained cross-run timeline trees (LRU eviction).
_TREE_CACHE_CAPACITY = 16

#: Shots per vectorised Pauli-frame propagation batch: large enough to
#: amortise the per-step numpy dispatch, small enough that the frame
#: and outcome matrices stay cache-friendly and the first traces reach
#: a streaming run_iter consumer promptly.
_FRAME_CHUNK_SHOTS = 16384

#: Bound on retained dataflow analyses (LRU keyed by binary words), so
#: sweeps that reload many distinct binaries into one machine stop
#: recomputing the exploded graph per load().
_DATAFLOW_CACHE_CAPACITY = 64


#: Events at equal timestamps resolve by priority: measurement results
#: and the flag/Q-register updates they cause settle within the cycle,
#: before the timing controller's trigger of that cycle evaluates any
#: execution flag ("once there returns a measurement result ... the
#: fast conditional execution unit immediately updates the execution
#: flags", Section 4.3).
_EVENT_PRIORITY = {"result": 0, "flag": 1, "qreg": 1, "trigger": 2}


@dataclass(order=True, slots=True)
class _Event:
    """A deterministic-domain event, ordered by time, priority, sequence."""

    time_ns: float
    priority: int
    sequence: int
    kind: str = field(compare=False)       # trigger | result | flag | qreg
    payload: object = field(compare=False, default=None)


class QuMAv2:
    """The microarchitecture simulator.

    Parameters
    ----------
    isa:
        The eQASM instantiation (operation set + topology + widths).
    plant:
        The quantum plant behind the ADI.
    config:
        Clock/latency/queue parameters; defaults to the calibrated
        paper-like configuration.
    """

    def __init__(self, isa: EQASMInstantiation, plant: QuantumPlant,
                 config: UarchConfig | None = None,
                 plant_backend: str = "auto",
                 audit_fraction: float = 0.0,
                 observability=None):
        if not 0.0 <= audit_fraction <= 1.0:
            raise ConfigurationError(
                f"audit_fraction must lie in [0, 1], "
                f"got {audit_fraction!r}")
        self.isa = isa
        self.plant = plant
        self.config = config or UarchConfig()
        self.microcode = MicrocodeUnit(isa.operations)
        self.quantum_pipeline = QuantumPipeline(isa, self.microcode)
        self.distributor = DeviceEventDistributor(isa.topology)
        self.pulses = PulseLibrary(isa.operations)
        self.measurement_unit = MeasurementUnit(
            plant, self.config, isa.measurement_cycles)
        self.gprs = GPRFile(isa.num_gprs)
        self.comparison_flags = ComparisonFlags()
        self.memory = DataMemory()
        self.q_registers = MeasurementResultRegisters(isa.topology.qubits)
        self.execution_flags = ExecutionFlagsFile(isa.topology.qubits)
        self._instructions: list[Instruction] = []
        # Per-instance handler cache: starts as the class dispatch
        # table and absorbs subclass resolutions as they are seen.
        self._dispatch: dict[type, Callable] = dict(self._DISPATCH)
        #: Which engine the last run() used ("interpreter" | "replay").
        self.last_run_engine: str | None = None
        #: Why the last run() could not use replay (None when it did).
        self.replay_fallback_reason: str | None = None
        #: Plant-backend policy: "auto" (static Clifford/noise pass per
        #: run — the default), or "dense"/"stabilizer" to pin a backend.
        self.plant_backend_policy = plant_backend
        #: Which plant backend the last run() selected
        #: ("stabilizer" | "dense"), mirroring :attr:`last_run_engine`.
        self.last_plant_backend: str | None = None
        #: Why the last run() kept the dense backend (None on tableau).
        self.plant_backend_reason: str | None = None
        #: Per-run engine statistics (shots per engine, segment-cache
        #: hits/misses, fallback reasons); replaced by each run_iter().
        self.engine_stats = EngineStats()
        #: Cross-run replay cache: saturated timeline trees keyed by
        #: (binary words, noise model, config) so repeated sweeps over
        #: one binary skip re-growing the tree per run() call.  The
        #: frozen noise/config dataclasses key by value, which is what
        #: invalidates a reused tree when either is swapped out.
        self._tree_cache: OrderedDict[tuple, TimelineTree] = OrderedDict()
        self._binary_key: tuple[int, ...] = ()
        # Per-binary static analyses, memoised in small LRUs keyed by
        # the binary words (the machine's microcode/operation set is
        # fixed, so the words fully determine both results) — sweeps
        # that reload many distinct binaries skip recomputation.
        self._data_memory_report: DataMemoryReport | None = None
        self._dataflow_cache: OrderedDict[tuple, DataMemoryReport] = \
            OrderedDict()
        self._plant_backend_reasons: list[str] | None = None
        #: Fraction of cache-hit replay shots shadow-run on the
        #: interpreter and compared bit-for-bit (self-verifying
        #: replay); 0.0 disables auditing.  Divergence evicts the
        #: tree from both caches and degrades the run — see
        #: :meth:`run_iter`.
        self.audit_fraction = audit_fraction
        self._audit_credit = 0.0
        #: Armed :class:`~repro.uarch.faults.FaultPlan` (None in
        #: production) — see :meth:`arm_faults`.
        self.fault_plan: FaultPlan | None = None
        # Fault records already mirrored as trace events this run.
        self._fault_record_base = 0
        #: Observability handle (:class:`repro.obs.Observability`, None
        #: = disabled).  Assigned through the property so the plant's
        #: backend-kernel timing lands in the same registry; every hook
        #: below is a single ``is not None`` branch when disabled.
        self.observability = observability
        self._reset_shot_state()

    @property
    def observability(self):
        """The attached :class:`repro.obs.Observability` (or None)."""
        return self._obs

    @observability.setter
    def observability(self, obs) -> None:
        self._obs = obs
        self.plant.observability = obs

    def arm_faults(self, plan: FaultPlan | None) -> None:
        """Arm a deterministic fault-injection plan (None disarms).

        The one plan is distributed to every subsystem with an
        injection site — the machine itself (``timing_overflow``,
        ``measurement_stall``, ``tree_bitflip``), the plant
        (``backend_gate``, ``snapshot_corrupt``) and the measurement
        unit (``mock_exhaust``) — so one chaos experiment coordinates
        shot-pinned failures across the whole stack.
        """
        self.fault_plan = plan
        self.plant.fault_plan = plan
        self.measurement_unit.fault_plan = plan

    def disarm_faults(self) -> None:
        """Remove any armed fault-injection plan."""
        self.arm_faults(None)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load(self, program: AssembledProgram | list[int]) -> None:
        """Load a binary into the instruction memory.

        Accepts either an :class:`AssembledProgram` or raw instruction
        words (of the instantiation's ``instruction_width`` — 32-bit
        for the paper's chips, 64-bit for surface-17); words are
        decoded through the instantiation's decoder, so the machine
        genuinely runs the binary encoding.
        """
        obs = self._obs
        load_start = obs.clock() if obs is not None else 0
        if isinstance(program, AssembledProgram):
            words = program.words
        else:
            words = list(program)
        decoder = InstructionDecoder(self.isa)
        self._instructions = [decoder.decode(word) for word in words]
        self._binary_key = tuple(words)
        self._data_memory_report = self._dataflow_cache.get(
            self._binary_key)
        if self._data_memory_report is not None:
            self._dataflow_cache.move_to_end(self._binary_key)
        self._plant_backend_reasons = None
        if obs is not None:
            obs.tracer.record_span(
                "machine.load", load_start, obs.clock(),
                instructions=len(self._instructions))
            if self._data_memory_report is not None:
                obs.metrics.inc("machine.dataflow_cache.hits")

    # ------------------------------------------------------------------
    # Shot state
    # ------------------------------------------------------------------
    def _reset_shot_state(self) -> None:
        self._pc = 0
        self._classical_time_ns = 0.0
        self._events: list[_Event] = []
        self._event_sequence = itertools.count()
        self._timeline_origin_ns: float | None = None
        self._outstanding_triggers = 0
        self._pending_pairs: dict[tuple[int, tuple[int, int]], set] = {}
        self._last_qreg_write_ns: dict[int, float] = {}
        self._device_queues: dict[DeviceId, EventQueue] = {}
        self._trace = ShotTrace()

    def reset_shot(self) -> None:
        """Reset everything that does not persist across shots.

        Data memory persists (it is the host communication channel);
        mock measurement results persist (they model UHFQC programming,
        configured once per experiment).
        """
        self._reset_shot_state()
        self.plant.reset_shot()
        self.quantum_pipeline.reset()
        self.gprs.reset()
        self.comparison_flags = ComparisonFlags()
        self.q_registers.reset()
        self.execution_flags.reset()

    # ------------------------------------------------------------------
    # Shot execution
    # ------------------------------------------------------------------
    def run_shot(self, max_instructions: int = 2_000_000) -> ShotTrace:
        """Execute the loaded program once and return its trace."""
        if not self._instructions:
            raise RuntimeFault("no program loaded")
        self.reset_shot()
        trace = self._trace
        budget_ns = self.config.shot_time_budget_ns
        while trace.instructions_executed < max_instructions:
            if self._pc < 0 or self._pc >= len(self._instructions):
                break  # fell off the end: implicit stop
            instruction = self._instructions[self._pc]
            self._drain_events_until(self._classical_time_ns)
            if budget_ns is not None and self._classical_time_ns > budget_ns:
                raise ShotTimeoutError(
                    f"shot exceeded its {budget_ns:.0f} ns time budget "
                    f"at {self._classical_time_ns:.0f} ns "
                    f"({trace.instructions_executed} instructions "
                    f"executed)",
                    budget_ns=budget_ns,
                    elapsed_ns=self._classical_time_ns,
                    instructions_executed=trace.instructions_executed)
            if isinstance(instruction, Stop):
                trace.stop_reached = True
                trace.instructions_executed += 1
                break
            self._execute(instruction)
            trace.instructions_executed += 1
        else:
            raise ShotTimeoutError(
                f"instruction limit ({max_instructions}) exceeded — "
                f"runaway program?",
                limit=max_instructions,
                instructions_executed=trace.instructions_executed,
                elapsed_ns=self._classical_time_ns)
        # End of program: flush the last buffered timing point and
        # drain every remaining deterministic-domain event.
        flushed = self.quantum_pipeline.flush_pending()
        if flushed is not None:
            self._schedule_point(flushed)
        self._drain_all_events()
        trace.classical_time_ns = self._classical_time_ns
        return trace

    def run(self, shots: int, max_instructions: int = 2_000_000,
            use_replay: bool = True) -> list[ShotTrace]:
        """Execute the program ``shots`` times (fresh state per shot).

        Replayable programs — including feedback programs using ``FMR``
        (CFC) and conditional micro-operations (fast conditional
        execution / active reset), programs with injected mock results
        (replayed through cursor-keyed tree roots), counted-loop
        binaries (the dataflow pass unrolls resolvable backward
        branches) and programs whose data-memory traffic the pass
        proves shot-local (dead stores; spill/reload loads killed by a
        same-shot store) — take the branch-resolved replay fast path
        (see :mod:`repro.uarch.replay`): interpreter shots grow an
        outcome-keyed timeline-segment tree, and every shot whose
        sampled outcome path is already cached is served as a pure
        tree walk.  Hard blockers (loads that can observe another
        shot's memory, untranslatable operations) fall back to the
        interpreter transparently; ``use_replay=False`` forces the
        interpreter.
        """
        return list(self.run_iter(shots, max_instructions,
                                  use_replay=use_replay))

    def run_iter(self, shots: int, max_instructions: int = 2_000_000,
                 use_replay: bool = True) -> Iterator[ShotTrace]:
        """Lazily yield ``shots`` traces (same engine selection as
        :meth:`run`), so high-shot callers can aggregate on the fly
        instead of holding every trace in memory.

        Engine metadata (:attr:`last_run_engine`,
        :attr:`replay_fallback_reason`, :attr:`engine_stats`) is set
        when the first trace is produced, since generators run on
        demand; :attr:`engine_stats` keeps updating as shots are drawn.

        With an attached :attr:`observability` handle the whole run is
        wrapped in a ``machine.run`` span, phase spans mark backend
        selection / dataflow / replay analysis, per-engine time lands
        in ``engine.*.time_ns`` histograms, and the finished run's
        :class:`EngineStats` fold into the metrics registry.
        """
        obs = self._obs
        if obs is None:
            return self._run_iter_impl(shots, max_instructions,
                                       use_replay)
        return self._run_iter_traced(shots, max_instructions,
                                     use_replay, obs)

    def _run_iter_traced(self, shots: int, max_instructions: int,
                         use_replay: bool, obs) -> Iterator[ShotTrace]:
        """The traced run wrapper: one root span per run, engine stats
        published on completion (including generator abandonment)."""
        span = obs.begin("machine.run", shots=shots)
        try:
            yield from self._run_iter_impl(shots, max_instructions,
                                           use_replay)
        finally:
            stats = self.engine_stats
            obs.record_engine_run(stats)
            obs.end(span, engine=stats.engine,
                    plant_backend=stats.plant_backend)

    def _run_iter_impl(self, shots: int, max_instructions: int,
                       use_replay: bool) -> Iterator[ShotTrace]:
        stats = EngineStats()
        self.engine_stats = stats
        self._audit_credit = 0.0
        # Forced outcomes are a per-run_shot driving aid; a queue left
        # over from an earlier run_shot() would silently bias the first
        # shots here (and shift the replay engine's own forced prefixes
        # onto the wrong measurements), so multi-shot runs always start
        # from a clean slate.
        self.measurement_unit.clear_forced_results()
        if shots <= 0:
            self.last_run_engine = None
            self.replay_fallback_reason = None
            self.last_plant_backend = None
            self.plant_backend_reason = None
            return
        # Plant-backend selection comes first: both engines execute
        # their (growth) shots against whichever backend is live, and
        # the replay blocker analysis below depends on the choice
        # (trajectory-sampled Pauli noise only exists on the tableau).
        obs = self._obs
        if obs is None:
            backend_kind, backend_reason = self._select_plant_backend()
        else:
            phase_start = obs.clock()
            backend_kind, backend_reason = self._select_plant_backend()
            obs.tracer.record_span("machine.select_backend",
                                   phase_start, obs.clock())
        self.plant.use_backend(backend_kind)
        self.last_plant_backend = backend_kind
        self.plant_backend_reason = backend_reason
        stats.plant_backend = backend_kind
        stats.plant_backend_reason = backend_reason
        plan = self.fault_plan
        if plan is not None:
            plan.begin_run()
            self._fault_record_base = len(plan.records)
        if obs is None:
            reasons = (["replay disabled by caller"] if not use_replay
                       else self.replay_unsupported_reasons())
        else:
            phase_start = obs.clock()
            reasons = (["replay disabled by caller"] if not use_replay
                       else self.replay_unsupported_reasons())
            obs.tracer.record_span("machine.replay_analysis",
                                   phase_start, obs.clock())
        if reasons:
            # Stochastic Pauli gate noise blocks the outcome-keyed
            # replay tree, but on a feedback-free Clifford program the
            # Pauli-frame batched engine handles exactly that case: one
            # reference tableau shot plus vectorised per-shot frames
            # (see repro.quantum.pauli_frame).  Selection mirrors the
            # replay pattern — a static eligibility pass, transparent
            # reporting, graceful fallback.
            if (use_replay and backend_kind == "stabilizer" and
                    not self.plant.noise.gate_error.is_zero and
                    not self.frame_batch_unsupported_reasons()):
                yield from self._run_frame_batched(
                    shots, max_instructions, stats, plan)
                return
            reason = "; ".join(reasons)
            self.last_run_engine = "interpreter"
            self.replay_fallback_reason = reason
            stats.engine = "interpreter"
            stats.fallback_reason = reason
            shot_time = (None if obs is None else obs.metrics.histogram(
                "engine.interpreter.shot.time_ns"))
            clock = None if obs is None else obs.tracer.clock
            try:
                for shot_index in range(shots):
                    if plan is not None:
                        plan.begin_shot(shot_index)
                    stats.shots_total += 1
                    stats.interpreter_shots += 1
                    if shot_time is None:
                        yield self.run_shot(max_instructions)
                    else:
                        shot_start = clock()
                        trace = self.run_shot(max_instructions)
                        shot_time.record(clock() - shot_start)
                        yield trace
            finally:
                self._sync_faults(stats, plan)
            return
        self.last_run_engine = "replay"
        self.replay_fallback_reason = None
        stats.engine = "replay"
        report = self.data_memory_report()  # memoised: reasons used it
        stats.dead_stores = report.dead_store_count
        stats.killed_loads = report.killed_load_count
        stats.bounded_loops = report.bounded_loop_count
        tree, stats.tree_reused = self._replay_tree(
            cacheable=report.cross_run_cacheable)
        stats.tree_nodes = tree.node_count
        stats.tree_paths = tree.path_count
        stats.tree_roots = tree.root_count
        stats.growth_stopped_reason = tree.growth_stopped_reason
        measurement_unit = self.measurement_unit
        mock_clamp = self._mock_fingerprint_clamp(tree.max_depth)
        degraded_reason = None
        walk_total_ns = 0
        walk_timed = 0
        walk_stride = 0
        if obs is not None:
            # Hoisted out of the shot loop: the histogram objects and
            # the raw nanosecond clock.  Tree-walk time is measured on
            # every 16th shot and published once as a pair of counters
            # (total ns + shots timed) — a cached shot is so cheap
            # (~10 us) that even two clock reads per shot would blow
            # the <=5% overhead budget, let alone a histogram record.
            # The expensive shot kinds (interpreter, growth, audit)
            # keep full per-shot distributions.
            audit_time = obs.metrics.histogram(
                "engine.replay.audit.time_ns")
            growth_time = obs.metrics.histogram(
                "engine.replay.growth_shot.time_ns")
            clock = obs.tracer.clock
        try:
            for shot_index in range(shots):
                if plan is not None:
                    plan.begin_shot(shot_index)
                stats.shots_total += 1
                if degraded_reason is not None:
                    # A confirmed audit divergence invalidated the
                    # tree; the rest of the run is interpreter-only.
                    stats.interpreter_shots += 1
                    yield self.run_shot(max_instructions)
                    continue
                if plan is not None and plan.would_fire("tree_bitflip"):
                    detail = tree.corrupt_random_template(plan.rng)
                    if detail is not None:
                        plan.fire("tree_bitflip", detail=detail)
                mock_view = measurement_unit.mock_view(mock_clamp)
                if obs is None:
                    trace, outcome_prefix = tree.sample_shot(mock_view)
                elif walk_stride & 0xF:
                    walk_stride += 1
                    trace, outcome_prefix = tree.sample_shot(mock_view)
                else:
                    walk_stride += 1
                    walk_start = clock()
                    trace, outcome_prefix = tree.sample_shot(mock_view)
                    walk_total_ns += clock() - walk_start
                    walk_timed += 1
                if trace is not None:
                    stats.segment_cache_hits += 1
                    if self._audit_due():
                        if obs is None:
                            shadow, mismatched, detail = \
                                self._audit_replay_shot(trace,
                                                        max_instructions)
                        else:
                            audit_start = clock()
                            shadow, mismatched, detail = \
                                self._audit_replay_shot(trace,
                                                        max_instructions)
                            audit_time.record(clock() - audit_start)
                        stats.replay_audits += 1
                        if mismatched:
                            if not detail:
                                detail = ("cached replay trace diverged "
                                          "from its interpreter shadow")
                            stats.audit_divergences += 1
                            stats.last_audit = ReplayAudit(
                                shot_index=shot_index,
                                mismatched_fields=tuple(mismatched),
                                tree_evicted=True, detail=detail)
                            degraded_reason = (
                                f"replay audit divergence at shot "
                                f"{shot_index} "
                                f"({', '.join(mismatched)})")
                            stats.degradations.append(
                                f"replay -> interpreter: "
                                f"{degraded_reason}")
                            if obs is not None:
                                obs.event("machine.degradation",
                                          engine="replay",
                                          detail=degraded_reason)
                            self._evict_tree(tree)
                            stats.interpreter_shots += 1
                            if shadow is None:
                                shadow = self.run_shot(max_instructions)
                            yield shadow
                            continue
                        stats.last_audit = ReplayAudit(
                            shot_index=shot_index, mismatched_fields=(),
                            tree_evicted=False)
                        # The shadow interpreter shot consumed the real
                        # mock cursors itself — committing the view too
                        # would double-drain the queues.
                        stats.replay_shots += 1
                        stats.mock_results_replayed += mock_view.consumed
                        yield trace
                        continue
                    mock_view.commit()
                    stats.replay_shots += 1
                    stats.mock_results_replayed += mock_view.consumed
                    yield trace
                    continue
                stats.segment_cache_misses += 1
                stats.interpreter_shots += 1
                if obs is None:
                    grown = self._grow_tree_shot(tree,
                                                 mock_view.fingerprint,
                                                 outcome_prefix,
                                                 max_instructions)
                else:
                    growth_start = clock()
                    grown = self._grow_tree_shot(tree,
                                                 mock_view.fingerprint,
                                                 outcome_prefix,
                                                 max_instructions)
                    growth_time.record(clock() - growth_start)
                yield grown
                stats.tree_nodes = tree.node_count
                stats.tree_paths = tree.path_count
                stats.tree_roots = tree.root_count
                stats.growth_stopped_reason = tree.growth_stopped_reason
        finally:
            if walk_timed:
                obs.metrics.inc("engine.replay.walk.time_ns",
                                walk_total_ns)
                obs.metrics.inc("engine.replay.walk.timed_shots",
                                walk_timed)
            self._sync_faults(stats, plan)
            if plan is not None and plan.fired_this_run:
                # A fault that fired during this run may have stopped
                # tree growth early or corrupted cached state; never
                # let the tree leak into later runs through the
                # cross-run cache.
                self._evict_tree(tree)
        if degraded_reason is not None:
            self.replay_fallback_reason = degraded_reason
            stats.fallback_reason = degraded_reason
            if stats.replay_shots == 0:
                stats.engine = "interpreter"
                self.last_run_engine = "interpreter"
            return
        if stats.replay_shots == 0 and stats.interpreter_shots > 0:
            # The replay engine was selected but every shot ended up a
            # growth (interpreter) shot — e.g. the outcome paths exceed
            # the tree caps from shot one.  Reporting "replay" for a
            # 100%-interpreter run would be a lie; keep the engine
            # label consistent with the EngineStats split.
            reason = ("replay selected but every shot ran as an "
                      "interpreter growth shot")
            if tree.growth_stopped_reason is not None:
                reason += f" ({tree.growth_stopped_reason})"
            stats.engine = "interpreter"
            stats.fallback_reason = reason
            self.last_run_engine = "interpreter"
            self.replay_fallback_reason = reason

    #: Trace fields the self-verifying audit compares bit-for-bit.
    _AUDIT_FIELDS = ("triggers", "results", "slips",
                     "instructions_executed", "classical_time_ns",
                     "stop_reached")

    def _audit_due(self) -> bool:
        """Deterministic audit cadence: every ``1/audit_fraction``-th
        cache-hit shot is shadowed (an accumulator, not an RNG draw,
        so audited runs stay exactly reproducible and never perturb
        the plant's random stream)."""
        fraction = self.audit_fraction
        if fraction <= 0.0:
            return False
        self._audit_credit += fraction
        if self._audit_credit >= 1.0 - 1e-12:
            self._audit_credit -= 1.0
            return True
        return False

    def _audit_replay_shot(self, trace: ShotTrace,
                           max_instructions: int):
        """Shadow-run one cached replay trace on the interpreter.

        The cached trace's ``(raw, reported)`` outcome sequence is
        forced onto the measurement unit, so the interpreter re-derives
        the *same* branch; every timing-visible field of the two traces
        must then agree bit-for-bit.  Returns ``(shadow_trace,
        mismatched_field_names, detail)`` — an empty mismatch list
        means the audit passed.  A shadow that raises is itself a
        divergence (the cached path claims a shot the interpreter
        cannot even complete).
        """
        outcomes = [(record.raw_result, record.reported_result)
                    for record in trace.results]
        self.measurement_unit.force_results(outcomes)
        try:
            shadow = self.run_shot(max_instructions)
        except EQASMError as error:
            return None, ["shadow-exception"], (
                f"interpreter shadow raised {type(error).__name__}: "
                f"{error}")
        finally:
            self.measurement_unit.clear_forced_results()
        mismatched = [name for name in self._AUDIT_FIELDS
                      if getattr(shadow, name) != getattr(trace, name)]
        return shadow, mismatched, ""

    def _evict_tree(self, tree: TimelineTree) -> None:
        """Drop one tree from the cross-run cache (identity match).

        The in-run reference is the caller's to abandon; this makes
        sure no later ``run()`` resurrects the same object through the
        keyed cache."""
        for key in [key for key, value in self._tree_cache.items()
                    if value is tree]:
            del self._tree_cache[key]
            if self._obs is not None:
                self._obs.metrics.inc(
                    "engine.replay.tree_cache.evictions")

    def _sync_faults(self, stats: EngineStats,
                     plan: FaultPlan | None) -> None:
        """Mirror the plan's fired-fault records into the run stats
        (and, when tracing, emit each new record as a trace event)."""
        if plan is None:
            return
        stats.faults_injected = [record.describe()
                                 for record in plan.records]
        obs = self._obs
        if obs is not None:
            for record in plan.records[self._fault_record_base:]:
                obs.event("machine.fault_injected",
                          detail=record.describe())
            self._fault_record_base = len(plan.records)

    def data_memory_report(self) -> DataMemoryReport:
        """The dataflow pass's verdict on the loaded binary's ``LD``/
        ``ST`` traffic — see
        :func:`repro.uarch.dataflow.analyze_data_memory`.  The machine
        supplies the per-instruction measurement-slot table, so the
        report's ``max_measurements_per_shot`` is exact for loop-free
        *and* counted-loop binaries.  Reports are retained in a small
        LRU keyed by the binary words (which, with the machine's fixed
        operation set, fully determine the analysis), so sweeps that
        re-:meth:`load` many distinct binaries — or alternate between a
        few — never recompute the exploded graph for a binary this
        machine has already analysed."""
        if self._data_memory_report is None:
            obs = self._obs
            dataflow_start = obs.clock() if obs is not None else 0
            slots = [self._measurement_slot_count(instruction)
                     for instruction in self._instructions]
            self._data_memory_report = analyze_data_memory(
                self._instructions, measurement_slots=slots)
            self._dataflow_cache[self._binary_key] = \
                self._data_memory_report
            while len(self._dataflow_cache) > _DATAFLOW_CACHE_CAPACITY:
                self._dataflow_cache.popitem(last=False)
            if obs is not None:
                obs.tracer.record_span("machine.dataflow",
                                       dataflow_start, obs.clock())
                obs.metrics.inc("machine.dataflow_cache.misses")
        return self._data_memory_report

    def _measurement_slot_count(self, instruction: Instruction) -> int:
        """Measurement micro-operations one execution of the
        instruction triggers (untranslatable slots count zero — such
        programs are blocked from replay elsewhere)."""
        if not isinstance(instruction, Bundle):
            return 0
        total = 0
        for slot in instruction.operations:
            try:
                micro_ops = self.microcode.translate_name(slot.name)
            except Exception:
                continue
            total += sum(op.is_measurement for op in micro_ops)
        return total

    def _mock_fingerprint_clamp(self, max_depth: int) -> int:
        """Per-qubit clamp for mock-cursor fingerprints (see
        :meth:`MeasurementUnit.mock_fingerprint`).

        Cursor states whose remaining queue exceeds what one shot can
        consume are behaviourally identical, so the tighter the bound
        on per-shot mock consumption, the more cursor states share a
        tree root.  The dataflow pass bounds per-shot measurements
        exactly for loop-free binaries (the static slot count) *and*
        counted loops (trip count x slots per iteration, the loop
        unrolled by the exploration engine) — usually a handful,
        collapsing a draining queue of thousands of results onto a few
        roots.  Only a genuinely unbounded loop falls back to the tree
        depth cap (paths longer than that are uncacheable anyway).
        """
        bound = self.data_memory_report().max_measurements_per_shot
        if bound is None:
            return max_depth
        return min(max_depth, bound)

    def plant_backend_reasons(self) -> list[str]:
        """Every reason the loaded binary + noise model cannot run on
        the stabilizer-tableau plant backend (empty when they can).

        The static pass mirrors :meth:`replay_unsupported_reasons`: the
        tableau is sound exactly when (a) every gate micro-operation the
        binary can trigger resolves to a Clifford unitary
        (:func:`repro.quantum.stabilizer.cached_clifford_action` derives
        the symplectic action from the configured matrix, so any
        user-registered Clifford pulse qualifies) and (b) the noise
        model is Pauli/readout-only (idle T1/T2 decoherence is not a
        Pauli channel).  The binary-derived verdict is memoised until
        the next :meth:`load`; the noise verdict is re-read per call so
        a swapped ``plant.noise`` is honoured immediately.
        """
        if self._plant_backend_reasons is None:
            reasons: list[str] = []
            if not self._instructions:
                reasons.append("no program loaded")
            checked: set[str] = set()
            for instruction in self._instructions:
                if not isinstance(instruction, Bundle):
                    continue
                for slot in instruction.operations:
                    if slot.name in checked:
                        continue
                    checked.add(slot.name)
                    try:
                        micro_ops = self.microcode.translate_name(
                            slot.name)
                    except Exception:
                        reasons.append(
                            f"operation {slot.name!r} is not translatable")
                        continue
                    for micro_op in micro_ops:
                        if micro_op.is_measurement:
                            continue
                        operation = self.isa.operations.get(
                            micro_op.operation)
                        if operation.unitary is None:
                            continue
                        if cached_clifford_action(
                                operation.unitary) is None:
                            reasons.append(
                                f"operation {micro_op.operation!r} is "
                                f"not Clifford")
                            break
            self._plant_backend_reasons = reasons
        reasons = list(self._plant_backend_reasons)
        if not self.plant.noise.is_pauli_plus_readout:
            reasons.append(
                "noise model has non-Pauli idle decoherence (T1/T2)")
        return reasons

    def _select_plant_backend(self) -> tuple[str, str | None]:
        """Resolve the policy to a backend kind plus the dense reason.

        "auto" picks the tableau whenever the static pass admits it;
        pinning a backend skips the pass (a pinned tableau on a
        non-Clifford program fails at the offending gate, by design).
        """
        policy = self.plant_backend_policy
        if policy == "dense":
            return "dense", "plant backend pinned to dense by caller"
        if policy == "stabilizer":
            return "stabilizer", None
        if policy != "auto":
            raise RuntimeFault(
                f"unknown plant backend policy {policy!r} "
                f"(use 'auto', 'dense' or 'stabilizer')")
        reasons = self.plant_backend_reasons()
        if reasons:
            return "dense", "; ".join(reasons)
        return "stabilizer", None

    def _replay_tree(self, cacheable: bool) -> tuple[TimelineTree, bool]:
        """The timeline tree for the loaded binary: reused from the
        keyed cross-run cache when the (binary, noise, config) key
        matches an earlier ``run``, freshly grown otherwise.

        ``cacheable`` must be False for binaries with a reachable
        ``LD`` that is *not* killed by a same-shot store: data memory
        is the host communication channel and persists across runs, so
        the host may rewrite a loaded address between ``run()`` calls —
        state the cache key cannot see.  Such programs still replay
        (every shot of one run reads the same values), but their tree
        lives only for the duration of the run.  Killed loads only
        ever observe same-shot data, so spill/reload binaries stay
        cacheable (:attr:`DataMemoryReport.cross_run_cacheable`).
        """
        if not cacheable:
            return TimelineTree(self.plant), False
        key = (self._binary_key, self.plant.noise, self.config,
               self.plant.backend_kind)
        tree = self._tree_cache.get(key)
        obs = self._obs
        if tree is not None:
            self._tree_cache.move_to_end(key)
            if obs is not None:
                obs.metrics.inc("engine.replay.tree_cache.hits")
            return tree, True
        if obs is not None:
            obs.metrics.inc("engine.replay.tree_cache.misses")
        tree = TimelineTree(self.plant)
        self._tree_cache[key] = tree
        while len(self._tree_cache) > _TREE_CACHE_CAPACITY:
            self._tree_cache.popitem(last=False)
            if obs is not None:
                obs.metrics.inc("engine.replay.tree_cache.evictions")
        return tree, False

    def clear_replay_cache(self) -> None:
        """Drop every cached cross-run timeline tree *and* the
        per-machine dataflow-report LRU.

        Key-based invalidation is automatic (the caches key by binary
        words plus the frozen noise/config dataclasses); this is the
        explicit hatch for callers that mutate state the keys cannot
        see — e.g. re-seeding experiments that must re-grow trees, or
        the serving layer's per-point cold-start contract.  The
        dataflow reports are a pure static analysis of the binary, but
        the hatch's contract is *no derived state survives*: the
        currently loaded binary re-analyzes on its next use too.
        """
        self._tree_cache.clear()
        self._dataflow_cache.clear()
        self._data_memory_report = None

    def engine_stats_snapshot(self) -> EngineStats:
        """A point-in-time copy of the live per-run statistics.

        :attr:`engine_stats` mutates while :meth:`run_iter` streams;
        long sweeps that report the engine mix mid-flight snapshot it
        instead of aliasing the live object.
        """
        return self.engine_stats.snapshot()

    def _grow_tree_shot(self, tree: TimelineTree, root_key: tuple,
                        outcome_prefix: list[tuple[int, int]],
                        max_instructions: int) -> ShotTrace:
        """One interpreter shot that extends the timeline tree.

        The already-sampled outcome prefix (where the tree walk fell
        off a cached path) is forced onto the measurement unit, so the
        interpreter re-derives exactly the missing branch; measurements
        beyond the prefix sample fresh randomness.  The observed
        pre-collapse probabilities — the segment-boundary snapshots —
        are recorded through the plant's measure observer (mocked
        measurements, which never touch the plant, through the
        measurement unit's mock observer) and inserted into the tree
        under the shot's mock-cursor root.
        """
        samples: list[MeasurementSample] = []

        def observe(qubit: int, start_ns: float, p_one: float) -> None:
            samples.append(MeasurementSample(qubit=qubit,
                                             start_ns=start_ns,
                                             p_one=p_one))

        def observe_mock(qubit: int, start_ns: float, value: int) -> None:
            samples.append(MeasurementSample(qubit=qubit,
                                             start_ns=start_ns,
                                             p_one=float(value),
                                             mocked=True))

        self.plant.measure_observer = observe
        self.measurement_unit.mock_observer = observe_mock
        if outcome_prefix:
            self.measurement_unit.force_results(outcome_prefix)
        try:
            trace = self.run_shot(max_instructions)
        finally:
            self.plant.measure_observer = None
            self.measurement_unit.mock_observer = None
            self.measurement_unit.clear_forced_results()
        tree.grow(samples, trace, root_key=root_key)
        return trace

    def run_counts(self, shots: int, max_instructions: int = 2_000_000,
                   use_replay: bool = True) -> ShotCounts:
        """Execute ``shots`` shots and return the streaming aggregate.

        Memory stays O(qubits) regardless of the shot count — the
        traces are folded into a :class:`~repro.uarch.trace.ShotCounts`
        as they are produced.
        """
        counts = ShotCounts()
        for trace in self.run_iter(shots, max_instructions,
                                   use_replay=use_replay):
            counts.add(trace)
        return counts

    def replay_unsupported_reasons(self) -> list[str]:
        """Every reason the loaded program cannot use shot replay
        (empty if it can) — the static hard-blocker analysis of
        :func:`repro.uarch.replay.replay_unsupported_reasons`, plus one
        machine-level blocker: when the selected plant backend is the
        stabilizer tableau *and* the noise model carries stochastic
        Pauli gate error, each shot samples a fresh Pauli trajectory —
        state the outcome-keyed tree cannot key on — so such runs stay
        on the interpreter (which the tableau still accelerates).  With
        zero gate error the tableau is deterministic given the outcome
        history and both fast paths compound."""
        reasons = replay_unsupported_reasons(
            self._instructions, self.microcode, self.measurement_unit,
            self.isa.topology.qubits,
            data_memory_report=self.data_memory_report())
        kind, _ = self._select_plant_backend()
        if kind == "stabilizer" and \
                not self.plant.noise.gate_error.is_zero:
            reasons.append(
                "stochastic Pauli gate noise on the stabilizer backend "
                "(per-shot trajectory sampling outside the outcome "
                "history)")
        return reasons

    def replay_unsupported_reason(self) -> str | None:
        """All blocking reasons joined with "; ", or None when the
        program is replayable."""
        return replay_unsupported_reason(
            self._instructions, self.microcode, self.measurement_unit,
            self.isa.topology.qubits)

    def frame_batch_unsupported_reasons(self) -> list[str]:
        """Every reason the loaded program cannot use the Pauli-frame
        batched engine (empty when it can).

        The frame engine replays ONE recorded Clifford/measurement
        sequence for every shot, so on top of the replay engine's hard
        blockers it must prove the sequence cannot fork per shot: no
        ``FMR`` (a consumed result can steer later classical control
        flow), no conditionally executed micro-operations (fast
        conditional execution cancels gates on per-shot outcomes), and
        no injected mock results (their queues make consecutive shots
        see different values).  The caller separately requires the
        stabilizer backend with nonzero Pauli gate error — the one
        regime replay cannot serve.
        """
        reasons = replay_unsupported_reasons(
            self._instructions, self.microcode, self.measurement_unit,
            self.isa.topology.qubits,
            data_memory_report=self.data_memory_report())
        conditional: list[str] = []
        has_fmr = False
        for instruction in self._instructions:
            if isinstance(instruction, Fmr):
                has_fmr = True
                continue
            if not isinstance(instruction, Bundle):
                continue
            for slot in instruction.operations:
                try:
                    micro_ops = self.microcode.translate_name(slot.name)
                except Exception:
                    continue  # already a replay blocker above
                for micro_op in micro_ops:
                    if micro_op.condition is not ExecutionFlag.ALWAYS \
                            and slot.name not in conditional:
                        conditional.append(slot.name)
        if has_fmr:
            reasons.append(
                "FMR feedback can fork the Clifford sequence on "
                "per-shot outcomes")
        for name in conditional:
            reasons.append(
                f"operation {name!r} executes conditionally (the gate "
                f"sequence forks on per-shot outcomes)")
        if self.measurement_unit.has_any_mock_results():
            reasons.append(
                "injected mock results vary across shots as their "
                "queues drain")
        return reasons

    def _run_frame_batched(self, shots: int, max_instructions: int,
                           stats: EngineStats,
                           plan) -> Iterator[ShotTrace]:
        """Serve ``shots`` traces through the Pauli-frame batched
        engine (see :mod:`repro.quantum.pauli_frame`).

        One noise-free interpreter shot runs with a
        :class:`FrameRecorder` installed on the stabilizer backend,
        capturing the Clifford sequence, every deferred gate-error site
        and the measurement structure; its trace becomes the frozen
        timeline template.  Batches of per-shot frames then propagate
        through the recording with vectorised column operations, and
        each shot's sampled ``(raw, reported)`` row is spliced into the
        template.  A fault during the reference shot (the
        ``backend_gate`` site, or ``snapshot_corrupt`` via the
        post-reference snapshot integrity round-trip) degrades the
        whole run gracefully to the per-shot tableau interpreter,
        recorded in :attr:`EngineStats.degradations`.
        """
        stats.engine = "frame"
        stats.fallback_reason = None
        self.last_run_engine = "frame"
        self.replay_fallback_reason = None
        obs = self._obs
        backend = self.plant.backend
        recorder = FrameRecorder()
        if plan is not None:
            plan.begin_shot(0)
        degraded_reason = None
        template = None
        backend.frame_recorder = recorder
        reference_start = obs.clock() if obs is not None else 0
        try:
            template = self.run_shot(max_instructions)
            backend.frame_recorder = None
            # Round-trip a snapshot so the frame path exercises the
            # same state-integrity machinery (and fault site) the
            # replay engine does before trusting a recorded timeline.
            self.plant.restore(self.plant.snapshot())
        except EQASMError as error:
            degraded_reason = (f"frame reference shot failed "
                               f"({type(error).__name__}: {error})")
        finally:
            backend.frame_recorder = None
            if obs is not None:
                obs.tracer.record_span("engine.frame.reference_shot",
                                       reference_start, obs.clock())
        if degraded_reason is None and \
                recorder.measure_count != len(template.results):
            # Forced/mocked results would bypass the backend recorder;
            # eligibility excludes them, so a mismatch means the
            # recording cannot drive the splice — never serve from it.
            degraded_reason = (
                f"frame recording captured {recorder.measure_count} "
                f"measurements but the reference trace holds "
                f"{len(template.results)}")
        if degraded_reason is not None:
            stats.degradations.append(
                f"frame -> interpreter: {degraded_reason}")
            if obs is not None:
                obs.event("machine.degradation", engine="frame",
                          detail=degraded_reason)
            stats.engine = "interpreter"
            stats.fallback_reason = degraded_reason
            self.last_run_engine = "interpreter"
            self.replay_fallback_reason = degraded_reason
            try:
                for shot_index in range(shots):
                    if plan is not None:
                        plan.begin_shot(shot_index)
                    stats.shots_total += 1
                    stats.interpreter_shots += 1
                    yield self.run_shot(max_instructions)
            finally:
                self._sync_faults(stats, plan)
            return
        stats.frame_reference_shots += 1
        readout = self.plant.noise.readout
        num_qubits = self.plant.num_qubits
        shot_index = 0
        try:
            while shot_index < shots:
                chunk = min(shots - shot_index, _FRAME_CHUNK_SHOTS)
                if obs is None:
                    raw, reported = propagate_frames(
                        recorder.steps, num_qubits, chunk,
                        self.plant.rng, readout)
                else:
                    batch_start = obs.clock()
                    raw, reported = propagate_frames(
                        recorder.steps, num_qubits, chunk,
                        self.plant.rng, readout)
                    batch_end = obs.clock()
                    obs.tracer.record_span("engine.frame.batch",
                                           batch_start, batch_end,
                                           shots=chunk)
                    obs.metrics.observe("engine.frame.batch.time_ns",
                                        batch_end - batch_start)
                raw_rows = raw.tolist()
                reported_rows = reported.tolist()
                for row in range(chunk):
                    if plan is not None:
                        plan.begin_shot(shot_index)
                    stats.shots_total += 1
                    stats.frame_batched += 1
                    shot_index += 1
                    yield template.with_sampled_results(
                        list(zip(raw_rows[row], reported_rows[row])))
        finally:
            self._sync_faults(stats, plan)

    # ------------------------------------------------------------------
    # Classical pipeline
    # ------------------------------------------------------------------
    def _advance_clock(self, cycles: int = 1) -> None:
        self._classical_time_ns += cycles * self.config.classical_cycle_ns

    def _execute(self, instruction: Instruction) -> None:
        """Execute one instruction; updates PC and the classical clock.

        Dispatch is a per-class handler table (built once at class
        definition) instead of an ``isinstance`` chain — the lookup is
        one dict access on the instruction's exact type, with a
        one-time MRO walk for unseen subclasses.
        """
        handler = self._dispatch.get(type(instruction))
        if handler is None:
            handler = self._resolve_handler(type(instruction))
        next_pc = handler(self, instruction)
        self._advance_clock()
        self._pc = self._pc + 1 if next_pc is None else next_pc

    def _resolve_handler(self, cls: type) -> Callable:
        """Find (and cache) the handler of an instruction subclass."""
        for base in cls.__mro__[1:]:
            handler = self._dispatch.get(base)
            if handler is not None:
                self._dispatch[cls] = handler
                return handler
        raise RuntimeFault(f"unhandled instruction {cls.__name__}")

    # Handlers return the next PC, or None for straight-line flow.
    def _exec_nop(self, instruction: Nop) -> None:
        return None

    def _exec_cmp(self, instruction: Cmp) -> None:
        self.comparison_flags.update(self.gprs.read(instruction.rs),
                                     self.gprs.read(instruction.rt))
        return None

    def _exec_br(self, instruction: Br) -> int | None:
        if isinstance(instruction.target, str):
            raise RuntimeFault(
                f"unresolved branch label {instruction.target!r}")
        if self.comparison_flags.test(instruction.condition):
            self._advance_clock(self.config.branch_taken_penalty_cycles)
            return self._pc + instruction.target
        return None

    def _exec_fbr(self, instruction: Fbr) -> None:
        value = int(self.comparison_flags.test(instruction.condition))
        self.gprs.write(instruction.rd, value)
        return None

    def _exec_ldi(self, instruction: Ldi) -> None:
        self.gprs.write(instruction.rd, to_unsigned32(instruction.imm))
        return None

    def _exec_ldui(self, instruction: Ldui) -> None:
        low = self.gprs.read(instruction.rs) & 0x1FFFF
        value = ((instruction.imm & 0x7FFF) << 17) | low
        self.gprs.write(instruction.rd, value)
        return None

    def _exec_ld(self, instruction: Ld) -> None:
        address = to_unsigned32(
            self.gprs.read(instruction.rt) + instruction.imm)
        self.gprs.write(instruction.rd, self.memory.load(address))
        return None

    def _exec_st(self, instruction: St) -> None:
        address = to_unsigned32(
            self.gprs.read(instruction.rt) + instruction.imm)
        self.memory.store(address, self.gprs.read(instruction.rs))
        return None

    def _exec_fmr(self, instruction: Fmr) -> None:
        self._execute_fmr(instruction)
        return None

    def _exec_logical(self, instruction: LogicalOp) -> None:
        s = self.gprs.read(instruction.rs)
        t = self.gprs.read(instruction.rt)
        if instruction.mnemonic_name == "AND":
            result = s & t
        elif instruction.mnemonic_name == "OR":
            result = s | t
        else:
            result = s ^ t
        self.gprs.write(instruction.rd, result)
        return None

    def _exec_not(self, instruction: Not) -> None:
        self.gprs.write(instruction.rd, ~self.gprs.read(instruction.rt))
        return None

    def _exec_arith(self, instruction: ArithOp) -> None:
        s = self.gprs.read(instruction.rs)
        t = self.gprs.read(instruction.rt)
        if instruction.mnemonic_name == "ADD":
            result = s + t
        else:
            result = s - t
        self.gprs.write(instruction.rd, result)
        return None

    def _exec_qwait(self, instruction: QWait) -> None:
        self._process_wait(instruction.cycles)
        return None

    def _exec_qwaitr(self, instruction: QWaitR) -> None:
        value = self.gprs.read(instruction.rs)
        # Only the low 20 bits participate (Section 4.2).
        self._process_wait(value & ((1 << 20) - 1))
        return None

    def _exec_smis(self, instruction: SMIS) -> None:
        self.quantum_pipeline.process_smis(instruction)
        return None

    def _exec_smit(self, instruction: SMIT) -> None:
        self.quantum_pipeline.process_smit(instruction)
        return None

    def _exec_bundle(self, instruction: Bundle) -> None:
        self._process_bundle(instruction)
        return None

    #: The per-class dispatch table (STOP is intercepted by the fetch
    #: loop before dispatch, exactly as before).
    _DISPATCH: dict[type, Callable] = {
        Nop: _exec_nop,
        Cmp: _exec_cmp,
        Br: _exec_br,
        Fbr: _exec_fbr,
        Ldi: _exec_ldi,
        Ldui: _exec_ldui,
        Ld: _exec_ld,
        St: _exec_st,
        Fmr: _exec_fmr,
        LogicalOp: _exec_logical,
        Not: _exec_not,
        ArithOp: _exec_arith,
        QWait: _exec_qwait,
        QWaitR: _exec_qwaitr,
        SMIS: _exec_smis,
        SMIT: _exec_smit,
        Bundle: _exec_bundle,
    }

    def _execute_fmr(self, instruction: Fmr) -> None:
        """FMR with the CFC stall: wait until C_i reaches zero.

        A stalled FMR is a completion signal for the operation
        combination buffer: the in-order classical pipeline cannot feed
        the quantum pipeline another bundle until the stall resolves, so
        the buffered timing point (e.g. the measurement this FMR waits
        on) is flushed downstream first.
        """
        register = self.q_registers.register(instruction.qubit)
        if not register.valid:
            pending_point = self.quantum_pipeline.flush_pending()
            if pending_point is not None:
                self._schedule_point(pending_point)
        while not register.valid:
            if not self._events:
                raise ShotTimeoutError(
                    f"FMR R{instruction.rd}, Q{instruction.qubit} waits "
                    f"forever: no measurement result will ever arrive",
                    qubit=instruction.qubit, register=instruction.rd,
                    elapsed_ns=self._classical_time_ns,
                    instructions_executed=self._trace.instructions_executed)
            self._process_event(heapq.heappop(self._events))
        write_time = self._last_qreg_write_ns.get(instruction.qubit)
        if write_time is not None and write_time > self._classical_time_ns:
            self._classical_time_ns = (
                write_time + self.config.fmr_resync_ns +
                self.config.fmr_unstall_penalty_cycles *
                self.config.classical_cycle_ns)
        self.gprs.write(instruction.rd, register.value)

    # ------------------------------------------------------------------
    # Quantum instruction handling (reserve phase)
    # ------------------------------------------------------------------
    def _process_wait(self, cycles: int) -> None:
        flushed = self.quantum_pipeline.process_wait(cycles)
        if flushed is not None:
            self._schedule_point(flushed)

    def _process_bundle(self, bundle: Bundle) -> None:
        flushed, new_entries = self.quantum_pipeline.process_bundle(
            bundle, self._classical_time_ns)
        if flushed is not None:
            self._schedule_point(flushed)
        # Measurement issue invalidates the Q register immediately
        # (Section 3.6, step 1).
        for entry in new_entries:
            if entry.micro_op.is_measurement:
                self.q_registers.register(entry.qubit).on_measure_issued()

    def _schedule_point(self, point: ReservedPoint) -> None:
        """Timing-queue insertion: compute the trigger time and enqueue."""
        config = self.config
        plan = self.fault_plan
        if plan is not None and plan.fire(
                "timing_overflow", cycle=point.cycle,
                occupancy=self._outstanding_triggers,
                depth=config.timing_queue_depth):
            # Injected saturation: the timing controller stops draining,
            # so the reserve phase's enqueue can never complete.
            raise QueueOverflowError(
                f"timing queue overflow injected at cycle {point.cycle}: "
                f"the reserve phase cannot enqueue against a saturated "
                f"timing controller",
                queue="timing", depth=config.timing_queue_depth,
                occupancy=self._outstanding_triggers, cycle=point.cycle)
        reserve_done = (point.reserved_at_ns +
                        config.quantum_pipeline_depth_cycles *
                        config.classical_cycle_ns)
        if self._timeline_origin_ns is None:
            self._timeline_origin_ns = (
                reserve_done - point.cycle * config.quantum_cycle_ns)
        due = (self._timeline_origin_ns +
               point.cycle * config.quantum_cycle_ns)
        if reserve_done > due + 1e-9:
            if config.late_policy == "strict":
                raise TimingViolationError(
                    f"timing point at cycle {point.cycle} reserved "
                    f"{reserve_done - due:.1f} ns after its trigger time "
                    f"(Rreq exceeds Rallowed)")
            # Slip policy: the timer stalls until the event arrives; all
            # later points are delayed by the same amount.
            self._trace.slips.append(SlipRecord(
                cycle=point.cycle, due_ns=due, actual_ns=reserve_done))
            self._timeline_origin_ns += reserve_done - due
            due = reserve_done
        # Timing-queue backpressure: a full queue stalls the reserve
        # phase until the controller catches up.
        while self._outstanding_triggers >= config.timing_queue_depth:
            if not self._events:
                break
            event = heapq.heappop(self._events)
            self._classical_time_ns = max(self._classical_time_ns,
                                          event.time_ns)
            self._process_event(event)
        for device_op in self.distributor.distribute(point.cycle,
                                                     point.micro_ops):
            queue = self._device_queues.setdefault(
                device_op.device, EventQueue(config.event_queue_depth))
            # Per-device event-queue backpressure (Fig. 9's FIFOs).
            while queue.full and self._events:
                event = heapq.heappop(self._events)
                self._classical_time_ns = max(self._classical_time_ns,
                                              event.time_ns)
                self._process_event(event)
            queue.push(device_op)
            self._push_event(due, "trigger", device_op)
            self._outstanding_triggers += 1

    # ------------------------------------------------------------------
    # Deterministic-domain event machinery
    # ------------------------------------------------------------------
    def _push_event(self, time_ns: float, kind: str, payload) -> None:
        heapq.heappush(self._events, _Event(
            time_ns=time_ns, priority=_EVENT_PRIORITY[kind],
            sequence=next(self._event_sequence), kind=kind,
            payload=payload))

    def _drain_events_until(self, time_ns: float) -> None:
        while self._events and self._events[0].time_ns <= time_ns:
            self._process_event(heapq.heappop(self._events))

    def _drain_all_events(self) -> None:
        while self._events:
            self._process_event(heapq.heappop(self._events))

    def _process_event(self, event: _Event) -> None:
        if event.kind == "trigger":
            self._outstanding_triggers -= 1
            self._trigger_device_operation(event.time_ns, event.payload)
        elif event.kind == "result":
            self._on_result_arrival(event.time_ns, event.payload)
        elif event.kind == "flag":
            pending: PendingResult = event.payload
            self.execution_flags.on_result(pending.qubit,
                                           pending.reported_result)
        elif event.kind == "qreg":
            pending = event.payload
            self.q_registers.register(pending.qubit).on_result(
                pending.reported_result)
            self._last_qreg_write_ns[pending.qubit] = event.time_ns
        else:
            raise RuntimeFault(f"unknown event kind {event.kind}")

    # ------------------------------------------------------------------
    # Trigger phase: FCE + pulse generation + measurement start
    # ------------------------------------------------------------------
    def _trigger_device_operation(self, time_ns: float,
                                  device_op: DeviceOperation) -> None:
        config = self.config
        # The timing controller consumes the device's event queue in
        # FIFO order; triggers are chronological per device, so the
        # popped entry must be the one due now.
        queue = self._device_queues[device_op.device]
        popped = queue.pop()
        if popped is not device_op:
            raise RuntimeFault(
                f"event queue of {device_op.device} delivered operations "
                f"out of order")
        output_ns = (time_ns + config.fce_evaluation_ns +
                     config.codeword_output_ns)
        for entry in device_op.micro_ops:
            micro_op = entry.micro_op
            passed = self.execution_flags.test(entry.qubit,
                                               micro_op.condition)
            self._trace.triggers.append(TriggerRecord(
                name=micro_op.operation, qubits=(entry.qubit,),
                cycle=device_op.cycle, trigger_ns=time_ns,
                output_ns=output_ns, executed=passed,
                condition=micro_op.condition.name))
            if not passed:
                continue
            if micro_op.is_measurement:
                self._start_measurement(entry, time_ns)
            elif micro_op.role is MicroOpRole.SINGLE:
                self._apply_single(entry, time_ns)
            else:
                self._collect_pair_half(entry, device_op.cycle, time_ns)

    def _start_measurement(self, entry: QubitMicroOp,
                           time_ns: float) -> None:
        pending = self.measurement_unit.start_measurement(entry.qubit,
                                                          time_ns)
        plan = self.fault_plan
        if plan is not None and plan.fire(
                "measurement_stall", qubit=entry.qubit,
                measure_start_ns=time_ns):
            # The result is lost on the UHFQC link: the readout ran but
            # nothing ever arrives at the controller.  A dependent FMR
            # then stalls forever and the shot-timeout guard fires.
            return
        self._push_event(pending.arrival_ns, "result", pending)

    def _on_result_arrival(self, time_ns: float,
                           pending: PendingResult) -> None:
        config = self.config
        self._trace.results.append(ResultRecord(
            qubit=pending.qubit, raw_result=pending.raw_result,
            reported_result=pending.reported_result,
            measure_start_ns=pending.measure_start_ns,
            arrival_ns=time_ns))
        # Execution flags refresh after ingest + combinatorial update;
        # the Q register write crosses into the classical domain.
        self._push_event(
            time_ns + config.result_ingest_ns + config.flag_update_ns,
            "flag", pending)
        self._push_event(
            time_ns + config.result_ingest_ns + config.qreg_write_ns,
            "qreg", pending)

    def _apply_single(self, entry: QubitMicroOp, time_ns: float) -> None:
        name = entry.micro_op.operation
        unitary = self.pulses.unitary_for(name)
        duration = (entry.micro_op.duration_cycles *
                    self.config.quantum_cycle_ns)
        self.plant.apply_unitary(name, unitary, (entry.qubit,), time_ns,
                                 duration)

    def _collect_pair_half(self, entry: QubitMicroOp, cycle: int,
                           time_ns: float) -> None:
        """Two-qubit gates: apply the joint unitary when both the
        source and target micro-operations have been released."""
        if entry.pair is None:
            raise RuntimeFault(
                f"{entry.micro_op.operation} micro-op lacks pair info")
        key = (cycle, entry.pair)
        roles = self._pending_pairs.setdefault(key, set())
        roles.add(entry.micro_op.role)
        if {MicroOpRole.SOURCE, MicroOpRole.TARGET} <= roles:
            del self._pending_pairs[key]
            name = entry.micro_op.operation
            unitary = self.pulses.unitary_for(name)
            duration = (entry.micro_op.duration_cycles *
                        self.config.quantum_cycle_ns)
            self.plant.apply_unitary(name, unitary, entry.pair, time_ns,
                                     duration)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def timeline_origin_ns(self) -> float | None:
        """Wall time of timeline cycle 0 (None before the first point)."""
        return self._timeline_origin_ns

    def instruction_memory(self) -> list[Instruction]:
        """The decoded instruction memory contents."""
        return list(self._instructions)
