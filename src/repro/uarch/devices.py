"""Device model and the device event distributor (Fig. 9 / Fig. 10).

Operating a qubit involves several slave devices: microwave AWGs routed
through the vector switch matrix for x/y rotations, flux AWGs for CZ
gates, and UHFQC units per feedline for measurement.  The *device event
distributor* reorganises the per-qubit micro-operations of one timing
point into per-device *device operations*, which are then buffered in
per-device event queues awaiting their trigger time.

The pulse tables of the devices (codeword -> pulse) are configured at
compile time from the same operation set as the assembler and microcode
unit, completing the three-way consistency requirement of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.microcode import DeviceKind, MicroOperation, MicroOpRole
from repro.core.operations import OperationSet
from repro.topology.chip import QuantumChipTopology


@dataclass(frozen=True)
class DeviceId:
    """Identity of one slave device channel."""

    kind: DeviceKind
    index: int  # qubit address for microwave/flux, feedline for measurement

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.index}]"


@dataclass(frozen=True)
class QubitMicroOp:
    """A micro-operation bound to one concrete qubit (or qubit role)."""

    micro_op: MicroOperation
    qubit: int
    pair: tuple[int, int] | None = None  # set for two-qubit roles


@dataclass(frozen=True)
class DeviceOperation:
    """One codeword-triggered action on one device at one timing point."""

    device: DeviceId
    cycle: int
    micro_ops: tuple[QubitMicroOp, ...]

    def qubits(self) -> tuple[int, ...]:
        """All qubits this device operation drives."""
        return tuple(entry.qubit for entry in self.micro_ops)


class PulseLibrary:
    """Codeword-triggered pulse generation: codeword -> unitary/duration.

    This stands in for the HDAWG waveform tables: each micro-operation
    codeword selects a pulse.  Two-qubit operations contribute a single
    *joint* unitary which the machine applies when both the source and
    target micro-operations of the same pair have been released.
    """

    def __init__(self, operations: OperationSet):
        self.operations = operations
        # Waveform-table cache: C-contiguous complex128 copies of each
        # operation's unitary, so the per-trigger hot path never pays
        # dtype conversion or layout fixes.  Keyed by name and guarded
        # by the operation object's identity in case an operation is
        # re-registered between shots.
        self._unitary_cache: dict[str, tuple[int, np.ndarray]] = {}

    def unitary_for(self, name: str) -> np.ndarray:
        """The unitary implementing a configured operation (cached)."""
        operation = self.operations.get(name)
        if operation.unitary is None:
            raise ConfigurationError(
                f"operation {name} has no pulse-defined unitary")
        cached = self._unitary_cache.get(name)
        if cached is not None and cached[0] == id(operation):
            return cached[1]
        # Always copy: freezing the operation's own array would freeze
        # the module-level gate constants it may alias.
        unitary = np.array(operation.unitary, dtype=complex, order="C")
        unitary.flags.writeable = False
        self._unitary_cache[name] = (id(operation), unitary)
        return unitary

    def duration_cycles(self, name: str) -> int:
        """Duration (timing cycles) of a configured operation."""
        return self.operations.get(name).duration_cycles


class DeviceEventDistributor:
    """Reorganises micro-operations into per-device operations.

    Routing rules (Fig. 10):

    * microwave micro-ops -> the microwave channel of their qubit;
    * flux micro-ops -> the flux channel of their qubit;
    * measurement micro-ops -> the UHFQC of the qubit's feedline
      (multiple qubits on one feedline share one device operation —
      frequency-multiplexed readout).
    """

    def __init__(self, topology: QuantumChipTopology):
        self.topology = topology

    def distribute(self, cycle: int,
                   qubit_micro_ops: list[QubitMicroOp]
                   ) -> list[DeviceOperation]:
        """Group one timing point's micro-ops into device operations."""
        grouped: dict[DeviceId, list[QubitMicroOp]] = {}
        for entry in qubit_micro_ops:
            device = self._route(entry)
            grouped.setdefault(device, []).append(entry)
        return [DeviceOperation(device=device, cycle=cycle,
                                micro_ops=tuple(entries))
                for device, entries in grouped.items()]

    def _route(self, entry: QubitMicroOp) -> DeviceId:
        kind = entry.micro_op.device
        if kind is DeviceKind.MEASUREMENT:
            feedline = self.topology.feedline_of(entry.qubit)
            if feedline is None:
                raise ConfigurationError(
                    f"qubit {entry.qubit} has no feedline; cannot route "
                    f"measurement")
            return DeviceId(kind=kind, index=feedline)
        return DeviceId(kind=kind, index=entry.qubit)


class EventQueue:
    """A bounded FIFO of device operations awaiting their trigger time.

    The queues decouple the non-deterministic (reserve) domain from the
    deterministic (trigger) domain; a full queue back-pressures the
    reserve phase, exactly like the hardware FIFOs.
    """

    def __init__(self, depth: int):
        self.depth = depth
        self._entries: list[DeviceOperation] = []

    def push(self, operation: DeviceOperation) -> None:
        """Append an operation; caller must check :meth:`full` first."""
        if self.full:
            raise ConfigurationError("event queue overflow")
        self._entries.append(operation)

    def pop(self) -> DeviceOperation:
        """Remove and return the oldest operation."""
        return self._entries.pop(0)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    def __len__(self) -> int:
        return len(self._entries)
