"""QuMA v2 microarchitecture simulator (Fig. 9 / Fig. 10)."""

from repro.uarch.config import UarchConfig, slip_config
from repro.uarch.dataflow import DataMemoryReport, analyze_data_memory
from repro.uarch.devices import (
    DeviceEventDistributor,
    DeviceId,
    DeviceOperation,
    EventQueue,
    PulseLibrary,
    QubitMicroOp,
)
from repro.uarch.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRecord,
    FaultSpec,
)
from repro.uarch.machine import QuMAv2
from repro.uarch.measurement import (
    MeasurementUnit,
    MockCursorView,
    PendingResult,
)
from repro.uarch.quantum_pipeline import OpSel, QuantumPipeline, ReservedPoint
from repro.uarch.replay import (
    EngineStats,
    ReplayAudit,
    MeasurementSample,
    ReplayError,
    TimelineTree,
    replay_unsupported_reason,
    replay_unsupported_reasons,
)
from repro.uarch.trace import (
    ResultRecord,
    ShotCounts,
    ShotTrace,
    SlipRecord,
    TriggerRecord,
)

__all__ = [
    "DataMemoryReport",
    "DeviceEventDistributor",
    "DeviceId",
    "DeviceOperation",
    "EngineStats",
    "EventQueue",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "MeasurementSample",
    "MeasurementUnit",
    "MockCursorView",
    "OpSel",
    "PendingResult",
    "PulseLibrary",
    "QuMAv2",
    "QuantumPipeline",
    "QubitMicroOp",
    "ReplayAudit",
    "ReplayError",
    "ReservedPoint",
    "ResultRecord",
    "ShotCounts",
    "ShotTrace",
    "SlipRecord",
    "TimelineTree",
    "TriggerRecord",
    "UarchConfig",
    "analyze_data_memory",
    "replay_unsupported_reason",
    "replay_unsupported_reasons",
    "slip_config",
]
