"""Quantum pipeline: VLIW lanes, mask resolution, operation combination.

Implements the left half of Fig. 9's quantum pipeline:

* the **timestamp manager** consumes QWAIT(R) and PI fields, producing
  timing points (delegated to the same arithmetic as the architectural
  timeline model);
* each **VLIW lane** translates its q opcode through the microcode unit
  and reads its S/T target register;
* the **quantum microinstruction buffer** resolves the mask-based qubit
  address into per-qubit micro-operation selection signals
  (Table 2) — ``OpSel_i`` in {NONE, SRC, TGT, BOTH};
* the **operation combination** module merges the lanes' micro-ops and
  accumulates everything belonging to one timing point (a long bundle
  spans several instruction words with PI = 0); it raises
  :class:`~repro.core.errors.OperationConflictError` when two
  micro-operations land on the same qubit, in which case "the quantum
  processor stops" (Section 4.3).

The pipeline emits :class:`ReservedPoint` objects — a completed timing
point with its per-qubit micro-ops — which the machine hands to the
device event distributor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import (
    AssemblyError,
    OperationConflictError,
)
from repro.core.instructions import Bundle, SMIS, SMIT
from repro.core.isa import EQASMInstantiation
from repro.core.microcode import MicrocodeUnit, MicroOpRole
from repro.core.registers import TargetRegisterFile
from repro.uarch.devices import QubitMicroOp


class OpSel(enum.Enum):
    """Micro-operation selection signal per qubit (Table 2)."""

    NONE = 0b00
    SRC = 0b01
    TGT = 0b10
    BOTH = 0b11


@dataclass
class ReservedPoint:
    """A timing point whose operations have been fully collected."""

    cycle: int
    micro_ops: list[QubitMicroOp] = field(default_factory=list)
    reserved_at_ns: float = 0.0


class QuantumPipeline:
    """The reserve-phase hardware of QuMA v2."""

    def __init__(self, isa: EQASMInstantiation,
                 microcode: MicrocodeUnit | None = None):
        self.isa = isa
        self.microcode = microcode or MicrocodeUnit(isa.operations)
        self.s_registers = TargetRegisterFile(
            "S", isa.num_single_qubit_target_registers,
            isa.qubit_mask_field_width)
        self.t_registers = TargetRegisterFile(
            "T", isa.num_two_qubit_target_registers,
            isa.pair_mask_field_width)
        self._current_cycle = 0
        self._pending: ReservedPoint | None = None

    # ------------------------------------------------------------------
    # Shot lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear timeline state and target registers (new shot)."""
        self.s_registers.reset()
        self.t_registers.reset()
        self._current_cycle = 0
        self._pending = None

    # ------------------------------------------------------------------
    # Instruction processing (reserve phase)
    # ------------------------------------------------------------------
    def process_smis(self, instruction: SMIS) -> None:
        """Update a single-qubit target register."""
        self.s_registers.write(instruction.sd,
                               self.isa.qubit_mask(instruction.qubits))

    def process_smit(self, instruction: SMIT) -> None:
        """Update a two-qubit target register (mask validity checked)."""
        mask = self.isa.pair_mask(instruction.pairs)
        self.isa.topology.validate_pair_mask(mask)
        self.t_registers.write(instruction.td, mask)

    def process_wait(self, cycles: int) -> ReservedPoint | None:
        """Advance the timeline; flushes a pending point if the wait
        moves to a new timing point (completion detection by
        "recognising a new timing point", Section 4.3)."""
        if cycles < 0:
            raise AssemblyError("negative wait")
        flushed = None
        if cycles > 0:
            flushed = self.flush_pending()
        self._current_cycle += cycles
        return flushed

    def process_bundle(
            self, bundle: Bundle, reserved_at_ns: float,
    ) -> tuple[ReservedPoint | None, list[QubitMicroOp]]:
        """Process one bundle instruction word.

        Returns ``(flushed, new_entries)``: the *previous* timing point
        if this bundle starts a new one (PI > 0), and the micro-ops this
        word contributed (the machine uses the latter to invalidate Q
        registers when measurements issue).  The new point stays
        buffered until completed.
        """
        flushed = None
        if bundle.pi > 0:
            flushed = self.flush_pending()
            self._current_cycle += bundle.pi
        cycle = self._current_cycle
        if self._pending is None:
            self._pending = ReservedPoint(cycle=cycle)
        self._pending.reserved_at_ns = reserved_at_ns
        new_entries = self._lane_micro_ops(bundle)
        self._combine(self._pending, new_entries)
        return flushed, new_entries

    def flush_pending(self) -> ReservedPoint | None:
        """Release the buffered timing point (if any) downstream."""
        pending = self._pending
        self._pending = None
        return pending

    @property
    def current_cycle(self) -> int:
        """Cycle of the last generated timing point."""
        return self._current_cycle

    # ------------------------------------------------------------------
    # VLIW lanes + microinstruction buffer
    # ------------------------------------------------------------------
    def _lane_micro_ops(self, bundle: Bundle) -> list[QubitMicroOp]:
        entries: list[QubitMicroOp] = []
        if len(bundle.operations) > self.isa.vliw_width:
            raise AssemblyError(
                f"bundle with {len(bundle.operations)} operations exceeds "
                f"the {self.isa.vliw_width}-wide VLIW front end")
        lane_outputs = [self._lane(slot) for slot in bundle.operations]
        # Operation combination step 1: merge both VLIW lanes, raising
        # on any qubit receiving micro-ops from two lanes.
        seen: dict[int, str] = {}
        for lane_entries in lane_outputs:
            for entry in lane_entries:
                if entry.qubit in seen:
                    raise OperationConflictError(
                        f"VLIW lanes emit {seen[entry.qubit]} and "
                        f"{entry.micro_op.operation} on qubit {entry.qubit}")
                seen[entry.qubit] = entry.micro_op.operation
                entries.append(entry)
        return entries

    def _lane(self, slot) -> list[QubitMicroOp]:
        """One VLIW lane: microcode translation + mask resolution."""
        micro_ops = self.microcode.translate_name(slot.name)
        if not micro_ops:  # QNOP
            return []
        operation = self.isa.operations.get(slot.name)
        if slot.register is None:
            raise AssemblyError(f"{slot.name} lacks a target register")
        kind, index = slot.register
        if operation.uses_two_qubit_target:
            mask = self.t_registers.read(index)
            selection = self.resolve_pair_mask(mask)
            by_role = {m.role: m for m in micro_ops}
            entries = []
            pair_of = self._pair_lookup(mask)
            for qubit, signal in selection.items():
                if signal is OpSel.SRC:
                    entries.append(QubitMicroOp(
                        micro_op=by_role[MicroOpRole.SOURCE], qubit=qubit,
                        pair=pair_of[qubit]))
                elif signal is OpSel.TGT:
                    entries.append(QubitMicroOp(
                        micro_op=by_role[MicroOpRole.TARGET], qubit=qubit,
                        pair=pair_of[qubit]))
            if not entries:
                raise AssemblyError(
                    f"{slot.name} T{index} selects no qubit pairs")
            return entries
        mask = self.s_registers.read(index)
        qubits = self.isa.qubits_from_mask(mask)
        if not qubits:
            raise AssemblyError(f"{slot.name} S{index} selects no qubits")
        micro_op = micro_ops[0]
        return [QubitMicroOp(micro_op=micro_op, qubit=qubit)
                for qubit in qubits]

    # ------------------------------------------------------------------
    # Mask resolution (Table 2)
    # ------------------------------------------------------------------
    def resolve_single_mask(self, mask: int) -> dict[int, OpSel]:
        """OpSel signals for a single-qubit operation mask."""
        selection = {qubit: OpSel.NONE for qubit in self.isa.topology.qubits}
        for qubit in self.isa.qubits_from_mask(mask):
            selection[qubit] = OpSel.BOTH
        return selection

    def resolve_pair_mask(self, mask: int) -> dict[int, OpSel]:
        """OpSel signals for a two-qubit operation mask.

        For every selected edge, the edge's source qubit gets SRC
        ('01') and its target qubit TGT ('10'); qubits on no selected
        edge get NONE ('00').  Overlapping edges raise (invalid T
        register content, normally caught by the assembler).
        """
        self.isa.topology.validate_pair_mask(mask)
        selection = {qubit: OpSel.NONE for qubit in self.isa.topology.qubits}
        for pair in self.isa.topology.pairs:
            if (mask >> pair.address) & 1:
                selection[pair.source] = OpSel.SRC
                selection[pair.target] = OpSel.TGT
        return selection

    def _pair_lookup(self, mask: int) -> dict[int, tuple[int, int]]:
        """Map each involved qubit to its (source, target) pair."""
        lookup: dict[int, tuple[int, int]] = {}
        for pair in self.isa.topology.pairs:
            if (mask >> pair.address) & 1:
                lookup[pair.source] = pair.as_tuple()
                lookup[pair.target] = pair.as_tuple()
        return lookup

    # ------------------------------------------------------------------
    # Operation combination step 2: cross-instruction accumulation
    # ------------------------------------------------------------------
    @staticmethod
    def _combine(point: ReservedPoint,
                 new_entries: list[QubitMicroOp]) -> None:
        used = {entry.qubit for entry in point.micro_ops}
        for entry in new_entries:
            if entry.qubit in used:
                raise OperationConflictError(
                    f"two bundle instructions specify operations on qubit "
                    f"{entry.qubit} at cycle {point.cycle}")
            used.add(entry.qubit)
            point.micro_ops.append(entry)
