"""Microarchitecture configuration: clocks, stage latencies, queue depths.

The Central Controller of the paper (Section 4.4) runs its timing
controller and fast-conditional-execution unit at 50 MHz (20 ns cycle)
and everything else at 100 MHz (10 ns cycle); the UHFQC link is a 32-bit
digital interface at 50 MHz.  The latency constants below model those
paths; they are calibrated once so the two measured feedback latencies
of Section 5 (~92 ns fast conditional, ~316 ns CFC) emerge from the
simulated pipelines, and are documented in EXPERIMENTS.md.

``late_policy`` selects what the timing controller does when the
reserve phase falls behind the timeline (the quantum-operation
issue-rate problem, Section 1.2):

* ``"strict"`` — raise :class:`~repro.core.errors.TimingViolationError`
  (the default; real experiments are mis-timed and must be rejected);
* ``"slip"`` — stall the timer until the event arrives and record the
  slippage, modelling a queue-driven timing controller that waits on an
  empty queue.  Used by the issue-rate benchmarks to *quantify* how far
  an ISA configuration falls behind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class UarchConfig:
    """All tunable parameters of the QuMA v2 model."""

    # Clocks (Section 4.4).
    classical_cycle_ns: float = 10.0   # 100 MHz classical pipeline
    quantum_cycle_ns: float = 20.0     # 50 MHz timing / FCE domain

    # Classical pipeline behaviour.
    branch_taken_penalty_cycles: int = 4   # pipeline flush on taken BR
    fmr_unstall_penalty_cycles: int = 2    # restart after an FMR stall

    # Quantum pipeline depth: decode, microcode lookup, target-register
    # read / mask resolution, operation combination (Fig. 9) — in
    # classical cycles from issue to event-queue insertion.
    quantum_pipeline_depth_cycles: int = 6

    # Measurement result path (UHFQC -> Central Controller).
    result_transport_ns: float = 28.0  # 16-bit link serialization
    result_ingest_ns: float = 12.0     # CC-internal capture of the result

    # Fast-conditional-execution path (Section 4.3, measured ~92 ns).
    flag_update_ns: float = 20.0       # combinatorial flag refresh (50 MHz)
    fce_evaluation_ns: float = 20.0    # go/no-go decision at trigger time
    codeword_output_ns: float = 40.0   # 32-bit codeword interface + device

    # CFC-only resynchronisation: Q-register write into the classical
    # domain plus the cross-domain handshake releasing a stalled FMR.
    qreg_write_ns: float = 40.0
    fmr_resync_ns: float = 40.0

    # Queue capacities (finite FIFOs; the reserve phase stalls on a full
    # queue, bounding run-ahead like the hardware).
    timing_queue_depth: int = 1024
    event_queue_depth: int = 4096

    # Behaviour when an event is reserved after its trigger due time.
    late_policy: str = "strict"

    # Per-shot watchdog: abort any shot whose simulated timeline passes
    # this many nanoseconds (None disables the guard).  A shot that
    # exceeds the budget raises
    # :class:`~repro.core.errors.ShotTimeoutError` instead of spinning —
    # the runtime guard against stalled measurement paths (an FMR
    # waiting on a result that never arrives) and runaway loops.
    shot_time_budget_ns: float | None = None

    def __post_init__(self) -> None:
        if self.classical_cycle_ns <= 0 or self.quantum_cycle_ns <= 0:
            raise ConfigurationError("cycle times must be positive")
        if self.late_policy not in ("strict", "slip"):
            raise ConfigurationError(
                f"late_policy must be 'strict' or 'slip', "
                f"got {self.late_policy!r}")
        if self.timing_queue_depth < 1 or self.event_queue_depth < 1:
            raise ConfigurationError("queue depths must be at least 1")
        if (self.shot_time_budget_ns is not None
                and self.shot_time_budget_ns <= 0):
            raise ConfigurationError(
                "shot_time_budget_ns must be positive (or None)")

    @property
    def fast_conditional_path_ns(self) -> float:
        """Result-in to digital-out along the fast-conditional path when
        the trigger is immediate: ingest + flag update + evaluation +
        codeword output.  Calibration target: ~92 ns (Section 5)."""
        return (self.result_ingest_ns + self.flag_update_ns +
                self.fce_evaluation_ns + self.codeword_output_ns)


def slip_config(base: UarchConfig | None = None) -> UarchConfig:
    """A copy of a configuration with the slip (non-raising) policy."""
    base = base or UarchConfig()
    from dataclasses import replace
    return replace(base, late_policy="slip")
