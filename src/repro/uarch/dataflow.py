"""Static dataflow analysis of data-memory traffic in a decoded binary.

The branch-resolved replay engine requires shots to be independent:
nothing one shot writes may be observed by a later shot.  Data memory
is the only architectural state that survives :meth:`QuMAv2.reset_shot`
(it is the host communication channel), so every ``ST`` used to be a
hard replay blocker.  Most real programs, however, only *store* to data
memory — they deposit measurement results for the host and never load
them back — and those stores are dead as far as shot-to-shot coupling
is concerned.

This module proves that with a small abstract interpretation over the
decoded instruction list:

* a forward **constant-propagation** pass computes, at every reachable
  program point, which GPRs hold statically known values (registers
  start at zero each shot, ``LDI``/``LDUI`` introduce constants, the
  ALU instructions fold them, and ``LD``/``FMR``/``FBR`` results are
  unknown); the join over branch/loop edges keeps a value only when
  every incoming path agrees;
* the effective byte address of every reachable ``LD``/``ST`` is then
  evaluated from the incoming state (``to_unsigned32(R[rt] + imm)``,
  exactly the interpreter's address arithmetic);
* a store is **dead across shots** when no load anywhere in the program
  can alias it.  Because data memory persists across shots, "below it"
  includes the wrap-around into the next shot, so the check is address
  disjointness: every store and every load must have a statically known
  address, and the two address sets must not intersect.  A program with
  stores but no (reachable) loads is trivially safe, whatever the store
  addresses are.

The replay relaxation this buys is documented on
:class:`DataMemoryReport`: replayed shots skip the dead stores, so
after a replay run the data memory holds the values of the last
*interpreter* (tree-growth) shot rather than the last shot overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.instructions import (
    ArithOp,
    Br,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Not,
    St,
    Stop,
)
from repro.core.registers import ComparisonFlag, to_unsigned32

#: Lattice top: the register may hold different values on different
#: paths (or depends on run-time state such as memory or measurements).
_UNKNOWN = object()


@dataclass(frozen=True)
class DataMemoryReport:
    """What the pass proved about a program's ``LD``/``ST`` traffic.

    ``live_reasons`` is empty exactly when the program is replay-safe:
    every (reachable) store is dead across shots.  When replay runs
    such a program, cached shots never execute the stores, so the data
    memory a host would read afterwards reflects the last tree-growth
    (interpreter) shot, not the last shot overall — acceptable because
    the proof says no in-program load observes those addresses.
    """

    #: Reachable ST instructions.
    store_count: int
    #: Reachable LD instructions.
    load_count: int
    #: Stores proven dead across shots (== store_count when safe).
    dead_store_count: int
    #: Every reason the stores are (or may be) live; empty when safe.
    live_reasons: tuple[str, ...]

    @property
    def replay_safe(self) -> bool:
        """True when no load can observe any store, this shot or later."""
        return not self.live_reasons


def _join(into: dict | None, other: dict) -> tuple[dict, bool]:
    """Merge ``other`` into state ``into``; missing keys read as 0.

    Returns the merged state and whether it differs from ``into``.
    """
    if into is None:
        return dict(other), True
    merged = {}
    for register in set(into) | set(other):
        a = into.get(register, 0)
        b = other.get(register, 0)
        merged[register] = a if a is b or a == b else _UNKNOWN
    changed = any(merged.get(register, 0) != into.get(register, 0)
                  for register in set(merged) | set(into))
    return merged, changed


def _transfer(state: dict, instruction: Instruction) -> dict:
    """Abstract execution of one instruction (register effects only)."""

    def read(register: int):
        return state.get(register, 0)

    out = dict(state)
    if isinstance(instruction, Ldi):
        out[instruction.rd] = to_unsigned32(instruction.imm)
    elif isinstance(instruction, Ldui):
        low = read(instruction.rs)
        if low is _UNKNOWN:
            out[instruction.rd] = _UNKNOWN
        else:
            out[instruction.rd] = ((instruction.imm & 0x7FFF) << 17) | \
                (low & 0x1FFFF)
    elif isinstance(instruction, (Ld, Fmr, Fbr)):
        # Memory contents, measurement results and comparison flags are
        # run-time state the static pass does not model.
        out[instruction.rd] = _UNKNOWN
    elif isinstance(instruction, Not):
        value = read(instruction.rt)
        out[instruction.rd] = _UNKNOWN if value is _UNKNOWN else \
            to_unsigned32(~value)
    elif isinstance(instruction, (LogicalOp, ArithOp)):
        s = read(instruction.rs)
        t = read(instruction.rt)
        if s is _UNKNOWN or t is _UNKNOWN:
            out[instruction.rd] = _UNKNOWN
        else:
            name = instruction.mnemonic_name
            if name == "AND":
                result = s & t
            elif name == "OR":
                result = s | t
            elif name == "XOR":
                result = s ^ t
            elif name == "ADD":
                result = s + t
            else:  # SUB
                result = s - t
            out[instruction.rd] = to_unsigned32(result)
    return out


def _successors(index: int, instruction: Instruction,
                length: int) -> list[int]:
    """CFG successors of the instruction at ``index`` (in-range only)."""
    if isinstance(instruction, Stop):
        return []
    if isinstance(instruction, Br) and isinstance(instruction.target, int):
        if instruction.condition is ComparisonFlag.ALWAYS:
            targets = [index + instruction.target]
        elif instruction.condition is ComparisonFlag.NEVER:
            targets = [index + 1]
        else:
            targets = [index + 1, index + instruction.target]
        return [t for t in targets if 0 <= t < length]
    return [t for t in (index + 1,) if 0 <= t < length]


def analyze_data_memory(
        instructions: Iterable[Instruction]) -> DataMemoryReport:
    """Prove which stores are dead across shots (see module docstring)."""
    instructions = list(instructions)
    if any(isinstance(i, Br) and isinstance(i.target, str)
           for i in instructions):
        # Unresolved labels never reach the machine (the assembler
        # resolves them); refuse to reason rather than mis-prove.
        has_store = any(isinstance(i, St) for i in instructions)
        reasons = ("program has unresolved branch labels — store "
                   "liveness cannot be proven",) if has_store else ()
        return DataMemoryReport(
            store_count=sum(isinstance(i, St) for i in instructions),
            load_count=sum(isinstance(i, Ld) for i in instructions),
            dead_store_count=0, live_reasons=reasons)

    # Phase 1: constant propagation to a fixpoint over the CFG.
    states: dict[int, dict] = {}
    worklist: list[int] = []
    if instructions:
        states[0] = {}
        worklist.append(0)
    while worklist:
        index = worklist.pop()
        out = _transfer(states[index], instructions[index])
        for successor in _successors(index, instructions[index],
                                     len(instructions)):
            merged, changed = _join(states.get(successor), out)
            if changed:
                states[successor] = merged
                worklist.append(successor)

    # Phase 2: evaluate every reachable access address from its
    # incoming (fixpoint) state.
    def address_of(state: dict, base: int, imm: int):
        value = state.get(base, 0)
        return _UNKNOWN if value is _UNKNOWN else to_unsigned32(value + imm)

    stores: list[tuple[int, object]] = []
    loads: list[tuple[int, object]] = []
    for index, state in states.items():
        instruction = instructions[index]
        if isinstance(instruction, St):
            stores.append((index, address_of(state, instruction.rt,
                                             instruction.imm)))
        elif isinstance(instruction, Ld):
            loads.append((index, address_of(state, instruction.rt,
                                            instruction.imm)))

    if not stores or not loads:
        # No stores: nothing persists.  No loads: nothing can observe
        # what persisted, so every store is dead across shots.
        return DataMemoryReport(store_count=len(stores),
                                load_count=len(loads),
                                dead_store_count=len(stores),
                                live_reasons=())

    reasons: list[str] = []
    unknown_loads = sorted(pc for pc, addr in loads if addr is _UNKNOWN)
    known_load_addresses = {addr for _, addr in loads
                            if addr is not _UNKNOWN}
    unknown_stores = sorted(pc for pc, addr in stores if addr is _UNKNOWN)
    if unknown_stores:
        pcs = ", ".join(str(pc) for pc in unknown_stores)
        reasons.append(
            f"ST at pc {pcs} writes data memory at a statically unknown "
            f"address — a LD may observe it across shots")
    if unknown_loads:
        pcs = ", ".join(str(pc) for pc in unknown_loads)
        reasons.append(
            f"LD at pc {pcs} reads data memory at a statically unknown "
            f"address — it may observe a ST from an earlier shot")
    dead = 0
    overlapping: list[tuple[int, int]] = []
    for pc, addr in stores:
        if addr is _UNKNOWN:
            continue
        if addr in known_load_addresses:
            overlapping.append((pc, addr))
        elif not unknown_loads:
            dead += 1
    if overlapping:
        detail = ", ".join(f"pc {pc} -> address {addr:#x}"
                           for pc, addr in overlapping)
        reasons.append(
            f"ST writes data memory that LD reads back ({detail}) — "
            f"the stored values are live across shots")
    return DataMemoryReport(store_count=len(stores), load_count=len(loads),
                            dead_store_count=dead,
                            live_reasons=tuple(reasons))
