"""Static dataflow analysis of data-memory traffic in a decoded binary.

The branch-resolved replay engine requires shots to be independent:
nothing one shot observes may come from an earlier shot (or from the
host) through state the outcome tree cannot key on.  Data memory is the
only architectural state that survives :meth:`QuMAv2.reset_shot` (it is
the host communication channel), so ``LD``/``ST`` traffic used to be a
hard replay blocker.  Two observations remove almost all of it:

* **Stores never block by themselves.**  A store only matters if a
  load can *observe* it across shots; the blocker set is therefore a
  property of the loads.
* **A load killed by a same-shot store is replay-safe.**  If every
  path from program entry to a ``LD`` passes through a ``ST`` to the
  same address first, the load can only ever observe data written
  *this* shot — and every same-shot value is a deterministic function
  of the measurement-outcome history, which is exactly what the replay
  tree keys on.  This is the classic compiler *kill*: the dominating
  store kills the cross-shot (and host) dependence.  Spill/reload
  scratch traffic — compute, deposit, reload — is the common shape.

The pass has two engines:

* **Exploration** (the precise tier): a path-sensitive abstract
  execution of the binary.  Registers start at zero each shot,
  ``LDI``/``LDUI`` introduce constants, the ALU folds them, and the
  comparison flags are modelled with the *real*
  :class:`~repro.core.registers.ComparisonFlags` semantics — so a
  branch whose ``CMP`` operands are statically known follows exactly
  one edge.  Backward branches with resolvable conditions (the common
  ``LDI``/``ADD``/``SUB``/``CMP``/``BR`` counter idiom) are thereby
  *unrolled*: loop-carried addresses stay constants, iteration by
  iteration.  A branch whose condition depends on run-time state
  (``FMR``/``FBR``/``LD`` results) explores both edges with the same
  state.  States are memoised on ``(pc, registers, flags)``, so the
  exploration terminates whenever the reachable abstract-state space
  is finite; a global state budget bounds pathological cases.  The
  result is an *exploded graph* — the CFG unrolled along resolved
  branches — over which three analyses run:

  - per-occurrence **addresses** of every ``LD``/``ST``;
  - **kill-analysis**: a forward must-available-store pass
    (intersection at joins) proving which load occurrences are
    dominated by a same-shot store to the same address;
  - the **per-shot measurement bound**: the longest path through the
    exploded graph counting measurement slots — for a loop-free
    binary this is the old static slot count, for a counted loop it
    is ``trip count x slots per iteration``, and only a genuinely
    unbounded loop (a cycle surviving in the exploded graph) leaves
    it unknown.

* **Joined fixpoint** (the conservative fallback): the classic
  constant propagation with joins over branch/loop edges (a value
  survives a join only when every incoming path agrees), plus the
  same must-available-store pass at pc granularity.  Used when the
  exploration budget is exceeded — a loop whose trip count is
  unbounded (condition never resolves while its state keeps changing)
  or too large to unroll.  Loop-carried values go unknown at joins,
  so the verdicts degrade exactly like the pre-kill-analysis pass.

Remaining hard blockers — reported per pc in ``live_reasons`` — are
only the loads that can genuinely observe another shot's (or the
host's) memory: an un-killed load aliasing a program store, or
unknown addresses on either side of a potential alias.  A load that
aliases *no* store still reads host memory, but the value is constant
within a run, so it replays; such binaries are merely excluded from
the cross-``run()`` tree cache (:attr:`DataMemoryReport.
cross_run_cacheable`) because the host may rewrite the address
between runs.

The replay relaxation this buys is documented on
:class:`DataMemoryReport`: replayed shots skip the stores, so after a
replay run the data memory holds the values of the last *interpreter*
(tree-growth) shot rather than the last shot overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.instructions import (
    ArithOp,
    Br,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Not,
    St,
    Stop,
)
from repro.core.registers import (
    ComparisonFlag,
    ComparisonFlags,
    to_unsigned32,
)

#: Lattice top: the register may hold different values on different
#: paths (or depends on run-time state such as memory or measurements).
_UNKNOWN = object()

#: Exploded-graph state budget.  Counted loops unroll one state per
#: iteration, so this bounds the unrollable trip count x loop size;
#: beyond it the pass falls back to the joined fixpoint.
EXPLORATION_STATE_BUDGET = 65_536


@dataclass(frozen=True)
class DataMemoryReport:
    """What the pass proved about a program's ``LD``/``ST`` traffic.

    ``live_reasons`` is empty exactly when the program is replay-safe:
    no load can observe memory from outside the current shot through a
    program store.  When replay runs such a program, cached shots never
    execute the stores, so the data memory a host would read afterwards
    reflects the last tree-growth (interpreter) shot, not the last shot
    overall — acceptable because every in-program load either is killed
    by a same-shot store or aliases no store at all.
    """

    #: Reachable ST instructions.
    store_count: int
    #: Reachable LD instructions.
    load_count: int
    #: Stores no un-killed load can observe (== store_count when safe).
    dead_store_count: int
    #: Loads proven killed by a dominating same-shot store on every
    #: path (they can never observe another shot's or the host's
    #: memory).
    killed_load_count: int
    #: Every reason a load may observe cross-shot state; empty when
    #: the program is replay-safe.
    live_reasons: tuple[str, ...]
    #: Backward branches whose condition resolved on every explored
    #: visit — counted loops the exploration fully unrolled.
    bounded_loop_count: int = 0
    #: Backward branches whose trip count the analysis could not pin
    #: down: the condition depends on run-time state (a genuinely
    #: unbounded loop), the branch never exits (its exploded node lies
    #: on a cycle), or — in "joined" fallback mode — every backward
    #: branch, since the unroll budget was exceeded before their trip
    #: counts resolved.
    unbounded_loop_pcs: tuple[int, ...] = ()
    #: Largest number of measurement slots one shot can trigger, or
    #: None when unknown (unbounded loop through a measurement, the
    #: analysis fell back, or the caller supplied no slot table).
    max_measurements_per_shot: int | None = None
    #: Which engine produced the verdicts: "exploration" (precise,
    #: loops unrolled), "joined" (budget fallback) or
    #: "unresolved-labels" (no CFG to analyse).
    analysis_mode: str = "exploration"

    @property
    def replay_safe(self) -> bool:
        """True when no load can observe state from outside the shot
        through a program store."""
        return not self.live_reasons

    @property
    def cross_run_cacheable(self) -> bool:
        """Whether a saturated replay tree may outlive the ``run()``.

        Killed loads only ever read same-shot data, so a host write to
        data memory between runs cannot change what they observe; a
        binary whose every load is killed (or that has no loads) keys
        cleanly on (binary, noise, config).  Any other load reads host
        memory — state the cache key cannot see — and pins the tree to
        a single run.
        """
        return self.replay_safe and \
            self.killed_load_count == self.load_count


# ----------------------------------------------------------------------
# Abstract transfer functions (shared by both engines)
# ----------------------------------------------------------------------
def _transfer(state: dict, instruction: Instruction) -> dict:
    """Abstract execution of one instruction (GPR effects only).

    Returns ``state`` itself when the instruction writes no register,
    so steady-state loop bodies do not churn dict copies.
    """

    def read(register: int):
        return state.get(register, 0)

    if isinstance(instruction, Ldi):
        value = to_unsigned32(instruction.imm)
        out = dict(state)
        out[instruction.rd] = value
        return out
    if isinstance(instruction, Ldui):
        low = read(instruction.rs)
        out = dict(state)
        if low is _UNKNOWN:
            out[instruction.rd] = _UNKNOWN
        else:
            out[instruction.rd] = ((instruction.imm & 0x7FFF) << 17) | \
                (low & 0x1FFFF)
        return out
    if isinstance(instruction, (Ld, Fmr, Fbr)):
        # Memory contents, measurement results and comparison flags
        # are run-time state this transfer does not model.  (The
        # exploration engine intercepts Fbr before calling here and
        # folds it when the dominating CMP's operands are known.)
        out = dict(state)
        out[instruction.rd] = _UNKNOWN
        return out
    if isinstance(instruction, Not):
        value = read(instruction.rt)
        out = dict(state)
        out[instruction.rd] = _UNKNOWN if value is _UNKNOWN else \
            to_unsigned32(~value)
        return out
    if isinstance(instruction, (LogicalOp, ArithOp)):
        s = read(instruction.rs)
        t = read(instruction.rt)
        out = dict(state)
        if s is _UNKNOWN or t is _UNKNOWN:
            out[instruction.rd] = _UNKNOWN
        else:
            name = instruction.mnemonic_name
            if name == "AND":
                result = s & t
            elif name == "OR":
                result = s | t
            elif name == "XOR":
                result = s ^ t
            elif name == "ADD":
                result = s + t
            else:  # SUB
                result = s - t
            out[instruction.rd] = to_unsigned32(result)
        return out
    return state


#: Memo table for _evaluate_condition — (operand pair, condition) ->
#: verdict, shared across programs (the domain is value-keyed).
_CONDITION_CACHE: dict = {}


def _evaluate_condition(flags, condition: ComparisonFlag):
    """Outcome of ``BR``/``FBR`` ``condition`` under abstract ``flags``.

    ``flags`` is either an ``(rs_value, rt_value)`` operand pair of the
    dominating ``CMP`` (``(0, 0)`` before any CMP, matching the reset
    state of :class:`ComparisonFlags`) or ``_UNKNOWN``.  Returns
    True/False, or ``_UNKNOWN`` when the operands are unknown — except
    for ``ALWAYS``/``NEVER``, which need no flags at all.  Evaluation
    goes through the real :class:`ComparisonFlags` so the abstract and
    concrete branch semantics can never drift.
    """
    if condition is ComparisonFlag.ALWAYS:
        return True
    if condition is ComparisonFlag.NEVER:
        return False
    if flags is _UNKNOWN:
        return _UNKNOWN
    key = (flags, condition)
    cached = _CONDITION_CACHE.get(key)
    if cached is None:
        probe = ComparisonFlags()
        probe.update(*flags)
        cached = probe.test(condition)
        if len(_CONDITION_CACHE) < 4096:
            _CONDITION_CACHE[key] = cached
    return cached


def _address_of(state: dict, base: int, imm: int):
    """Effective byte address, exactly the interpreter's arithmetic."""
    value = state.get(base, 0)
    return _UNKNOWN if value is _UNKNOWN else to_unsigned32(value + imm)


# ----------------------------------------------------------------------
# Engine 1: path-sensitive exploration (loops unrolled)
# ----------------------------------------------------------------------
class _Exploded:
    """The exploded graph: the CFG unrolled along resolved branches.

    One node per distinct reachable ``(pc, registers, flags)`` state;
    edges follow the abstract execution.  ``addresses[i]`` is the
    node's LD/ST effective address (None for other instructions),
    evaluated from its *incoming* state.
    """

    __slots__ = ("pcs", "succs", "addresses", "bounded_loop_pcs",
                 "unbounded_loop_pcs")

    def __init__(self):
        self.pcs: list[int] = []
        self.succs: list[list[int]] = []
        self.addresses: list[object] = []
        self.bounded_loop_pcs: set[int] = set()
        self.unbounded_loop_pcs: set[int] = set()


def _state_key(state: dict) -> tuple:
    """Canonical hashable form: zero-valued registers are dropped
    (missing reads as zero), unknown entries are kept distinct."""
    return tuple(sorted((register, value)
                 for register, value in state.items()
                 if value is _UNKNOWN or value != 0))


def _explore(instructions: list[Instruction],
             budget: int = EXPLORATION_STATE_BUDGET) -> _Exploded | None:
    """Build the exploded graph, or None when the budget is exceeded.

    The budget is exceeded exactly when the reachable abstract-state
    space keeps growing — a loop whose condition never resolves while
    its register state keeps changing (a genuinely unbounded loop with
    a live counter) or a counted loop with a trip count too large to
    unroll.
    """
    length = len(instructions)
    graph = _Exploded()
    if not length:
        return graph
    ids: dict[tuple, int] = {}
    regs: list[dict] = []
    flag_states: list[object] = []

    def intern(pc: int, state: dict, flags) -> int | None:
        key = (pc, _state_key(state), flags)
        node = ids.get(key)
        if node is None:
            if len(graph.pcs) >= budget:
                return None
            node = len(graph.pcs)
            ids[key] = node
            graph.pcs.append(pc)
            graph.succs.append([])
            regs.append(state)
            flag_states.append(flags)
            instruction = instructions[pc]
            if isinstance(instruction, (St, Ld)):
                graph.addresses.append(
                    _address_of(state, instruction.rt, instruction.imm))
            else:
                graph.addresses.append(None)
            stack.append(node)
        return node

    stack: list[int] = []
    if intern(0, {}, (0, 0)) is None:
        return None
    while stack:
        node = stack.pop()
        pc = graph.pcs[node]
        state = regs[node]
        flags = flag_states[node]
        instruction = instructions[pc]
        if isinstance(instruction, Stop):
            continue
        out_flags = flags
        if isinstance(instruction, Cmp):
            s = state.get(instruction.rs, 0)
            t = state.get(instruction.rt, 0)
            out_flags = _UNKNOWN if (s is _UNKNOWN or t is _UNKNOWN) \
                else (s, t)
            out_state = state
        elif isinstance(instruction, Fbr):
            verdict = _evaluate_condition(flags, instruction.condition)
            out_state = dict(state)
            out_state[instruction.rd] = _UNKNOWN \
                if verdict is _UNKNOWN else int(verdict)
        else:
            out_state = _transfer(state, instruction)
        if isinstance(instruction, Br) and \
                isinstance(instruction.target, int):
            backward = instruction.target <= 0
            verdict = _evaluate_condition(flags, instruction.condition)
            if verdict is _UNKNOWN:
                next_pcs = [pc + 1, pc + instruction.target]
                if backward:
                    graph.unbounded_loop_pcs.add(pc)
            else:
                next_pcs = [pc + instruction.target if verdict else pc + 1]
                if backward:
                    graph.bounded_loop_pcs.add(pc)
        else:
            next_pcs = [pc + 1]
        seen_successors = set()
        for successor_pc in next_pcs:
            if not 0 <= successor_pc < length:
                continue  # running off the program is an implicit stop
            successor = intern(successor_pc, out_state, out_flags)
            if successor is None:
                return None
            if successor not in seen_successors:
                graph.succs[node].append(successor)
                seen_successors.add(successor)
    return graph


# ----------------------------------------------------------------------
# Shared graph analyses (run on exploded or pc-level graphs)
# ----------------------------------------------------------------------
def _must_written(num_nodes: int, succs: list[list[int]],
                  store_address: list[object],
                  relevant: frozenset) -> list[frozenset]:
    """Forward must-available-store sets (kill-analysis core).

    ``IN[n]`` is the set of addresses *every* path from entry to node
    ``n`` has definitely stored to before reaching ``n``; joins are set
    intersections.  A store with an unknown address contributes nothing
    (it cannot be proven to write any particular address — but neither
    can it un-write one, so it is harmless).  A load at node ``n`` is
    killed exactly when its (known) address is in ``IN[n]``.

    ``relevant`` is the set of addresses any load actually queries:
    stores to other addresses are never looked up, so tracking them
    would only bloat the sets — a counted deposit loop storing to
    thousands of distinct addresses stays O(loads) per set instead of
    O(trip count).
    """
    incoming: list[frozenset | None] = [None] * num_nodes
    if num_nodes:
        incoming[0] = frozenset()
    worklist = [0] if num_nodes else []
    while worklist:
        node = worklist.pop()
        out = incoming[node]
        address = store_address[node]
        if address is not None and address in relevant:
            out = out | {address}
        for successor in succs[node]:
            current = incoming[successor]
            merged = out if current is None else current & out
            if current is None or merged != current:
                incoming[successor] = merged
                worklist.append(successor)
    return [entry if entry is not None else frozenset()
            for entry in incoming]


def _kahn(num_nodes: int,
          succs: list[list[int]]) -> tuple[list[int], set[int]]:
    """Kahn topological order plus the cyclic residue.

    Every node is reachable from the entry, so the residue — nodes
    whose indegree never drains, including an entry with a back edge
    into it — is exactly the set of nodes on or behind a cycle.
    """
    indegree = [0] * num_nodes
    for node in range(num_nodes):
        for successor in succs[node]:
            indegree[successor] += 1
    order = [node for node in range(num_nodes) if indegree[node] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for successor in succs[node]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                order.append(successor)
    if len(order) == num_nodes:
        return order, set()
    return order, set(range(num_nodes)) - set(order)


def _cycle_nodes(num_nodes: int, succs: list[list[int]]) -> set[int]:
    """Nodes lying *on* a cycle (not merely downstream of one).

    Iterative Tarjan SCC — a node is cyclic when its component has
    more than one member, or it carries a self-loop.  Used to decide
    whether a resolved backward branch genuinely terminates: a
    ``BR ALWAYS, loop`` resolves on every visit yet its exploded node
    sits on a cycle, while a counted loop downstream of someone
    else's cycle does not.
    """
    unvisited = -1
    index = [unvisited] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    stack: list[int] = []
    counter = 0
    cyclic: set[int] = set()
    for root in range(num_nodes):
        if index[root] != unvisited:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, cursor = work[-1]
            if cursor == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            descended = False
            successors = succs[node]
            for position in range(cursor, len(successors)):
                successor = successors[position]
                if index[successor] == unvisited:
                    work[-1] = (node, position + 1)
                    work.append((successor, 0))
                    descended = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], index[successor])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in succs[node]:
                    cyclic.update(component)
    return cyclic


def _longest_slot_path(num_nodes: int, succs: list[list[int]],
                       node_slots: list[int]) -> int | None:
    """Maximum slot count along any entry path, or None on a cycle."""
    if not num_nodes:
        return 0
    order, cyclic = _kahn(num_nodes, succs)
    if cyclic:
        return None
    best = [0] * num_nodes
    best[0] = node_slots[0]
    for node in order:
        base = best[node]
        for successor in succs[node]:
            candidate = base + node_slots[successor]
            if candidate > best[successor]:
                best[successor] = candidate
    return max(best)


# ----------------------------------------------------------------------
# Engine 2: joined fixpoint (conservative fallback)
# ----------------------------------------------------------------------
def _join(into: dict | None, other: dict) -> tuple[dict, bool]:
    """Merge ``other`` into state ``into``; missing keys read as 0.

    Returns the merged state and whether it differs from ``into``.
    """
    if into is None:
        return dict(other), True
    merged = {}
    for register in set(into) | set(other):
        a = into.get(register, 0)
        b = other.get(register, 0)
        merged[register] = a if a is b or a == b else _UNKNOWN
    changed = any(merged.get(register, 0) != into.get(register, 0)
                  for register in set(merged) | set(into))
    return merged, changed


def _successors(index: int, instruction: Instruction,
                length: int) -> list[int]:
    """CFG successors of the instruction at ``index`` (in-range only)."""
    if isinstance(instruction, Stop):
        return []
    if isinstance(instruction, Br) and isinstance(instruction.target, int):
        if instruction.condition is ComparisonFlag.ALWAYS:
            targets = [index + instruction.target]
        elif instruction.condition is ComparisonFlag.NEVER:
            targets = [index + 1]
        else:
            targets = [index + 1, index + instruction.target]
        return [t for t in targets if 0 <= t < length]
    return [t for t in (index + 1,) if 0 <= t < length]


def _joined_fixpoint(instructions: list[Instruction]) -> dict[int, dict]:
    """Reachable-pc -> register state, joins over branch/loop edges."""
    states: dict[int, dict] = {}
    worklist: list[int] = []
    if instructions:
        states[0] = {}
        worklist.append(0)
    while worklist:
        index = worklist.pop()
        out = _transfer(states[index], instructions[index])
        for successor in _successors(index, instructions[index],
                                     len(instructions)):
            merged, changed = _join(states.get(successor), out)
            if changed:
                states[successor] = merged
                worklist.append(successor)
    return states


# ----------------------------------------------------------------------
# Classification (shared)
# ----------------------------------------------------------------------
def _classify(stores: dict[int, set], load_count: int,
              unkilled: dict[int, set]) -> tuple[int, int, list[str]]:
    """Turn per-pc address summaries into verdicts.

    ``stores`` maps pc -> set of observed store addresses (containing
    ``_UNKNOWN`` when any occurrence failed to fold); ``unkilled``
    maps load pc -> the addresses of its occurrences *not* killed by a
    dominating same-shot store — killed occurrences are dropped
    entirely (e.g. a loop whose first iteration reads outside the
    shot judges only that first address).  Returns
    ``(dead_store_count, killed_load_count, reasons)``.
    """
    killed_count = load_count - len(unkilled)
    if not stores or not unkilled:
        # No stores: loads only ever read host memory (constant within
        # a run).  No un-killed loads: nothing can observe a store
        # across shots.  Either way every store is dead.
        return len(stores), killed_count, []

    reasons: list[str] = []
    unknown_store_pcs = sorted(pc for pc, addresses in stores.items()
                               if _UNKNOWN in addresses)
    unknown_load_pcs = sorted(pc for pc, addresses in unkilled.items()
                              if _UNKNOWN in addresses)
    known_store_addresses: dict[object, list[int]] = {}
    for pc, addresses in stores.items():
        for address in addresses:
            if address is not _UNKNOWN:
                known_store_addresses.setdefault(address, []).append(pc)
    if unknown_store_pcs:
        pcs = ", ".join(str(pc) for pc in unknown_store_pcs)
        reasons.append(
            f"ST at pc {pcs} writes data memory at a statically unknown "
            f"address — an un-killed LD may observe it across shots")
    if unknown_load_pcs:
        pcs = ", ".join(str(pc) for pc in unknown_load_pcs)
        reasons.append(
            f"LD at pc {pcs} reads data memory at a statically unknown "
            f"address with no same-shot store killing it — it may "
            f"observe a ST from an earlier shot")
    aliased: list[tuple[int, int, tuple[int, ...]]] = []
    for pc, addresses in sorted(unkilled.items()):
        for address in sorted(a for a in addresses if a is not _UNKNOWN):
            store_pcs = known_store_addresses.get(address)
            if store_pcs:
                aliased.append((pc, address, tuple(sorted(store_pcs))))
    for pc, address, store_pcs in aliased:
        pcs = ", ".join(str(p) for p in store_pcs)
        reasons.append(
            f"LD at pc {pc} reads data memory address {address:#x} that "
            f"ST at pc {pcs} writes — the stored value is live across "
            f"shots (no same-shot store kills the load first)")

    # A store is dead unless an un-killed load can alias it.
    unkilled_known = {address for addresses in unkilled.values()
                      for address in addresses if address is not _UNKNOWN}
    dead = 0
    for pc, addresses in stores.items():
        if _UNKNOWN in addresses:
            continue  # an unknown store may alias any un-killed load
        if unknown_load_pcs:
            continue
        if addresses.isdisjoint(unkilled_known):
            dead += 1
    return dead, killed_count, reasons


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_data_memory(
        instructions: Iterable[Instruction],
        measurement_slots: Sequence[int] | None = None) -> DataMemoryReport:
    """Prove which loads/stores are replay-safe (see module docstring).

    ``measurement_slots`` optionally gives the number of measurement
    micro-operations each instruction triggers (the machine derives it
    from the microcode unit); when provided, the report's
    ``max_measurements_per_shot`` bounds one shot's measurement count —
    exact for loop-free and counted-loop binaries, None for unbounded
    loops — which the replay engine uses to clamp mock-cursor
    fingerprints.
    """
    instructions = list(instructions)
    store_total = sum(isinstance(i, St) for i in instructions)
    load_total = sum(isinstance(i, Ld) for i in instructions)
    if any(isinstance(i, Br) and isinstance(i.target, str)
           for i in instructions):
        # Unresolved labels never reach the machine (the assembler
        # resolves them); there is no CFG to analyse, so classify the
        # poisoning once: aliasing needs both a load and a store to be
        # unprovable, and the measurement bound is simply unknown.
        # Store-only (or load-only) binaries are still trivially safe.
        if store_total and load_total:
            reasons: tuple[str, ...] = (
                "program has unresolved branch labels — LD/ST aliasing "
                "cannot be analysed",)
            dead = 0
        else:
            reasons = ()
            dead = store_total
        return DataMemoryReport(
            store_count=store_total, load_count=load_total,
            dead_store_count=dead, killed_load_count=0,
            live_reasons=reasons, max_measurements_per_shot=None,
            analysis_mode="unresolved-labels")

    graph = _explore(instructions)
    if graph is not None:
        return _report_from_exploration(instructions, graph,
                                        measurement_slots)
    return _report_from_joined(instructions, measurement_slots)


def _report_from_exploration(
        instructions: list[Instruction], graph: _Exploded,
        measurement_slots: Sequence[int] | None) -> DataMemoryReport:
    num_nodes = len(graph.pcs)
    store_address = [None] * num_nodes
    stores: dict[int, set] = {}
    loads: dict[int, set] = {}
    load_nodes: dict[int, list[int]] = {}
    for node in range(num_nodes):
        pc = graph.pcs[node]
        instruction = instructions[pc]
        if isinstance(instruction, St):
            store_address[node] = graph.addresses[node]
            stores.setdefault(pc, set()).add(graph.addresses[node])
        elif isinstance(instruction, Ld):
            loads.setdefault(pc, set()).add(graph.addresses[node])
            load_nodes.setdefault(pc, []).append(node)

    relevant = frozenset(
        address for addresses in loads.values() for address in addresses
        if address is not _UNKNOWN)
    incoming = _must_written(num_nodes, graph.succs, store_address,
                             relevant)
    unkilled: dict[int, set] = {}
    for pc, nodes in load_nodes.items():
        surviving = {
            graph.addresses[node] for node in nodes
            if graph.addresses[node] is _UNKNOWN or
            graph.addresses[node] not in incoming[node]}
        if surviving:
            unkilled[pc] = surviving

    dead, killed_count, reasons = _classify(stores, len(loads), unkilled)

    if measurement_slots is None:
        bound = None
    else:
        node_slots = [measurement_slots[pc] for pc in graph.pcs]
        bound = _longest_slot_path(num_nodes, graph.succs, node_slots)

    # A backward branch is bounded only when every visit resolved its
    # condition *and* none of its exploded nodes lie on a cycle — a
    # "BR ALWAYS, loop" resolves every visit yet never exits, which
    # is as unbounded as a run-time trip count.  (A counted loop
    # merely *downstream* of someone else's cycle stays bounded.)
    on_cycle = {graph.pcs[node]
                for node in _cycle_nodes(num_nodes, graph.succs)
                if graph.pcs[node] in graph.bounded_loop_pcs}
    unbounded = graph.unbounded_loop_pcs | on_cycle
    bounded = graph.bounded_loop_pcs - unbounded
    return DataMemoryReport(
        store_count=len(stores), load_count=len(loads),
        dead_store_count=dead, killed_load_count=killed_count,
        live_reasons=tuple(reasons),
        bounded_loop_count=len(bounded),
        unbounded_loop_pcs=tuple(sorted(unbounded)),
        max_measurements_per_shot=bound,
        analysis_mode="exploration")


def _report_from_joined(
        instructions: list[Instruction],
        measurement_slots: Sequence[int] | None) -> DataMemoryReport:
    """Budget fallback: joins lose loop-carried constants, verdicts
    stay sound.  Kill-analysis still runs, at pc granularity."""
    states = _joined_fixpoint(instructions)
    reachable = sorted(states)
    index_of = {pc: i for i, pc in enumerate(reachable)}
    succs: list[list[int]] = [[] for _ in reachable]
    for i, pc in enumerate(reachable):
        succs[i] = [index_of[s] for s in
                    _successors(pc, instructions[pc], len(instructions))
                    if s in index_of]

    store_address: list[object] = [None] * len(reachable)
    stores: dict[int, set] = {}
    loads: dict[int, set] = {}
    for i, pc in enumerate(reachable):
        instruction = instructions[pc]
        if isinstance(instruction, St):
            address = _address_of(states[pc], instruction.rt,
                                  instruction.imm)
            store_address[i] = address
            stores.setdefault(pc, set()).add(address)
        elif isinstance(instruction, Ld):
            loads.setdefault(pc, set()).add(
                _address_of(states[pc], instruction.rt, instruction.imm))

    relevant = frozenset(
        address for addresses in loads.values() for address in addresses
        if address is not _UNKNOWN)
    incoming = _must_written(len(reachable), succs, store_address,
                             relevant)
    unkilled: dict[int, set] = {}
    for pc, addresses in loads.items():
        address = next(iter(addresses))
        if address is _UNKNOWN or address not in incoming[index_of[pc]]:
            unkilled[pc] = set(addresses)

    dead, killed_count, reasons = _classify(stores, len(loads), unkilled)
    backward = sorted(
        pc for pc in reachable
        if isinstance(instructions[pc], Br) and
        isinstance(instructions[pc].target, int) and
        instructions[pc].target <= 0)
    if reasons and backward:
        pcs = ", ".join(str(pc) for pc in backward)
        reasons.append(
            f"backward branch at pc {pcs} could not be unrolled within "
            f"the {EXPLORATION_STATE_BUDGET}-state budget (unbounded "
            f"loop or trip count too large) — loop-carried addresses "
            f"were analysed conservatively")
    if measurement_slots is None:
        bound = None
    else:
        node_slots = [measurement_slots[pc] for pc in reachable]
        bound = _longest_slot_path(len(reachable), succs, node_slots)
    return DataMemoryReport(
        store_count=len(stores), load_count=len(loads),
        dead_store_count=dead, killed_load_count=killed_count,
        live_reasons=tuple(reasons),
        bounded_loop_count=0,
        unbounded_loop_pcs=tuple(backward),
        max_measurements_per_shot=bound,
        analysis_mode="joined")
