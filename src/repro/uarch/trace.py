"""Execution trace records emitted by the microarchitecture.

The records are the observable behaviour the experiments and tests
consume: which operations actually reached the analog-digital interface
(and when), which were cancelled by fast conditional execution, what
every measurement reported, and how far the timing controller slipped
when the reserve phase fell behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import InvalidRequestError


@dataclass(frozen=True, slots=True)
class TriggerRecord:
    """One micro-operation reaching the fast-conditional-execution unit.

    ``executed`` is False when the selected execution flag read '0' and
    the operation was cancelled.  ``output_ns`` is when the digital
    output left the controller (used for latency measurements).
    """

    name: str
    qubits: tuple[int, ...]
    cycle: int
    trigger_ns: float
    output_ns: float
    executed: bool
    condition: str


@dataclass(frozen=True, slots=True)
class ResultRecord:
    """One measurement result returning to the Central Controller."""

    qubit: int
    raw_result: int        # what the plant projected
    reported_result: int   # after readout assignment error
    measure_start_ns: float
    arrival_ns: float      # when the result entered the controller


@dataclass(frozen=True, slots=True)
class SlipRecord:
    """The timing controller stalled waiting for a late reservation."""

    cycle: int
    due_ns: float
    actual_ns: float

    @property
    def slip_ns(self) -> float:
        """How late the trigger fired relative to the timeline."""
        return self.actual_ns - self.due_ns


@dataclass(slots=True)
class ShotTrace:
    """Everything observed during one shot."""

    triggers: list[TriggerRecord] = field(default_factory=list)
    results: list[ResultRecord] = field(default_factory=list)
    slips: list[SlipRecord] = field(default_factory=list)
    instructions_executed: int = 0
    classical_time_ns: float = 0.0
    stop_reached: bool = False

    def with_sampled_results(
            self, outcomes: list[tuple[int, int]]) -> "ShotTrace":
        """Splice freshly sampled outcomes into this frozen timeline.

        The replay engines build each replayed shot from a captured
        template: the timing-domain records (triggers, slips, classical
        time, instruction count) are *shared copy-on-write* — the
        returned trace references the template's own ``triggers`` and
        ``slips`` lists, because only the k-th result record differs
        (rebuilt around the k-th sampled ``(raw, reported)`` pair,
        keeping the template's timing metadata).  The sharing is what
        keeps wide-plant replay off the old splice-bound path: a
        seven-qubit surface-code shot carries hundreds of trigger
        records, and copying them per replayed shot dominated the
        run.  Templates are frozen once captured (the machine binds a
        fresh trace per interpreter shot), so the aliasing is safe;
        treat replayed traces as read-only — mutating their shared
        lists would corrupt every sibling shot of the same path.
        """
        results = [
            ResultRecord(qubit=record.qubit, raw_result=raw,
                         reported_result=reported,
                         measure_start_ns=record.measure_start_ns,
                         arrival_ns=record.arrival_ns)
            for record, (raw, reported)
            in zip(self.results, outcomes, strict=True)]
        return ShotTrace(
            triggers=self.triggers,
            results=results,
            slips=self.slips,
            instructions_executed=self.instructions_executed,
            classical_time_ns=self.classical_time_ns,
            stop_reached=self.stop_reached)

    def outcome_path(self) -> tuple[tuple[int, int], ...]:
        """The shot's (raw, reported) outcome pairs in result order —
        the key the branch-resolved replay tree resolves paths by."""
        return tuple((record.raw_result, record.reported_result)
                     for record in self.results)

    def executed_operations(self) -> list[TriggerRecord]:
        """Triggers that actually drove the ADI (not cancelled)."""
        return [record for record in self.triggers if record.executed]

    def cancelled_operations(self) -> list[TriggerRecord]:
        """Triggers cancelled by fast conditional execution."""
        return [record for record in self.triggers if not record.executed]

    def results_for(self, qubit: int) -> list[ResultRecord]:
        """Measurement results of one qubit, in time order."""
        return [record for record in self.results if record.qubit == qubit]

    def last_result(self, qubit: int) -> int | None:
        """The final reported result of a qubit, or None."""
        records = self.results_for(qubit)
        return records[-1].reported_result if records else None

    def max_slip_ns(self) -> float:
        """Worst timing slippage in the shot (0 when on time)."""
        return max((record.slip_ns for record in self.slips), default=0.0)


@dataclass(slots=True)
class ShotCounts:
    """Streaming aggregate over many shots — O(qubits) memory.

    High-shot callers (excited fractions, outcome histograms) do not
    need every :class:`ShotTrace`; feeding traces into a
    :class:`ShotCounts` as they are produced keeps memory flat no
    matter the shot count.  Only the *final* result of each qubit per
    shot is aggregated, matching :func:`repro.experiments.runner.excited_fraction`.
    """

    shots: int = 0
    ones: dict[int, int] = field(default_factory=dict)
    measured: dict[int, int] = field(default_factory=dict)
    #: Joint histogram: sorted ((qubit, bit), ...) of final results.
    joint: dict[tuple[tuple[int, int], ...], int] = field(
        default_factory=dict)
    total_slips: int = 0
    max_slip_ns: float = 0.0
    #: Reused per-shot scratch buffer (qubit -> last reported result),
    #: preallocated once so 10k+-shot runs do not churn a dict per shot.
    _last: dict = field(default_factory=dict, repr=False, compare=False)

    def add(self, trace: ShotTrace) -> None:
        """Fold one shot into the aggregate."""
        self.shots += 1
        last = self._last
        last.clear()
        for record in trace.results:
            last[record.qubit] = record.reported_result
        for qubit, bit in last.items():
            self.measured[qubit] = self.measured.get(qubit, 0) + 1
            if bit:
                self.ones[qubit] = self.ones.get(qubit, 0) + 1
        if last:
            key = tuple(sorted(last.items()))
            self.joint[key] = self.joint.get(key, 0) + 1
        self.total_slips += len(trace.slips)
        slip = trace.max_slip_ns()
        if slip > self.max_slip_ns:
            self.max_slip_ns = slip

    def excited_fraction(self, qubit: int) -> float:
        """Fraction of shots whose last result on ``qubit`` was 1."""
        measured = self.measured.get(qubit, 0)
        if not measured:
            raise InvalidRequestError(
                f"no measurement results for qubit {qubit}")
        return self.ones.get(qubit, 0) / measured

    def ground_fraction(self, qubit: int) -> float:
        """Fraction of shots whose last result on ``qubit`` was 0."""
        return 1.0 - self.excited_fraction(qubit)

    def outcome_counts(self, qubit_a: int, qubit_b: int) -> dict[int, int]:
        """Two-bit outcome histogram over shots (qubit_a = MSB)."""
        counts: dict[int, int] = {}
        for key, count in self.joint.items():
            bits = dict(key)
            if qubit_a not in bits or qubit_b not in bits:
                continue
            outcome = (bits[qubit_a] << 1) | bits[qubit_b]
            counts[outcome] = counts.get(outcome, 0) + count
        return counts

    # ------------------------------------------------------------------
    # Serialization (the serving layer's checkpoint journal)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-ready representation of the aggregate.

        The round trip through :meth:`from_dict` is exact — the
        serving layer's checkpoint journal relies on it to prove a
        resumed sweep bit-identical to an uninterrupted one.  Joint
        keys are emitted in sorted order so identical aggregates
        serialize to identical JSON (the journal's integrity digests
        compare byte-for-byte).
        """
        return {
            "shots": self.shots,
            "ones": {str(q): c for q, c in sorted(self.ones.items())},
            "measured": {str(q): c
                         for q, c in sorted(self.measured.items())},
            "joint": [
                [[[q, bit] for q, bit in key], count]
                for key, count in sorted(self.joint.items())
            ],
            "total_slips": self.total_slips,
            "max_slip_ns": self.max_slip_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShotCounts":
        """Rebuild an aggregate from :meth:`as_dict` output."""
        counts = cls(
            shots=int(payload["shots"]),
            ones={int(q): int(c)
                  for q, c in payload.get("ones", {}).items()},
            measured={int(q): int(c)
                      for q, c in payload.get("measured", {}).items()},
            total_slips=int(payload.get("total_slips", 0)),
            max_slip_ns=float(payload.get("max_slip_ns", 0.0)),
        )
        for key, count in payload.get("joint", []):
            counts.joint[tuple((int(q), int(bit))
                               for q, bit in key)] = int(count)
        return counts
