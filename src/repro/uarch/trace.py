"""Execution trace records emitted by the microarchitecture.

The records are the observable behaviour the experiments and tests
consume: which operations actually reached the analog-digital interface
(and when), which were cancelled by fast conditional execution, what
every measurement reported, and how far the timing controller slipped
when the reserve phase fell behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TriggerRecord:
    """One micro-operation reaching the fast-conditional-execution unit.

    ``executed`` is False when the selected execution flag read '0' and
    the operation was cancelled.  ``output_ns`` is when the digital
    output left the controller (used for latency measurements).
    """

    name: str
    qubits: tuple[int, ...]
    cycle: int
    trigger_ns: float
    output_ns: float
    executed: bool
    condition: str


@dataclass(frozen=True)
class ResultRecord:
    """One measurement result returning to the Central Controller."""

    qubit: int
    raw_result: int        # what the plant projected
    reported_result: int   # after readout assignment error
    measure_start_ns: float
    arrival_ns: float      # when the result entered the controller


@dataclass(frozen=True)
class SlipRecord:
    """The timing controller stalled waiting for a late reservation."""

    cycle: int
    due_ns: float
    actual_ns: float

    @property
    def slip_ns(self) -> float:
        """How late the trigger fired relative to the timeline."""
        return self.actual_ns - self.due_ns


@dataclass
class ShotTrace:
    """Everything observed during one shot."""

    triggers: list[TriggerRecord] = field(default_factory=list)
    results: list[ResultRecord] = field(default_factory=list)
    slips: list[SlipRecord] = field(default_factory=list)
    instructions_executed: int = 0
    classical_time_ns: float = 0.0
    stop_reached: bool = False

    def executed_operations(self) -> list[TriggerRecord]:
        """Triggers that actually drove the ADI (not cancelled)."""
        return [record for record in self.triggers if record.executed]

    def cancelled_operations(self) -> list[TriggerRecord]:
        """Triggers cancelled by fast conditional execution."""
        return [record for record in self.triggers if not record.executed]

    def results_for(self, qubit: int) -> list[ResultRecord]:
        """Measurement results of one qubit, in time order."""
        return [record for record in self.results if record.qubit == qubit]

    def last_result(self, qubit: int) -> int | None:
        """The final reported result of a qubit, or None."""
        records = self.results_for(qubit)
        return records[-1].reported_result if records else None

    def max_slip_ns(self) -> float:
        """Worst timing slippage in the shot (0 when on time)."""
        return max((record.slip_ns for record in self.slips), default=0.0)


@dataclass
class ShotCounts:
    """Streaming aggregate over many shots — O(qubits) memory.

    High-shot callers (excited fractions, outcome histograms) do not
    need every :class:`ShotTrace`; feeding traces into a
    :class:`ShotCounts` as they are produced keeps memory flat no
    matter the shot count.  Only the *final* result of each qubit per
    shot is aggregated, matching :func:`repro.experiments.runner.excited_fraction`.
    """

    shots: int = 0
    ones: dict[int, int] = field(default_factory=dict)
    measured: dict[int, int] = field(default_factory=dict)
    #: Joint histogram: sorted ((qubit, bit), ...) of final results.
    joint: dict[tuple[tuple[int, int], ...], int] = field(
        default_factory=dict)
    total_slips: int = 0
    max_slip_ns: float = 0.0

    def add(self, trace: ShotTrace) -> None:
        """Fold one shot into the aggregate."""
        self.shots += 1
        last: dict[int, int] = {}
        for record in trace.results:
            last[record.qubit] = record.reported_result
        for qubit, bit in last.items():
            self.measured[qubit] = self.measured.get(qubit, 0) + 1
            if bit:
                self.ones[qubit] = self.ones.get(qubit, 0) + 1
        if last:
            key = tuple(sorted(last.items()))
            self.joint[key] = self.joint.get(key, 0) + 1
        self.total_slips += len(trace.slips)
        slip = trace.max_slip_ns()
        if slip > self.max_slip_ns:
            self.max_slip_ns = slip

    def excited_fraction(self, qubit: int) -> float:
        """Fraction of shots whose last result on ``qubit`` was 1."""
        measured = self.measured.get(qubit, 0)
        if not measured:
            raise ValueError(f"no measurement results for qubit {qubit}")
        return self.ones.get(qubit, 0) / measured

    def ground_fraction(self, qubit: int) -> float:
        """Fraction of shots whose last result on ``qubit`` was 0."""
        return 1.0 - self.excited_fraction(qubit)

    def outcome_counts(self, qubit_a: int, qubit_b: int) -> dict[int, int]:
        """Two-bit outcome histogram over shots (qubit_a = MSB)."""
        counts: dict[int, int] = {}
        for key, count in self.joint.items():
            bits = dict(key)
            if qubit_a not in bits or qubit_b not in bits:
                continue
            outcome = (bits[qubit_a] << 1) | bits[qubit_b]
            counts[outcome] = counts.get(outcome, 0) + count
        return counts
