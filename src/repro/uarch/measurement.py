"""Measurement discrimination unit (Fig. 9, right).

Responsibilities:

* when a measurement device operation triggers, start the readout on
  the plant (projective collapse at measurement start, busy for the
  full integration window);
* apply the classical assignment error of the discrimination
  electronics to the reported bit;
* deliver the result back to the Central Controller after the
  integration window plus the digital-link transport latency —
  the machine then updates the Q register (CFC) and the execution
  flags (fast conditional execution);
* optionally *inject mock results* per qubit, reproducing the paper's
  CFC verification where "the UHFQC is programmed to generate
  alternative mock measurement results" without touching real qubits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.quantum.plant import QuantumPlant
from repro.uarch.config import UarchConfig


@dataclass(frozen=True)
class PendingResult:
    """A measurement in flight: the result and when it arrives."""

    qubit: int
    raw_result: int
    reported_result: int
    measure_start_ns: float
    arrival_ns: float


class MeasurementUnit:
    """Models the UHFQCs plus the result path into the controller."""

    def __init__(self, plant: QuantumPlant, config: UarchConfig,
                 measurement_duration_cycles: int = 15):
        self.plant = plant
        self.config = config
        self.measurement_duration_cycles = measurement_duration_cycles
        self._mock_results: dict[int, deque[int]] = {}
        self._forced_results: deque[tuple[int, int]] = deque()

    # ------------------------------------------------------------------
    # Mock-result injection (CFC verification, Section 5)
    # ------------------------------------------------------------------
    def inject_mock_results(self, qubit: int, results) -> None:
        """Queue mock results for a qubit; they are consumed in order.

        While mock results remain queued for a qubit, measuring it does
        not involve the plant at all (the UHFQC fabricates the bit).
        """
        queue = self._mock_results.setdefault(qubit, deque())
        for result in results:
            if result not in (0, 1):
                raise ConfigurationError(f"mock result {result} not a bit")
            queue.append(result)

    def has_mock_results(self, qubit: int) -> bool:
        """Whether fabricated results remain queued for a qubit."""
        return bool(self._mock_results.get(qubit))

    def clear_mock_results(self) -> None:
        """Drop all fabricated results (start of a fresh experiment)."""
        self._mock_results.clear()

    # ------------------------------------------------------------------
    # Forced outcomes (branch-resolved replay growth shots)
    # ------------------------------------------------------------------
    def force_results(self, outcomes) -> None:
        """Queue ``(raw, reported)`` pairs for the next measurements.

        Unlike mock results, forced results are *per shot* and keyed by
        measurement order, not qubit: the k-th measurement of the shot
        collapses the plant onto ``raw`` and reports ``reported``.  The
        replay engine uses this to drive an interpreter shot down an
        already-sampled outcome prefix; once the queue drains, sampling
        continues with fresh randomness.
        """
        for raw, reported in outcomes:
            if raw not in (0, 1) or reported not in (0, 1):
                raise ConfigurationError(
                    f"forced outcome ({raw}, {reported}) is not a bit "
                    f"pair")
            self._forced_results.append((raw, reported))

    def clear_forced_results(self) -> None:
        """Drop any unconsumed forced outcomes (end of a growth shot)."""
        self._forced_results.clear()

    # ------------------------------------------------------------------
    # Measurement execution
    # ------------------------------------------------------------------
    def measurement_duration_ns(self) -> float:
        """Integration window length in nanoseconds."""
        return self.measurement_duration_cycles * self.config.quantum_cycle_ns

    def start_measurement(self, qubit: int,
                          start_ns: float) -> PendingResult:
        """Begin a readout at ``start_ns``; returns the in-flight result.

        The arrival time is ``start + integration + transport``; the
        caller schedules the Q-register/flag updates at that time.
        """
        duration = self.measurement_duration_ns()
        if self._forced_results:
            raw, reported = self._forced_results.popleft()
            self.plant.measure(qubit, start_ns, duration, forced=raw)
        elif self.has_mock_results(qubit):
            raw = self._mock_results[qubit].popleft()
            reported = raw  # mock results bypass the analog chain
        else:
            raw = self.plant.measure(qubit, start_ns, duration)
            reported = self.plant.noise.readout.apply(raw, self.plant.rng)
        arrival = start_ns + duration + self.config.result_transport_ns
        return PendingResult(qubit=qubit, raw_result=raw,
                             reported_result=reported,
                             measure_start_ns=start_ns, arrival_ns=arrival)
