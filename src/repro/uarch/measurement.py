"""Measurement discrimination unit (Fig. 9, right).

Responsibilities:

* when a measurement device operation triggers, start the readout on
  the plant (projective collapse at measurement start, busy for the
  full integration window);
* apply the classical assignment error of the discrimination
  electronics to the reported bit;
* deliver the result back to the Central Controller after the
  integration window plus the digital-link transport latency —
  the machine then updates the Q register (CFC) and the execution
  flags (fast conditional execution);
* optionally *inject mock results* per qubit, reproducing the paper's
  CFC verification where "the UHFQC is programmed to generate
  alternative mock measurement results" without touching real qubits.

Mock queues are held as lists with a **cursor** per qubit rather than
destructively popped deques: consuming a mock just advances the cursor
(injection compacts the consumed prefix).  That makes the queues
*replayable* — the branch-resolved engine fingerprints the upcoming
value window at the start of a shot (:meth:`MeasurementUnit.mock_view`),
peeks the values a cached tree walk would consume without touching the
real cursors, and commits the consumption only when the walk completes.
A growth (interpreter) shot consumes the cursors naturally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.quantum.plant import QuantumPlant
from repro.uarch.config import UarchConfig


@dataclass(frozen=True)
class PendingResult:
    """A measurement in flight: the result and when it arrives."""

    qubit: int
    raw_result: int
    reported_result: int
    measure_start_ns: float
    arrival_ns: float


class MockCursorView:
    """A walk-local, uncommitted view of the mock queues.

    The branch-resolved replay engine creates one per shot *before*
    walking the timeline tree.  ``fingerprint`` keys the tree root:
    two shots with the same fingerprint see identical mocked/unmocked
    behaviour along every cached path (see
    :meth:`MeasurementUnit.mock_fingerprint`).  ``peek`` yields the
    values the walk's mocked measurements would consume, tracking a
    local offset per qubit so repeated measurements of one qubit read
    successive queue entries; nothing is consumed until ``commit`` —
    which the engine calls only when the walk served a complete cached
    shot (a miss falls back to an interpreter shot that consumes the
    real cursors itself).
    """

    __slots__ = ("_unit", "_offsets", "fingerprint")

    def __init__(self, unit: "MeasurementUnit", clamp: int,
                 fingerprint: tuple | None = None):
        self._unit = unit
        self._offsets: dict[int, int] = {}
        # The replay engine passes the epoch-cached fingerprint when
        # the queues have not changed since the last shot, skipping
        # the per-shot dict walk and window slicing.
        self.fingerprint = fingerprint if fingerprint is not None \
            else unit.mock_fingerprint(clamp)

    def peek(self, qubit: int) -> int | None:
        """Next unconsumed-by-this-walk mock value, or None."""
        offset = self._offsets.get(qubit, 0)
        value = self._unit.peek_mock(qubit, offset)
        if value is not None:
            self._offsets[qubit] = offset + 1
        return value

    @property
    def consumed(self) -> int:
        """Mock values this walk has peeked so far."""
        return sum(self._offsets.values())

    def commit(self) -> None:
        """Advance the real cursors by everything the walk consumed."""
        for qubit, count in self._offsets.items():
            self._unit.advance_mock_cursor(qubit, count)


class _EmptyMockView:
    """Shared no-mock view — keeps the hot replay path allocation-free."""

    fingerprint: tuple = ()
    consumed: int = 0

    def peek(self, qubit: int) -> None:
        return None

    def commit(self) -> None:
        return None


_EMPTY_MOCK_VIEW = _EmptyMockView()


class MeasurementUnit:
    """Models the UHFQCs plus the result path into the controller."""

    def __init__(self, plant: QuantumPlant, config: UarchConfig,
                 measurement_duration_cycles: int = 15):
        self.plant = plant
        self.config = config
        self.measurement_duration_cycles = measurement_duration_cycles
        self._mock_results: dict[int, list[int]] = {}
        self._mock_cursor: dict[int, int] = {}
        #: Bumped on every mock-queue mutation (injection, clearing,
        #: cursor movement).  :meth:`mock_view` keys its fingerprint
        #: cache on it, so the per-shot replay loop only rebuilds the
        #: fingerprint when the queues actually changed — and pays a
        #: single integer comparison when no mocks are active at all.
        self._mock_epoch = 0
        self._view_cache: tuple[int, int, tuple | None] | None = None
        self._forced_results: deque[tuple[int, int]] = deque()
        #: Optional hook called as ``observer(qubit, start_ns, value)``
        #: whenever a mock result is consumed — the replay engine's
        #: growth shots record mocked segment boundaries through this
        #: (the plant's ``measure_observer`` cannot see them: mocked
        #: measurements never touch the plant).
        self.mock_observer = None
        #: Armed :class:`~repro.uarch.faults.FaultPlan` (None in
        #: production) — set by :meth:`QuMAv2.arm_faults`.
        self.fault_plan = None

    # ------------------------------------------------------------------
    # Mock-result injection (CFC verification, Section 5)
    # ------------------------------------------------------------------
    def inject_mock_results(self, qubit: int, results) -> None:
        """Queue mock results for a qubit; they are consumed in order.

        While mock results remain queued for a qubit, measuring it does
        not involve the plant at all (the UHFQC fabricates the bit).
        """
        results = list(results)
        for result in results:
            if result not in (0, 1):
                raise ConfigurationError(f"mock result {result} not a bit")
        queue = self._mock_results.setdefault(qubit, [])
        # Drop the consumed prefix so long-lived machines re-injecting
        # per run() do not grow the list without bound.
        cursor = self._mock_cursor.get(qubit, 0)
        if cursor:
            del queue[:cursor]
        self._mock_cursor[qubit] = 0
        queue.extend(results)
        self._mock_epoch += 1

    def has_mock_results(self, qubit: int) -> bool:
        """Whether fabricated results remain queued for a qubit."""
        return self.remaining_mock_results(qubit) > 0

    def remaining_mock_results(self, qubit: int) -> int:
        """How many fabricated results are still queued for a qubit."""
        queue = self._mock_results.get(qubit)
        if not queue:
            return 0
        return len(queue) - self._mock_cursor.get(qubit, 0)

    def has_any_mock_results(self) -> bool:
        """Whether fabricated results remain queued for *any* qubit
        (the Pauli-frame engine's eligibility pass: draining queues
        make consecutive shots observe different values)."""
        return any(self.remaining_mock_results(qubit) > 0
                   for qubit in self._mock_results)

    def clear_mock_results(self) -> None:
        """Drop all fabricated results (start of a fresh experiment)."""
        self._mock_results.clear()
        self._mock_cursor.clear()
        self._mock_epoch += 1

    # ------------------------------------------------------------------
    # Mock cursors (branch-resolved replay of mocked programs)
    # ------------------------------------------------------------------
    def peek_mock(self, qubit: int, offset: int = 0) -> int | None:
        """The mock value ``offset`` entries past the cursor, or None."""
        queue = self._mock_results.get(qubit)
        if not queue:
            return None
        index = self._mock_cursor.get(qubit, 0) + offset
        return queue[index] if index < len(queue) else None

    def advance_mock_cursor(self, qubit: int, count: int) -> None:
        """Consume ``count`` mock values without producing them.

        Called by the replay engine after a cached tree walk: the walk
        already spliced the peeked values into the replayed trace, so
        the queue must drain exactly as if the interpreter had run.
        """
        remaining = self.remaining_mock_results(qubit)
        if count > remaining:
            raise ConfigurationError(
                f"cannot advance mock cursor of qubit {qubit} by {count}: "
                f"only {remaining} results remain")
        if count:
            self._mock_cursor[qubit] = \
                self._mock_cursor.get(qubit, 0) + count
            self._mock_epoch += 1

    def mock_fingerprint(self, clamp: int) -> tuple:
        """Key of the replay-tree root the current cursor state selects.

        Two shots may share cached timeline segments only if every
        measurement along a path is mocked/unmocked identically *and*
        fabricates the same bits.  One shot consumes at most ``clamp``
        mock results per qubit (the caller bounds it by the tree depth
        cap or a static per-shot measurement count), so the next
        ``min(remaining, clamp)`` queued *values* per qubit pin the
        shot's entire mocked behaviour: a window shorter than ``clamp``
        additionally encodes where the queue runs dry.  Keying by the
        value window (not cursor position) lets a long draining queue
        (e.g. 2000 alternating CFC results) map thousands of cursor
        states onto a couple of shared roots — and a later re-injection
        of the same pattern lands back on the same roots, so cross-run
        cached trees keep paying off.  With no active mocks the
        fingerprint is ``()``: such shots are indistinguishable from
        unmocked ones and share the plain root.
        """
        active = []
        for qubit in sorted(self._mock_results):
            queue = self._mock_results[qubit]
            cursor = self._mock_cursor.get(qubit, 0)
            if cursor >= len(queue):
                continue
            active.append(
                (qubit, tuple(queue[cursor:cursor + clamp])))
        return tuple(active)

    def mock_view(self, clamp: int) -> MockCursorView | _EmptyMockView:
        """Per-shot cursor view for a replay walk (see
        :class:`MockCursorView`); a shared empty view when no mock
        results are active.

        The fingerprint (and the are-any-mocks-active walk) is cached
        against the mock-queue *epoch*: the replay shot loop calls this
        once per shot, but the queues only change when a cached walk
        commits consumption or the caller injects/clears — every other
        shot reuses the cached fingerprint, and mock-free runs reduce
        to one integer comparison per shot.
        """
        cache = self._view_cache
        if cache is not None and cache[0] == self._mock_epoch and \
                cache[1] == clamp:
            fingerprint = cache[2]
            if fingerprint is None:
                return _EMPTY_MOCK_VIEW
            return MockCursorView(self, clamp, fingerprint=fingerprint)
        if not any(self.remaining_mock_results(qubit)
                   for qubit in self._mock_results):
            self._view_cache = (self._mock_epoch, clamp, None)
            return _EMPTY_MOCK_VIEW
        view = MockCursorView(self, clamp)
        self._view_cache = (self._mock_epoch, clamp, view.fingerprint)
        return view

    # ------------------------------------------------------------------
    # Forced outcomes (branch-resolved replay growth shots)
    # ------------------------------------------------------------------
    def force_results(self, outcomes) -> None:
        """Queue ``(raw, reported)`` pairs for the next measurements.

        Unlike mock results, forced results are *per shot* and keyed by
        measurement order, not qubit: the k-th measurement of the shot
        collapses the plant onto ``raw`` and reports ``reported``.  The
        replay engine uses this to drive an interpreter shot down an
        already-sampled outcome prefix; once the queue drains, sampling
        continues with fresh randomness.  On a measurement served by a
        mock queue the mock wins (it models the UHFQC's programming and
        must drain): the forced pair for that measurement is consumed
        to keep the order-based alignment, but the mock value is what
        is reported — the replay engine only ever forces the value it
        peeked from the same queue, so the two always agree.
        """
        for raw, reported in outcomes:
            if raw not in (0, 1) or reported not in (0, 1):
                raise ConfigurationError(
                    f"forced outcome ({raw}, {reported}) is not a bit "
                    f"pair")
            self._forced_results.append((raw, reported))

    def clear_forced_results(self) -> None:
        """Drop any unconsumed forced outcomes (end of a growth shot)."""
        self._forced_results.clear()

    # ------------------------------------------------------------------
    # Measurement execution
    # ------------------------------------------------------------------
    def measurement_duration_ns(self) -> float:
        """Integration window length in nanoseconds."""
        return self.measurement_duration_cycles * self.config.quantum_cycle_ns

    def start_measurement(self, qubit: int,
                          start_ns: float) -> PendingResult:
        """Begin a readout at ``start_ns``; returns the in-flight result.

        The arrival time is ``start + integration + transport``; the
        caller schedules the Q-register/flag updates at that time.
        """
        duration = self.measurement_duration_ns()
        plan = self.fault_plan
        if (plan is not None and self._mock_results and
                plan.fire("mock_exhaust", qubit=qubit)):
            # The UHFQC's fabricated-result program dies: every queued
            # mock vanishes and this (and all later) measurements fall
            # through to the real plant.  The epoch bump makes replay
            # fingerprints rebuild, so cached mocked roots simply stop
            # matching — no structural damage.
            self.clear_mock_results()
        if self.has_mock_results(qubit):
            cursor = self._mock_cursor.get(qubit, 0)
            raw = self._mock_results[qubit][cursor]
            self._mock_cursor[qubit] = cursor + 1
            self._mock_epoch += 1
            reported = raw  # mock results bypass the analog chain
            if self._forced_results:
                # Keep the order-based forced queue aligned; the mock
                # value wins (see force_results).
                self._forced_results.popleft()
            if self.mock_observer is not None:
                self.mock_observer(qubit, start_ns, raw)
        elif self._forced_results:
            raw, reported = self._forced_results.popleft()
            self.plant.measure(qubit, start_ns, duration, forced=raw)
        else:
            raw = self.plant.measure(qubit, start_ns, duration)
            reported = self.plant.noise.readout.apply(raw, self.plant.rng)
        arrival = start_ns + duration + self.config.result_transport_ns
        return PendingResult(qubit=qubit, raw_result=raw,
                             reported_result=reported,
                             measure_start_ns=start_ns, arrival_ns=arrival)
