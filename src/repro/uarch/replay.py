"""Branch-resolved shot replay: an outcome-keyed timeline-segment tree.

The Section 5 experiments execute the *same* assembled binary for
thousands of shots.  PR 1 exploited the feedback-free case: with no
``FMR``, no conditional micro-operations and no persistent stores, the
classical/timing domain is a single deterministic timeline that can be
captured once and replayed.  But eQASM's headline features — fast
conditional execution (active reset, Fig. 4), CFC via ``FMR`` (Fig. 5)
and the surface-code cycle — are all *measurement-conditioned*, and a
single frozen timeline cannot represent them.

The generalisation implemented here rests on one observation: the
classical/timing domain is still completely deterministic *given the
measurement outcomes consumed so far*.  Every shot of a feedback
program walks some path through a finite outcome tree; two shots that
draw the same outcomes are bit-identical in every timing-domain record.
So the engine memoises **timeline segments** in a tree keyed by the
outcome history:

* each **internal node** stands for "the shot so far consumed this
  sequence of (raw, reported) measurement outcomes and is about to
  measure qubit q"; it stores the pre-collapse ``P(1)`` of that
  measurement — the one number distilled from the plant snapshot at
  the segment boundary — plus up to four children keyed by the
  ``(raw, reported)`` pair the measurement can produce;
* each **terminal node** stores the frozen :class:`ShotTrace` captured
  when the interpreter first completed a shot along that path — the
  stitched timeline of all segments on the path.

Replaying a shot is a pure tree walk: sample each measurement from the
stored ``P(1)`` (and the readout-error model), follow the matching
edge, and splice the sampled outcomes into the terminal template
(:meth:`ShotTrace.with_sampled_results`).  No plant state is touched at
all — the chain rule over per-node conditional probabilities reproduces
the interpreter's joint outcome distribution exactly.

When the walk reaches a not-yet-seen outcome edge, the engine *grows*
the tree: it re-runs the full interpreter with the already-sampled
outcome prefix **forced** (the measurement unit replays the sampled
``(raw, reported)`` pairs, collapsing the plant accordingly), so the
interpreter shot both is a statistically exact sample *and* explores
exactly the missing branch.  For a two-measurement active-reset program
the tree saturates after a handful of probe shots; afterwards every
shot is pure replay.  Programs whose outcome space never saturates
degrade transparently to interpreter throughput — every shot is then a
(cheap) failed walk plus one genuine interpreter shot.

**Mocked measurements** (the paper's CFC verification programs the
UHFQC to fabricate results) replay too.  A mocked measurement is
deterministic given the per-qubit mock *cursor* at the start of the
shot, so the tree keeps one root per cursor fingerprint
(:meth:`repro.uarch.measurement.MeasurementUnit.mock_fingerprint`):
within a root, every node knows whether its measurement is mocked, a
walk reads the value the cursor would deliver
(:class:`~repro.uarch.measurement.MockCursorView`, committed only on a
complete cached walk so the queues drain exactly as the interpreter
would drain them), and the readout-error model is bypassed just as the
real mock path bypasses the analog chain.

**Data-memory traffic** rarely blocks replay any more: the static pass
in :mod:`repro.uarch.dataflow` proves when every ``LD`` either aliases
no ``ST`` at all or is *killed* by a dominating same-shot store (the
spill/reload pattern — the load can only observe data this shot wrote,
which is a deterministic function of the outcome history the tree keys
on).  Counted loops are unrolled by the same pass, so loop-carried
addresses stay static and looping binaries replay too.  Such programs
replay with the documented relaxation that after a replay run the data
memory holds the last *growth* shot's stores.

The remaining hard blockers — a load that can genuinely observe
another shot's (or the host's) store, and operations the analysis
cannot model — force the interpreter for the entire run; see
:func:`replay_unsupported_reasons`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Iterable

from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.microcode import MicrocodeUnit
from repro.quantum.plant import QuantumPlant
from repro.uarch.dataflow import analyze_data_memory
from repro.uarch.measurement import MeasurementUnit
from repro.uarch.trace import ShotTrace

#: Name under which the plant logs projective measurements.
MEASUREMENT_LOG_NAME = "MEASZ"

#: Probabilities closer than this to 0/1 are treated as deterministic
#: when sampling a node, so a forced interpreter continuation can never
#: be asked to collapse the plant onto a (numerically) impossible
#: outcome.
_DETERMINISTIC_EPS = 1e-12

#: Instructions the branch-resolved engine can replay.  ``FMR`` and
#: conditional micro-operations are *replayable* now — their behaviour
#: is deterministic given the outcome history, which is exactly what
#: the tree keys on.  ``St`` is handled separately: the dataflow pass
#: whitelists provably dead stores.
_REPLAYABLE_CLASSICAL = (Nop, Stop, Cmp, Br, Fbr, Fmr, Ldi, Ldui, Ld,
                         LogicalOp, Not, ArithOp, QWait, QWaitR,
                         SMIS, SMIT, St)


class ReplayError(Exception):
    """Internal signal: this program cannot be replayed — fall back."""


@dataclass(frozen=True, slots=True)
class ReplayAudit:
    """One self-verifying replay audit that found a divergence.

    Recorded on :attr:`EngineStats.last_audit` when a shadow
    interpreter run disagreed with a cached tree walk: the cached tree
    was evicted (in-run and from the cross-run LRU) and the run
    degraded to the interpreter.
    """

    shot_index: int
    #: Trace fields that differed ("triggers", "results", ...), or
    #: ("shadow-exception",) when the shadow run itself faulted.
    mismatched_fields: tuple[str, ...]
    tree_evicted: bool = True
    detail: str = ""


@dataclass(slots=True)
class EngineStats:
    """Per-run execution-engine statistics.

    Populated by :meth:`repro.uarch.machine.QuMAv2.run_iter` (and hence
    :meth:`run` / :meth:`run_counts`); exposed to experiments through
    :attr:`repro.uarch.machine.QuMAv2.engine_stats` and
    :attr:`repro.experiments.runner.ExperimentSetup.last_engine_stats`.
    The object updates *live* while ``run_iter`` streams — long sweeps
    can report the engine mix mid-flight via :meth:`snapshot`.
    """

    #: "replay" when the branch-resolved engine drove the run, "frame"
    #: when the Pauli-frame batched engine did (one tableau reference
    #: shot plus vectorised multi-shot frame propagation — see
    #: :mod:`repro.quantum.pauli_frame`), "interpreter" when a hard
    #: blocker forced the cycle-accurate interpreter for every shot,
    #: None before any shot ran.
    engine: str | None = None
    #: All hard-blocker reasons ("; "-joined) when ``engine`` is
    #: "interpreter"; None on the replay path.
    fallback_reason: str | None = None
    #: Which plant backend held the quantum state for this run:
    #: "stabilizer" (Gottesman–Knill tableau — Clifford binary plus
    #: Pauli/readout-only noise) or "dense" (exact density matrix, the
    #: fallback for everything else).  Selection is reported just like
    #: engine selection; see
    #: :meth:`repro.uarch.machine.QuMAv2.plant_backend_reasons`.
    plant_backend: str | None = None
    #: All reasons the stabilizer backend was not selected ("; "-joined)
    #: when ``plant_backend`` is "dense"; None on the tableau path.
    plant_backend_reason: str | None = None
    shots_total: int = 0
    #: Shots that ran through the full interpreter (probe/growth shots
    #: on the replay path count here too).
    interpreter_shots: int = 0
    #: Shots served purely from the timeline-segment tree.
    replay_shots: int = 0
    #: Shots served by the Pauli-frame batched engine (vectorised frame
    #: rows spliced into the reference shot's frozen timeline).  The
    #: delivered-shot invariant is ``shots_total == interpreter_shots +
    #: replay_shots + frame_batched``.
    frame_batched: int = 0
    #: Reference shots the frame engine ran on the tableau interpreter
    #: to record the Clifford/measurement structure.  These are engine
    #: overhead, not delivered shots — they count in neither
    #: ``shots_total`` nor ``interpreter_shots``.
    frame_reference_shots: int = 0
    #: Tree walks that found a complete cached path.
    segment_cache_hits: int = 0
    #: Tree walks that hit an unexplored outcome edge (each miss costs
    #: one interpreter shot which grows the tree).
    segment_cache_misses: int = 0
    tree_nodes: int = 0
    #: Fully captured outcome paths (terminal templates).
    tree_paths: int = 0
    #: Distinct mock-cursor roots of the tree (1 without mocks).
    tree_roots: int = 0
    #: True when this run reused a timeline tree saturated by an
    #: earlier ``run()`` over the same binary/noise/config.
    tree_reused: bool = False
    #: Mock results served from the cursor view on cached walks (the
    #: queues drain identically to the interpreter's consumption).
    mock_results_replayed: int = 0
    #: ST instructions the dataflow pass proved dead across shots.
    dead_stores: int = 0
    #: LD instructions proven killed by a dominating same-shot store
    #: (they can never observe another shot's or the host's memory).
    killed_loads: int = 0
    #: Backward branches the dataflow pass resolved as counted loops
    #: (trip count statically unrolled).
    bounded_loops: int = 0
    #: Set when the tree refused to grow further (depth/node caps, or a
    #: determinism violation) — remaining unseen paths keep running on
    #: the interpreter.
    growth_stopped_reason: str | None = None
    #: Cached tree walks shadow-run on the interpreter and compared
    #: bit-for-bit (the ``audit_fraction`` policy).
    replay_audits: int = 0
    #: Audits that found a divergence (each evicts the tree and
    #: degrades the run to the interpreter).
    audit_divergences: int = 0
    #: The most recent divergence, with the mismatched trace fields.
    last_audit: ReplayAudit | None = None
    #: Degradation-ladder steps taken during (or around) this run, in
    #: order — e.g. "replay→interpreter (audit divergence)" from the
    #: machine, or rung changes recorded by
    #: :meth:`repro.experiments.runner.ExperimentSetup.run_resilient`.
    degradations: list[str] = field(default_factory=list)
    #: Human-readable descriptions of every injected fault that fired
    #: during this run (empty when no :class:`FaultPlan` is armed).
    faults_injected: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready summary (used by the benchmarks)."""
        return asdict(self)

    def snapshot(self) -> "EngineStats":
        """An independent copy of the running statistics.

        ``run_iter`` mutates one :class:`EngineStats` in place as shots
        stream; a mid-flight consumer that wants a stable point-in-time
        view (e.g. progress reporting every N shots of a long sweep)
        takes a snapshot instead of aliasing the live object.
        """
        copy = replace(self)
        copy.degradations = list(self.degradations)
        copy.faults_injected = list(self.faults_injected)
        return copy

    #: How the counters publish into a metrics registry: dataclass
    #: field -> hierarchical metric name (the ``engine.*`` namespace of
    #: :mod:`repro.obs`).  Only numeric counters appear here; labels
    #: (engine, backend, reasons) publish as selection counters and
    #: degradations/faults as list-length counters.
    _METRIC_NAMES = {
        "shots_total": "engine.shots_total",
        "interpreter_shots": "engine.interpreter.shots",
        "replay_shots": "engine.replay.cached_shots",
        "frame_batched": "engine.frame.batched_shots",
        "frame_reference_shots": "engine.frame.reference_shots",
        "segment_cache_hits": "engine.replay.segment_cache.hits",
        "segment_cache_misses": "engine.replay.segment_cache.misses",
        "mock_results_replayed": "engine.replay.mock_results_replayed",
        "dead_stores": "engine.dataflow.dead_stores",
        "killed_loads": "engine.dataflow.killed_loads",
        "bounded_loops": "engine.dataflow.bounded_loops",
        "replay_audits": "engine.replay.audits",
        "audit_divergences": "engine.replay.audit_divergences",
    }

    #: Tree shape publishes as gauges (point-in-time sizes, not
    #: monotonic counts).
    _GAUGE_NAMES = {
        "tree_nodes": "engine.replay.tree.nodes",
        "tree_paths": "engine.replay.tree.paths",
        "tree_roots": "engine.replay.tree.roots",
    }

    def publish_metrics(self, registry) -> None:
        """Fold this run's counters into a
        :class:`repro.obs.MetricsRegistry` — the registry-backed view
        of the same numbers (the dataclass fields stay the primary,
        allocation-free record)."""
        for field_name, metric_name in self._METRIC_NAMES.items():
            value = getattr(self, field_name)
            if value:
                registry.inc(metric_name, value)
        for field_name, metric_name in self._GAUGE_NAMES.items():
            registry.set_gauge(metric_name, getattr(self, field_name))
        if self.engine is not None:
            registry.inc(f"engine.selected.{self.engine}")
        if self.plant_backend is not None:
            registry.inc(f"engine.plant_backend.{self.plant_backend}")
        if self.tree_reused:
            registry.inc("engine.replay.tree.reused_runs")
        if self.degradations:
            registry.inc("engine.degradations", len(self.degradations))
        if self.faults_injected:
            registry.inc("engine.faults_injected",
                         len(self.faults_injected))


@dataclass(frozen=True, slots=True)
class MeasurementSample:
    """One measurement observed during an interpreter (growth) shot.

    Recorded in chronological plant order: the measured qubit, the
    trigger-time start of the integration window, and the pre-collapse
    ``P(1)`` — the distilled segment-boundary snapshot the tree samples
    from.  Plant measurements are recorded by the plant's measure
    observer *before* the collapse; mocked measurements (which never
    touch the plant) by the measurement unit's mock observer, with
    ``mocked=True`` and the fabricated bit standing in for ``p_one``.
    """

    qubit: int
    start_ns: float
    p_one: float
    mocked: bool = False


def replay_unsupported_reasons(
        instructions: Iterable[Instruction],
        microcode: MicrocodeUnit,
        measurement_unit: MeasurementUnit,
        qubit_addresses: Iterable[int],
        data_memory_report=None) -> list[str]:
    """Every reason a loaded binary cannot take the replay fast path.

    Returns an empty list when the program is replayable.  Unlike the
    per-shot outcome tree (which handles feedback dynamically), these
    are *hard* blockers — anything that lets one shot observe another
    shot's state the tree cannot key on: data-memory loads the
    dataflow pass cannot prove shot-local
    (:mod:`repro.uarch.dataflow` — un-killed loads aliasing a store,
    unknown addresses, loops it cannot unroll), and
    operations the analysis cannot model.  Injected mock results are
    *not* blockers any more — their queues are replayed through
    cursor-keyed tree roots; the ``measurement_unit`` parameter is kept
    for signature stability.  All blockers present in the program are
    reported, not just the first one found.  ``data_memory_report``
    lets a caller that already ran the dataflow pass (the machine
    memoises it per binary) avoid recomputing it.
    """
    del measurement_unit, qubit_addresses  # no longer blockers
    instructions = list(instructions)
    if not instructions:
        return ["no program loaded"]
    if data_memory_report is None:
        data_memory_report = analyze_data_memory(instructions)
    reasons: list[str] = list(data_memory_report.live_reasons)
    untranslatable: list[str] = []
    unsupported: list[str] = []
    for instruction in instructions:
        if isinstance(instruction, Bundle):
            for slot in instruction.operations:
                try:
                    microcode.translate_name(slot.name)
                except Exception:
                    if slot.name not in untranslatable:
                        untranslatable.append(slot.name)
        elif not isinstance(instruction, _REPLAYABLE_CLASSICAL):
            name = type(instruction).__name__
            if name not in unsupported:
                unsupported.append(name)
    for name in untranslatable:
        reasons.append(f"operation {name!r} is not translatable")
    for name in unsupported:
        reasons.append(f"unsupported instruction {name}")
    return reasons


def replay_unsupported_reason(
        instructions: Iterable[Instruction],
        microcode: MicrocodeUnit,
        measurement_unit: MeasurementUnit,
        qubit_addresses: Iterable[int]) -> str | None:
    """All blocking reasons joined with "; ", or None when replayable."""
    reasons = replay_unsupported_reasons(instructions, microcode,
                                         measurement_unit,
                                         qubit_addresses)
    return "; ".join(reasons) if reasons else None


class _TreeNode:
    """One outcome-history position in the timeline tree.

    Internal nodes carry the next measurement (``qubit``/``start_ns``
    from the timeline; pre-collapse ``p_one`` for plant measurements,
    ``mocked`` for fabricated ones) and the outcome-keyed children;
    terminal nodes carry the frozen trace ``template`` of the completed
    path.  A node inserted by :meth:`TimelineTree.grow` is always fully
    characterised as one or the other.
    """

    __slots__ = ("qubit", "start_ns", "p_one", "mocked", "children",
                 "template")

    def __init__(self):
        self.qubit = -1                  # -1 until characterised
        self.start_ns = 0.0
        self.p_one = 0.0
        self.mocked = False
        self.children: dict[tuple[int, int], "_TreeNode"] = {}
        self.template: ShotTrace | None = None


class TimelineTree:
    """The branch-resolved timeline-segment cache for one binary.

    Built lazily by the machine during :meth:`QuMAv2.run_iter` calls
    (and reused across calls through the machine's keyed replay cache):
    interpreter shots insert their observed outcome path and trace;
    cached shots are sampled by :meth:`sample_shot` without any plant
    work.  Programs with injected mock results hold one *root* per
    mock-cursor fingerprint — within a root the mocked/unmocked pattern
    along every path is invariant, so mocked nodes read their outcome
    from the per-shot cursor view instead of sampling.  Growth stops
    (but sampling keeps degrading gracefully to interpreter shots) when
    the caps are hit or when two shots with the same outcome history
    disagree — a determinism violation such as timing driven by a value
    the outcome history does not determine.
    """

    def __init__(self, plant: QuantumPlant, max_depth: int = 64,
                 max_nodes: int = 8192):
        self._plant = plant
        self._readout = plant.noise.readout
        self._roots: dict[tuple, _TreeNode] = {}
        self._max_depth = max_depth
        self._max_nodes = max_nodes
        self.node_count = 0
        self.path_count = 0
        #: Why the tree stopped growing (None while growth is allowed).
        self.growth_stopped_reason: str | None = None

    @property
    def max_depth(self) -> int:
        """Longest cacheable outcome path — also the clamp for mock
        fingerprints (a path can consume at most this many mocks)."""
        return self._max_depth

    @property
    def root_count(self) -> int:
        """Distinct mock-cursor roots grown so far."""
        return len(self._roots)

    def _root(self, key: tuple) -> _TreeNode:
        root = self._roots.get(key)
        if root is None:
            root = _TreeNode()
            self._roots[key] = root
            self.node_count += 1
        return root

    # ------------------------------------------------------------------
    # Replay (pure tree walk)
    # ------------------------------------------------------------------
    def sample_shot(self, mock_view=None) -> tuple[ShotTrace | None,
                                                   list[tuple[int, int]]]:
        """Sample one shot from the cached tree.

        Walks from the root selected by ``mock_view.fingerprint`` (the
        plain root when ``mock_view`` is None), drawing each plant
        measurement's raw outcome from the node's pre-collapse ``P(1)``
        and its reported outcome from the readout-error model — the
        same conditional probabilities the interpreter would sample, so
        the joint distribution is exact.  Mocked nodes instead read the
        fabricated bit from the cursor view (raw == reported, no
        readout error — mocks bypass the analog chain).  Returns
        ``(trace, outcomes)`` on a complete cached path, or
        ``(None, outcome_prefix)`` when an unexplored edge is reached;
        the caller then runs an interpreter shot with that prefix
        forced (and, on success, commits the view's mock consumption).
        """
        rng = self._plant.rng
        readout = self._readout
        key = () if mock_view is None else mock_view.fingerprint
        node = self._roots.get(key)
        outcomes: list[tuple[int, int]] = []
        if node is None:
            return None, outcomes        # unexplored root: no probe yet
        while node.template is None:
            if node.qubit < 0:
                return None, outcomes    # cold node: no probe yet
            if node.mocked:
                value = None if mock_view is None else \
                    mock_view.peek(node.qubit)
                if value is None:
                    # The queue state diverged from the fingerprint's
                    # guarantee (should not happen); miss cleanly.
                    return None, outcomes
                raw = reported = value
            else:
                p_one = node.p_one
                if p_one <= _DETERMINISTIC_EPS:
                    raw = 0
                elif p_one >= 1.0 - _DETERMINISTIC_EPS:
                    raw = 1
                else:
                    raw = 1 if rng.random() < p_one else 0
                reported = readout.apply(raw, rng)
            outcomes.append((raw, reported))
            child = node.children.get((raw, reported))
            if child is None:
                return None, outcomes    # unexplored branch: grow here
            node = child
        return node.template.with_sampled_results(outcomes), outcomes

    # ------------------------------------------------------------------
    # Fault injection (chaos testing of the audit machinery)
    # ------------------------------------------------------------------
    def corrupt_random_template(self, rng) -> str | None:
        """Deliberately corrupt one cached terminal template.

        Used by the ``tree_bitflip`` fault-injection site to prove the
        self-verifying audit detects cache corruption: one terminal
        node's frozen trace is replaced by a tampered copy (a trigger
        time shifted by 1 ns, or the classical time for trigger-free
        traces).  Returns a description of the tampering, or None when
        the tree has no terminal template yet.
        """
        terminals: list[_TreeNode] = []
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            if node.template is not None:
                terminals.append(node)
            stack.extend(node.children.values())
        if not terminals:
            return None
        node = terminals[int(rng.integers(len(terminals)))]
        template = node.template
        if template.triggers:
            index = int(rng.integers(len(template.triggers)))
            record = template.triggers[index]
            triggers = list(template.triggers)
            triggers[index] = replace(record,
                                      trigger_ns=record.trigger_ns + 1.0,
                                      output_ns=record.output_ns + 1.0)
            node.template = ShotTrace(
                triggers=triggers,
                results=template.results,
                slips=template.slips,
                instructions_executed=template.instructions_executed,
                classical_time_ns=template.classical_time_ns,
                stop_reached=template.stop_reached)
            return (f"trigger {index} ({record.name}) of a cached "
                    f"template shifted by 1 ns")
        node.template = ShotTrace(
            triggers=template.triggers,
            results=template.results,
            slips=template.slips,
            instructions_executed=template.instructions_executed,
            classical_time_ns=template.classical_time_ns + 1.0,
            stop_reached=template.stop_reached)
        return "classical time of a cached template shifted by 1 ns"

    # ------------------------------------------------------------------
    # Growth (insert an interpreter shot's observed path)
    # ------------------------------------------------------------------
    def grow(self, samples: list[MeasurementSample],
             trace: ShotTrace, root_key: tuple = ()) -> bool:
        """Insert one interpreter shot's outcome path into the tree.

        ``samples`` are the chronological segment-boundary observations
        of the shot (plant and mocked); ``trace`` is its full
        interpreter trace; ``root_key`` is the mock-cursor fingerprint
        the shot started from.  Returns False (and permanently stops
        growth on determinism violations) when the path cannot be
        cached; the shot itself is still valid.
        """
        if self.growth_stopped_reason is not None:
            return False
        if len(samples) > self._max_depth:
            self.growth_stopped_reason = (
                f"outcome path length {len(samples)} exceeds the "
                f"{self._max_depth}-measurement cap")
            return False
        try:
            self._check_pairing(samples, trace)
            self._insert(self._root(root_key), samples, trace)
        except ReplayError as error:
            self.growth_stopped_reason = str(error)
            return False
        return True

    def _check_pairing(self, samples: list[MeasurementSample],
                       trace: ShotTrace) -> None:
        """The k-th observed measurement (chronological trigger order)
        must be the k-th trace result (chronological arrival order) —
        identical integration windows keep the orders equal, and the
        replay splice relies on it."""
        if len(samples) != len(trace.results):
            raise ReplayError(
                f"{len(samples)} observed measurements vs "
                f"{len(trace.results)} trace results")
        for sample, record in zip(samples, trace.results):
            if (sample.qubit != record.qubit or
                    abs(sample.start_ns - record.measure_start_ns) > 1e-9):
                raise ReplayError(
                    f"measurement on qubit {sample.qubit} at "
                    f"{sample.start_ns} ns does not match result record "
                    f"for qubit {record.qubit} at "
                    f"{record.measure_start_ns} ns")

    def _insert(self, root: _TreeNode, samples: list[MeasurementSample],
                trace: ShotTrace) -> None:
        node = root
        for sample, record in zip(samples, trace.results):
            if node.template is not None:
                raise ReplayError(
                    "determinism violation: a shot with this outcome "
                    "history previously terminated, this one measures "
                    f"qubit {sample.qubit}")
            if node.qubit < 0:
                node.qubit = sample.qubit
                node.start_ns = sample.start_ns
                node.mocked = sample.mocked
                if not sample.mocked:
                    node.p_one = sample.p_one
            elif (node.qubit != sample.qubit or
                    abs(node.start_ns - sample.start_ns) > 1e-9 or
                    node.mocked != sample.mocked):
                raise ReplayError(
                    "determinism violation: same outcome history, "
                    "different next measurement (qubit "
                    f"{node.qubit}{' mocked' if node.mocked else ''} at "
                    f"{node.start_ns} ns vs qubit {sample.qubit}"
                    f"{' mocked' if sample.mocked else ''} at "
                    f"{sample.start_ns} ns) — timing depends on state "
                    "outside the outcome history")
            key = (record.raw_result, record.reported_result)
            child = node.children.get(key)
            if child is None:
                if self.node_count >= self._max_nodes:
                    raise ReplayError(
                        f"timeline tree exceeds the {self._max_nodes}-"
                        f"node cap (outcome space not saturating)")
                child = _TreeNode()
                node.children[key] = child
                self.node_count += 1
            node = child
        if node.qubit >= 0:
            raise ReplayError(
                "determinism violation: a shot with this outcome "
                "history previously kept measuring, this one stopped")
        if node.template is None:
            node.template = trace
            self.path_count += 1
