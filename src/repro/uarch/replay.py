"""Shot-replay fast path: compile-once / replay-N execution.

The Section 5 experiments (Rabi, AllXY, coherence, RB, surface-code
cycles) execute the *same* assembled binary for thousands of shots.
For a feedback-free program the classical/timing domain is completely
deterministic: the instruction stream, the timing points, the trigger
times and the device operations are identical in every shot — only the
plant's stochastic operations (projective measurements and the readout
assignment error) differ.  Real eQASM hardware exploits exactly this
structure: timing is resolved once by the timing controller and the
queues replay it.

This module mirrors that split in software:

* :func:`replay_unsupported_reason` — a static analysis over the
  decoded binary that detects *feedback*: ``FMR`` (CFC measurement
  reads), ``ST`` (persistent data-memory writes that could change
  later shots), conditional micro-operations (fast conditional
  execution reads execution flags set by measurement results), or
  injected mock results (their queues drain across shots).  Any of
  these forces the full interpreter.
* :class:`ReplayTimeline` — captured from one full-interpreter *probe*
  shot: the frozen trace records (triggers, slips, timing metadata),
  the plant operation list, and a plant snapshot taken just before the
  first stochastic operation.  Replaying a shot restores the snapshot
  and re-executes only the stochastic suffix, re-sampling every
  measurement against fresh randomness.

The machine (:meth:`repro.uarch.machine.QuMAv2.run`) engages the
replay path automatically and falls back transparently to the
interpreter whenever the analysis or the capture refuses a program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.microcode import MicrocodeUnit
from repro.core.operations import ExecutionFlag
from repro.quantum.plant import PlantSnapshot, QuantumPlant
from repro.uarch.devices import PulseLibrary
from repro.uarch.measurement import MeasurementUnit
from repro.uarch.trace import ResultRecord, ShotTrace

#: Name under which the plant logs projective measurements.
MEASUREMENT_LOG_NAME = "MEASZ"

#: Instructions whose execution cannot depend on measurement outcomes
#: (given that FMR is absent, GPRs and comparison flags never see
#: measurement data, so control flow and waits are deterministic).
_REPLAYABLE_CLASSICAL = (Nop, Stop, Cmp, Br, Fbr, Ldi, Ldui, Ld,
                         LogicalOp, Not, ArithOp, QWait, QWaitR,
                         SMIS, SMIT)


class ReplayError(Exception):
    """Internal signal: this program cannot be replayed — fall back."""


def replay_unsupported_reason(
        instructions: Iterable[Instruction],
        microcode: MicrocodeUnit,
        measurement_unit: MeasurementUnit,
        qubit_addresses: Iterable[int]) -> str | None:
    """Why a loaded binary cannot take the replay fast path (or None).

    The analysis is conservative: anything that could make one shot
    observe another shot's randomness — or its own measurement
    results — disqualifies the program.
    """
    instructions = list(instructions)
    if not instructions:
        return "no program loaded"
    for qubit in qubit_addresses:
        if measurement_unit.has_mock_results(qubit):
            return (f"mock measurement results queued for qubit {qubit} "
                    f"(per-experiment queues drain across shots)")
    for instruction in instructions:
        if isinstance(instruction, Fmr):
            return "FMR reads a measurement result (CFC feedback)"
        if isinstance(instruction, St):
            return "ST writes data memory, which persists across shots"
        if isinstance(instruction, Bundle):
            for slot in instruction.operations:
                try:
                    micro_ops = microcode.translate_name(slot.name)
                except Exception:
                    return f"operation {slot.name!r} is not translatable"
                for micro_op in micro_ops:
                    if micro_op.condition is not ExecutionFlag.ALWAYS:
                        return (f"operation {slot.name!r} is conditioned "
                                f"on execution flags (fast conditional "
                                f"execution)")
        elif not isinstance(instruction, _REPLAYABLE_CLASSICAL):
            return (f"unsupported instruction "
                    f"{type(instruction).__name__}")
    return None


@dataclass(frozen=True)
class _SuffixOp:
    """One post-snapshot plant operation, ready to re-execute."""

    is_measurement: bool
    name: str
    qubits: tuple[int, ...]
    start_ns: float
    duration_ns: float
    unitary: np.ndarray | None = None       # gates only
    template: ResultRecord | None = None    # measurements only


class ReplayTimeline:
    """A frozen timeline captured from one interpreter probe shot.

    ``capture`` must be called immediately after the probe shot, while
    the machine's plant still holds the probe's operation log.  The
    captured timeline owns:

    * the probe's :class:`ShotTrace` — its frozen trigger/slip records
      and timing metadata are *shared* (bit-identical) with every
      replayed trace;
    * a :class:`~repro.quantum.plant.PlantSnapshot` of the state just
      before the first stochastic operation, rebuilt by re-applying the
      deterministic prefix to a fresh plant;
    * the stochastic suffix — every operation from the first
      measurement on, re-executed (and re-sampled) per shot.
    """

    def __init__(self, plant: QuantumPlant, probe: ShotTrace,
                 snapshot: PlantSnapshot, suffix: list[_SuffixOp]):
        self._plant = plant
        self._probe = probe
        self._snapshot = snapshot
        self._suffix = suffix

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, plant: QuantumPlant, pulses: PulseLibrary,
                probe: ShotTrace) -> "ReplayTimeline":
        """Freeze the probe shot's timeline; raises :class:`ReplayError`
        when the observed execution defies the replay assumptions."""
        operations = list(plant.operations_log)
        measurements = [op for op in operations
                        if op.name == MEASUREMENT_LOG_NAME]
        templates = list(probe.results)
        if len(measurements) != len(templates):
            raise ReplayError(
                f"{len(measurements)} plant measurements vs "
                f"{len(templates)} trace results")
        # Pair the k-th measurement operation (chronological trigger
        # order) with the k-th result record (chronological arrival
        # order); identical integration windows keep the orders equal.
        for op, template in zip(measurements, templates):
            if (op.qubits != (template.qubit,) or
                    abs(op.start_ns - template.measure_start_ns) > 1e-9):
                raise ReplayError(
                    f"measurement on {op.qubits} at {op.start_ns} ns does "
                    f"not match result record for qubit {template.qubit}")
        first_measurement = next(
            (index for index, op in enumerate(operations)
             if op.name == MEASUREMENT_LOG_NAME), len(operations))
        prefix = operations[:first_measurement]
        suffix: list[_SuffixOp] = []
        template_index = 0
        for op in operations[first_measurement:]:
            if op.name == MEASUREMENT_LOG_NAME:
                suffix.append(_SuffixOp(
                    is_measurement=True, name=op.name, qubits=op.qubits,
                    start_ns=op.start_ns, duration_ns=op.duration_ns,
                    template=templates[template_index]))
                template_index += 1
            else:
                suffix.append(_SuffixOp(
                    is_measurement=False, name=op.name, qubits=op.qubits,
                    start_ns=op.start_ns, duration_ns=op.duration_ns,
                    unitary=pulses.unitary_for(op.name)))
        # Rebuild the deterministic prefix on a fresh plant (consumes
        # no randomness) and freeze the pre-measurement state.
        plant.reset_shot()
        for op in prefix:
            plant.apply_unitary(op.name, pulses.unitary_for(op.name),
                                op.qubits, op.start_ns, op.duration_ns)
        snapshot = plant.snapshot()
        return cls(plant=plant, probe=probe, snapshot=snapshot,
                   suffix=suffix)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay_shot(self) -> ShotTrace:
        """One replayed shot: restore the snapshot, re-run the suffix.

        Timing-domain records (triggers, slips, classical time,
        instruction count) are shared with the probe — they are frozen
        dataclasses, bit-identical by construction.  Measurement
        results are re-sampled from the plant with fresh randomness.
        """
        plant = self._plant
        probe = self._probe
        plant.restore(self._snapshot)
        readout = plant.noise.readout
        results: list[ResultRecord] = []
        for op in self._suffix:
            if op.is_measurement:
                raw = plant.measure(op.qubits[0], op.start_ns,
                                    op.duration_ns)
                reported = readout.apply(raw, plant.rng)
                template = op.template
                results.append(ResultRecord(
                    qubit=template.qubit, raw_result=raw,
                    reported_result=reported,
                    measure_start_ns=template.measure_start_ns,
                    arrival_ns=template.arrival_ns))
            else:
                plant.apply_unitary(op.name, op.unitary, op.qubits,
                                    op.start_ns, op.duration_ns)
        return ShotTrace(
            triggers=list(probe.triggers),
            results=results,
            slips=list(probe.slips),
            instructions_executed=probe.instructions_executed,
            classical_time_ns=probe.classical_time_ns,
            stop_reached=probe.stop_reached)
