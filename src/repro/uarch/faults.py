"""Deterministic fault injection for the engine x backend matrix.

eQASM defines runtime error conditions — timing violations, queue
overflows, comparison-flag hazards — that the reproduction models on
the happy path; this module makes the *unhappy* paths exercisable.  A
:class:`FaultPlan` arms named injection sites across the machine, the
measurement unit, and the plant, firing deterministically (by shot
index, site, and seed) so every runtime guard has a test that proves
detection, structured reporting, and recovery.

Injection sites
---------------

``backend_gate``
    The plant backend raises mid-gate
    (:class:`~repro.core.errors.BackendFaultError` from
    :meth:`QuantumPlant.apply_unitary`).
``snapshot_corrupt``
    A stored plant snapshot is bit-flipped before restore; the
    restore-time integrity check detects the corruption and raises.
``measurement_stall``
    A started readout's result is lost on the analog link; the result
    event never arrives and an FMR waiting on it times out with a
    structured :class:`~repro.core.errors.ShotTimeoutError`.
``timing_overflow``
    The timing queue overflows at reserve time
    (:class:`~repro.core.errors.QueueOverflowError` with the
    instantiation's depth in context).
``tree_bitflip``
    A terminal node of the replay timeline tree is corrupted in place;
    the self-verifying audit detects the divergence, evicts the tree
    from both caches, and degrades the run.
``mock_exhaust``
    The measurement unit's mock-result queues are cleared mid-run
    (the UHFQC's fabricated-result program dying); subsequent
    measurements fall through to the real plant and the run recovers.

Process-level sites (the sweep-serving layer)
---------------------------------------------

The three remaining sites fire *outside* the machine: the
:class:`~repro.serving.service.SweepService` consults the plan while
dispatching sweep points to its worker pool, and the matching
directive rides along in the shard message.  For these sites the
plan's shot index is the **sweep point index**, so chaos experiments
pin failures to specific points exactly like shot-pinned machine
faults.

``worker_crash``
    The worker process ``os._exit``\\ s mid-shard, after computing but
    before reporting the pinned point — the supervisor must detect the
    death and re-dispatch every un-journaled point of the shard.
``worker_hang``
    The worker stops heartbeating and sleeps — the supervisor's
    heartbeat watchdog must SIGKILL and replace it.
``result_drop``
    The worker computes the pinned point but never reports it (a lost
    result message); the shard deadline must expire and the point be
    re-dispatched, with the journal deduplicating should the dropped
    result somehow surface later.

The plan is shared by reference: :meth:`QuMAv2.arm_faults` hands the
same object to the plant and the measurement unit, and the machine
advances :attr:`FaultPlan.current_shot` so all hooks agree on when to
fire.  (A service-held plan is advanced by the dispatcher instead.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError

#: Every site a :class:`FaultPlan` can arm.
FAULT_SITES = (
    "backend_gate",
    "snapshot_corrupt",
    "measurement_stall",
    "timing_overflow",
    "tree_bitflip",
    "mock_exhaust",
    "worker_crash",
    "worker_hang",
    "result_drop",
)

#: The subset of :data:`FAULT_SITES` fired by the serving layer (the
#: plan's shot index means *sweep point index* for these).
PROCESS_FAULT_SITES = (
    "worker_crash",
    "worker_hang",
    "result_drop",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure.

    ``shot`` pins the fault to a shot index (``None`` fires at the
    first opportunity regardless of shot); ``count`` bounds how many
    times the spec fires in total, so a retried or re-run plan does not
    re-inject an already-consumed fault.
    """

    site: str
    shot: int | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; "
                f"known sites: {', '.join(FAULT_SITES)}")
        if self.count < 1:
            raise ConfigurationError("fault count must be positive")


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault, for post-mortem inspection."""

    site: str
    shot: int
    context: tuple[tuple[str, object], ...] = ()

    def describe(self) -> str:
        extras = ", ".join(f"{k}={v!r}" for k, v in self.context)
        return f"{self.site}@shot{self.shot}" + (f" ({extras})"
                                                 if extras else "")


class FaultPlan:
    """A deterministic schedule of failures over a run.

    The plan is stateful: each spec's budget is consumed as it fires,
    and :attr:`records` accumulates every injection for assertions.
    """

    def __init__(self, specs, seed: int = 0):
        self.specs = tuple(specs)
        #: RNG for faults that need randomness (e.g. which tree node
        #: to corrupt) — seeded so runs reproduce exactly.
        self.rng = np.random.default_rng(seed)
        self._remaining = [spec.count for spec in self.specs]
        self.records: list[FaultRecord] = []
        self.current_shot = 0
        self._fired_this_run = 0

    # ------------------------------------------------------------------
    # Run lifecycle (driven by the machine)
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        self.current_shot = 0
        self._fired_this_run = 0

    def begin_shot(self, shot_index: int) -> None:
        self.current_shot = shot_index

    @property
    def fired_this_run(self) -> bool:
        return self._fired_this_run > 0

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _match(self, site: str) -> int | None:
        for index, spec in enumerate(self.specs):
            if spec.site != site or self._remaining[index] <= 0:
                continue
            if spec.shot is not None and spec.shot != self.current_shot:
                continue
            return index
        return None

    def armed(self, site: str) -> bool:
        """Whether any budget remains for ``site`` (at any shot)."""
        return any(spec.site == site and remaining > 0
                   for spec, remaining in zip(self.specs, self._remaining))

    def would_fire(self, site: str) -> bool:
        """Whether :meth:`fire` would trigger now, without consuming."""
        return self._match(site) is not None

    def fire(self, site: str, **context) -> bool:
        """Consume one budget unit for ``site`` if a spec matches.

        Returns ``True`` when the caller should inject the failure; the
        injection is recorded with its context for later inspection.
        """
        index = self._match(site)
        if index is None:
            return False
        self._remaining[index] -= 1
        self._fired_this_run += 1
        self.records.append(FaultRecord(
            site=site, shot=self.current_shot,
            context=tuple(sorted(context.items()))))
        return True
