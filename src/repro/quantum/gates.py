"""Gate unitaries for the quantum plant and the compiler.

The target processor (Section 4.1) natively supports single-qubit x/y
rotations, a two-qubit controlled-phase (CZ) gate, and z-basis
measurement.  The compile-time operation configuration can additionally
bind any unitary here to an eQASM opcode (Section 3.2), so this module
also provides the common derived gates (H, Z, S, T, CNOT, SWAP) and
parameterised rotations used by calibration workloads (Rabi sweeps).

Names follow the paper: ``X90``/``Y90`` rotate by +pi/2 about x/y,
``Xm90``/``Ym90`` by -pi/2 (Section 3.4.3).
"""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)

I = np.eye(2, dtype=complex)

X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)

H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T

PAULIS = {"I": I, "X": X, "Y": Y, "Z": Z}


def rx(theta: float) -> np.ndarray:
    """Rotation about the x axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array([[math.cos(half), -1j * math.sin(half)],
                     [-1j * math.sin(half), math.cos(half)]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the y axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array([[math.cos(half), -math.sin(half)],
                     [math.sin(half), math.cos(half)]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the z axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array([[np.exp(-1j * half), 0],
                     [0, np.exp(1j * half)]], dtype=complex)


X90 = rx(math.pi / 2)
XM90 = rx(-math.pi / 2)
Y90 = ry(math.pi / 2)
YM90 = ry(-math.pi / 2)

CZ = np.diag([1, 1, 1, -1]).astype(complex)

# Two-qubit gates below use the convention that the *first* qubit index
# is the most significant bit of the 2-qubit computational basis, i.e.
# basis order |q0 q1> = |00>, |01>, |10>, |11> with q0 the control.
CNOT = np.array([[1, 0, 0, 0],
                 [0, 1, 0, 0],
                 [0, 0, 0, 1],
                 [0, 0, 1, 0]], dtype=complex)

SWAP = np.array([[1, 0, 0, 0],
                 [0, 0, 1, 0],
                 [0, 1, 0, 0],
                 [0, 0, 0, 1]], dtype=complex)

STANDARD_GATES: dict[str, np.ndarray] = {
    "I": I,
    "X": X,
    "Y": Y,
    "Z": Z,
    "H": H,
    "S": S,
    "SDG": SDG,
    "T": T,
    "TDG": TDG,
    "X90": X90,
    "XM90": XM90,
    "Y90": Y90,
    "YM90": YM90,
    "CZ": CZ,
    "CNOT": CNOT,
    "SWAP": SWAP,
}


def gate_matrix(name: str) -> np.ndarray:
    """Return a copy of the unitary for a standard gate name."""
    key = name.upper()
    if key not in STANDARD_GATES:
        known = ", ".join(sorted(STANDARD_GATES))
        raise KeyError(f"unknown gate {name!r}; known gates: {known}")
    return STANDARD_GATES[key].copy()


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether ``matrix`` is unitary within tolerance."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))


def kron_all(matrices: list[np.ndarray]) -> np.ndarray:
    """Kronecker product of a list of matrices, left to right."""
    out = np.eye(1, dtype=complex)
    for matrix in matrices:
        out = np.kron(out, matrix)
    return out


def gates_equivalent(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """Whether two unitaries are equal up to global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Find the first non-negligible entry of b to extract the phase.
    flat_b = b.ravel()
    index = int(np.argmax(np.abs(flat_b)))
    if abs(flat_b[index]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a.ravel()[index] / flat_b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))
