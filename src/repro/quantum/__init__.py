"""Quantum-state substrate: gates, simulators, noise, plant, tomography."""

from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
    ReadoutErrorModel,
)
from repro.quantum.plant import AppliedOperation, QuantumPlant
from repro.quantum.statevector import Statevector, basis_state, zero_state

__all__ = [
    "AppliedOperation",
    "DecoherenceModel",
    "DensityMatrix",
    "GateErrorModel",
    "NoiseModel",
    "QuantumPlant",
    "ReadoutErrorModel",
    "Statevector",
    "basis_state",
    "zero_state",
]
