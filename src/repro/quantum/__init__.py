"""Quantum-state substrate: gates, simulators, noise, plant, tomography."""

from repro.quantum.backend import DenseBackend, PlantBackend
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    DecoherenceModel,
    GateErrorModel,
    NoiseModel,
    ReadoutErrorModel,
)
from repro.quantum.plant import AppliedOperation, QuantumPlant
from repro.quantum.stabilizer import (
    CliffordAction,
    StabilizerBackend,
    StabilizerTableau,
    clifford_action_of,
    is_clifford,
)
from repro.quantum.statevector import Statevector, basis_state, zero_state

__all__ = [
    "AppliedOperation",
    "CliffordAction",
    "DecoherenceModel",
    "DenseBackend",
    "DensityMatrix",
    "GateErrorModel",
    "NoiseModel",
    "PlantBackend",
    "QuantumPlant",
    "ReadoutErrorModel",
    "StabilizerBackend",
    "StabilizerTableau",
    "Statevector",
    "basis_state",
    "clifford_action_of",
    "is_clifford",
    "zero_state",
]
