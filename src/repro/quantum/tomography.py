"""Two-qubit quantum state tomography with maximum-likelihood estimation.

Section 5 reports the two-qubit Grover's search fidelity (85.6 %) "using
quantum tomography with maximum likelihood estimation".  This module
implements the standard procedure:

1. Estimate the 15 non-trivial two-qubit Pauli expectation values
   <P_a ⊗ P_b> from measurement counts taken after basis-rotation
   pre-pulses (measuring X requires a Y-90 pre-rotation, Y an Xm90).
2. Linear-inversion reconstruction
   ``rho_lin = (1/4) * sum_ab <P_a P_b> P_a ⊗ P_b``.
3. Project onto the physical set (positive semidefinite, trace one) by
   the Smolin–Gambetta–Smith eigenvalue-truncation algorithm, which is
   the maximum-likelihood estimate under Gaussian noise.

Readout-error correction is applied at the expectation-value level
(invert the per-qubit confusion matrix) — this is the paper's
"algorithmic fidelity, i.e., correcting for readout infidelity".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.errors import PlantError
from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector

#: Pre-rotation applied before a z-basis readout to measure each Pauli.
#: Measuring X: rotate by -pi/2 about y (maps x-axis onto z-axis).
#: Measuring Y: rotate by +pi/2 about x.
BASIS_PREROTATION = {
    "X": gates.YM90,
    "Y": gates.X90,
    "Z": gates.I,
}

PAULI_LABELS = ("I", "X", "Y", "Z")


@dataclass(frozen=True)
class TomographySetting:
    """One measurement configuration: a readout basis per qubit."""

    bases: tuple[str, str]

    def prerotations(self) -> tuple[np.ndarray, np.ndarray]:
        """Unitaries to apply before z-readout, one per qubit."""
        return tuple(BASIS_PREROTATION[b] for b in self.bases)


def measurement_settings() -> list[TomographySetting]:
    """The nine two-qubit basis settings {X,Y,Z} x {X,Y,Z}."""
    return [TomographySetting(bases=(a, b))
            for a in ("X", "Y", "Z") for b in ("X", "Y", "Z")]


def expectation_from_counts(counts: dict[int, int]) -> dict[str, float]:
    """Single-setting expectation values from two-bit outcome counts.

    ``counts`` maps outcome (two-bit integer, qubit 0 = MSB) to shots.
    Returns ``{"ZI": <Z x I>, "IZ": <I x Z>, "ZZ": <Z x Z>}`` in the
    *rotated* frame: combined with the setting's bases these become the
    Pauli expectation values.
    """
    total = sum(counts.values())
    if total == 0:
        raise PlantError("no shots in counts")
    zi = iz = zz = 0.0
    for outcome, n in counts.items():
        bit0 = (outcome >> 1) & 1
        bit1 = outcome & 1
        sign0 = 1.0 - 2.0 * bit0
        sign1 = 1.0 - 2.0 * bit1
        zi += sign0 * n
        iz += sign1 * n
        zz += sign0 * sign1 * n
    return {"ZI": zi / total, "IZ": iz / total, "ZZ": zz / total}


def correct_expectations_for_readout(
        expectations: dict[str, float],
        fidelity_q0: float, fidelity_q1: float) -> dict[str, float]:
    """Undo symmetric readout assignment error on expectation values.

    A symmetric assignment error with fidelity ``F`` scales a
    single-qubit expectation by ``2F - 1``; a two-qubit correlator by
    the product of both scale factors.
    """
    scale0 = 2.0 * fidelity_q0 - 1.0
    scale1 = 2.0 * fidelity_q1 - 1.0
    if scale0 <= 0 or scale1 <= 0:
        raise PlantError("readout fidelity must exceed 0.5 to correct")
    return {
        "ZI": expectations["ZI"] / scale0,
        "IZ": expectations["IZ"] / scale1,
        "ZZ": expectations["ZZ"] / (scale0 * scale1),
    }


def assemble_pauli_vector(
        setting_expectations: dict[tuple[str, str], dict[str, float]],
) -> dict[tuple[str, str], float]:
    """Combine per-setting rotated-frame expectations into Pauli terms.

    ``setting_expectations`` maps a setting's bases (e.g. ``("X", "Z")``)
    to its ``{"ZI", "IZ", "ZZ"}`` dictionary.  Each Pauli term
    ``(a, b)`` with a, b in {I, X, Y, Z} is averaged over every setting
    that measures it (a term with an I acts on several settings).
    """
    sums: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}

    def accumulate(term: tuple[str, str], value: float) -> None:
        sums[term] = sums.get(term, 0.0) + value
        counts[term] = counts.get(term, 0) + 1

    for (basis0, basis1), values in setting_expectations.items():
        accumulate((basis0, "I"), values["ZI"])
        accumulate(("I", basis1), values["IZ"])
        accumulate((basis0, basis1), values["ZZ"])
    return {term: sums[term] / counts[term] for term in sums}


def linear_inversion(pauli_terms: dict[tuple[str, str], float]) -> np.ndarray:
    """Reconstruct rho from Pauli expectation values (may be unphysical)."""
    rho = np.eye(4, dtype=complex) / 4.0
    for (label0, label1), value in pauli_terms.items():
        if (label0, label1) == ("I", "I"):
            continue
        operator = np.kron(gates.PAULIS[label0], gates.PAULIS[label1])
        rho = rho + value * operator / 4.0
    return rho


def project_to_physical(rho: np.ndarray) -> np.ndarray:
    """Nearest physical density matrix (Smolin et al., PRL 108, 070502).

    Eigenvalues are sorted descending; negative mass is redistributed by
    truncation so the result is PSD with unit trace — the closed-form
    maximum-likelihood state for Gaussian measurement noise.
    """
    rho = (rho + rho.conj().T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(rho)
    # eigh returns ascending order; walk from the smallest.
    values = list(eigenvalues)
    dim = len(values)
    accumulator = 0.0
    adjusted = [0.0] * dim
    remaining = dim
    for i in range(dim):
        candidate = values[i] + accumulator / remaining
        if candidate < 0:
            accumulator += values[i]
            adjusted[i] = 0.0
            remaining -= 1
        else:
            for j in range(i, dim):
                adjusted[j] = values[j] + accumulator / remaining
            break
    rho_physical = np.zeros_like(rho)
    for value, vector in zip(adjusted, eigenvectors.T):
        if value > 0:
            rho_physical += value * np.outer(vector, vector.conj())
    trace = np.trace(rho_physical).real
    if trace <= 0:
        raise PlantError("projection produced a zero state")
    return rho_physical / trace


def mle_tomography(
        setting_expectations: dict[tuple[str, str], dict[str, float]],
) -> DensityMatrix:
    """Full pipeline: per-setting expectations -> physical rho."""
    pauli_terms = assemble_pauli_vector(setting_expectations)
    rho = linear_inversion(pauli_terms)
    rho = project_to_physical(rho)
    return DensityMatrix(2, rho)


def state_fidelity(rho: DensityMatrix, target: Statevector) -> float:
    """<psi| rho |psi> against the ideal algorithm output."""
    return rho.fidelity_with_pure(target)


def ideal_pauli_terms(state: Statevector) -> dict[tuple[str, str], float]:
    """Exact Pauli expectation values of a two-qubit pure state."""
    if state.num_qubits != 2:
        raise PlantError("two-qubit states only")
    rho = DensityMatrix.from_statevector(state).matrix
    terms = {}
    for label0, label1 in itertools.product(PAULI_LABELS, PAULI_LABELS):
        operator = np.kron(gates.PAULIS[label0], gates.PAULIS[label1])
        terms[(label0, label1)] = float(np.trace(rho @ operator).real)
    return terms
