"""Exact density-matrix simulator for small open systems.

The Section 5 experiments run on one or two qubits; an exact density
matrix (4x4 at most in practice, but the implementation is generic) with
Kraus-channel noise is both faster and statistically cleaner than
Monte-Carlo trajectories.  Measurement is still sampled per shot so the
control flow of the microarchitecture (fast conditional execution, CFC)
sees genuine random outcomes.

Index convention matches :mod:`repro.quantum.statevector`: qubit 0 is
the most significant bit of the computational basis.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.statevector import (
    Statevector,
    _apply_unitary_1q,
    _apply_unitary_2q,
)


class DensityMatrix:
    """An ``n``-qubit mixed state evolving under unitaries and channels."""

    def __init__(self, num_qubits: int, matrix: np.ndarray | None = None):
        if num_qubits < 1:
            raise PlantError("need at least one qubit")
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if matrix is None:
            self._matrix = np.zeros((dim, dim), dtype=complex)
            self._matrix[0, 0] = 1.0
        else:
            matrix = np.asarray(matrix, dtype=complex)
            if matrix.shape != (dim, dim):
                raise PlantError(
                    f"matrix shape {matrix.shape}, expected ({dim}, {dim})")
            trace = np.trace(matrix).real
            if not math.isclose(trace, 1.0, abs_tol=1e-8):
                raise PlantError(f"trace is {trace}, expected 1")
            self._matrix = matrix.copy()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """|psi><psi| for a pure state."""
        amplitudes = state.amplitudes_view
        return cls(state.num_qubits, np.outer(amplitudes,
                                              amplitudes.conj()))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """A copy of the density matrix."""
        return self._matrix.copy()

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states."""
        return float(np.trace(self._matrix @ self._matrix).real)

    def probabilities(self) -> np.ndarray:
        """Diagonal of rho — computational basis probabilities."""
        return np.clip(np.diag(self._matrix).real, 0.0, 1.0)

    def copy(self) -> "DensityMatrix":
        """An independent copy of this state."""
        return DensityMatrix(self.num_qubits, self._matrix)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_gate(self, unitary: np.ndarray,
                   qubits: tuple[int, ...] | list[int]) -> None:
        """Apply a k-qubit unitary: rho -> U rho U^dag."""
        qubits = tuple(qubits)
        unitary = np.asarray(unitary, dtype=complex)
        self._check_operator(unitary, qubits)
        if len(qubits) <= 2:
            self._apply_operator_inplace(unitary, qubits)
        else:
            full = self._embed(unitary, qubits)
            self._matrix = full @ self._matrix @ full.conj().T

    def apply_channel(self, kraus: list[np.ndarray],
                      qubits: tuple[int, ...] | list[int]) -> None:
        """Apply a Kraus channel: rho -> sum_i K_i rho K_i^dag."""
        qubits = tuple(qubits)
        operators = [np.asarray(k, dtype=complex) for k in kraus]
        for operator in operators:
            self._check_operator(operator, qubits)
        if len(qubits) <= 2:
            original = self._matrix
            accumulated = np.zeros_like(original)
            for operator in operators:
                self._matrix = original.copy()
                self._apply_operator_inplace(operator, qubits)
                accumulated += self._matrix
            self._matrix = accumulated
            return
        embedded = [self._embed(operator, qubits)
                    for operator in operators]
        new = np.zeros_like(self._matrix)
        for operator in embedded:
            new += operator @ self._matrix @ operator.conj().T
        self._matrix = new

    def _apply_operator_inplace(self, operator: np.ndarray,
                                qubits: tuple[int, ...]) -> None:
        """rho -> K rho K^dag through the statevector kernels.

        Flattened, rho is a 2n-qubit tensor whose first n axes are the
        row (ket) indices and last n the column (bra) indices; applying
        ``K`` to the row axes and ``conj(K)`` to the column axes is
        exactly ``K rho K^dag`` — without ever building the embedded
        full-space operator.
        """
        if not self._matrix.flags.c_contiguous:
            self._matrix = np.ascontiguousarray(self._matrix)
        flat = self._matrix.reshape(-1)
        n = self.num_qubits
        if len(qubits) == 1:
            _apply_unitary_1q(flat, operator, qubits[0])
            _apply_unitary_1q(flat, operator.conj(), qubits[0] + n)
        else:
            _apply_unitary_2q(flat, operator, qubits)
            _apply_unitary_2q(flat, operator.conj(),
                              (qubits[0] + n, qubits[1] + n))

    def _check_operator(self, operator: np.ndarray,
                        qubits: tuple[int, ...]) -> None:
        """Shape/target validation shared by gates, channels, embeds."""
        k = len(qubits)
        if operator.shape != (1 << k, 1 << k):
            raise PlantError(
                f"operator shape {operator.shape} does not match {k} qubits")
        if len(set(qubits)) != k:
            raise PlantError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PlantError(f"qubit {qubit} out of range")

    def _embed(self, operator: np.ndarray,
               qubits: tuple[int, ...]) -> np.ndarray:
        """Lift a k-qubit operator to the full Hilbert space.

        Callers validate via :meth:`_check_operator` first.
        """
        # Build the permutation taking (qubits..., rest...) -> natural order.
        rest = [q for q in range(self.num_qubits) if q not in qubits]
        order = list(qubits) + rest
        dim = 1 << self.num_qubits
        full = np.kron(operator,
                       np.eye(1 << len(rest), dtype=complex))
        if order == list(range(self.num_qubits)):
            return full
        # Permutation matrix P with P|x_natural> = |x_ordered>.
        perm = np.zeros((dim, dim), dtype=complex)
        for natural_index in range(dim):
            bits = [(natural_index >> (self.num_qubits - 1 - q)) & 1
                    for q in range(self.num_qubits)]
            ordered_bits = [bits[q] for q in order]
            ordered_index = 0
            for bit in ordered_bits:
                ordered_index = (ordered_index << 1) | bit
            perm[ordered_index, natural_index] = 1.0
        return perm.conj().T @ full @ perm

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> float:
        """P(qubit reads 1) under an ideal projective measurement."""
        if not 0 <= qubit < self.num_qubits:
            raise PlantError(f"qubit {qubit} out of range")
        probabilities = self.probabilities().reshape(1 << qubit, 2, -1)
        total = float(probabilities[:, 1, :].sum())
        return float(min(max(total, 0.0), 1.0))

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Sample a projective z-measurement and collapse the state."""
        p_one = self.probability_one(qubit)
        result = 1 if rng.random() < p_one else 0
        self.collapse(qubit, result)
        return result

    def collapse(self, qubit: int, result: int) -> None:
        """Project qubit onto ``result`` and renormalise."""
        if result not in (0, 1):
            raise PlantError(f"result {result} is not a bit")
        if not 0 <= qubit < self.num_qubits:
            raise PlantError(f"qubit {qubit} out of range")
        if not self._matrix.flags.c_contiguous:
            self._matrix = np.ascontiguousarray(self._matrix)
        rest = 1 << (self.num_qubits - 1 - qubit)
        view = self._matrix.reshape(1 << qubit, 2, rest,
                                    1 << qubit, 2, rest)
        view[:, 1 - result, :, :, :, :] = 0.0
        view[:, :, :, :, 1 - result, :] = 0.0
        trace = np.trace(self._matrix).real
        if trace < 1e-12:
            raise PlantError(
                f"collapse of qubit {qubit} to {result} has probability 0")
        self._matrix = self._matrix / trace

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def fidelity_with_pure(self, state: Statevector) -> float:
        """<psi| rho |psi> against a pure reference state."""
        if state.num_qubits != self.num_qubits:
            raise PlantError("qubit count mismatch")
        amplitudes = state.amplitudes_view
        value = amplitudes.conj() @ self._matrix @ amplitudes
        return float(value.real)

    def fidelity(self, other: "DensityMatrix") -> float:
        """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2.

        Matrix square roots are taken by eigendecomposition with small
        negative eigenvalues (numerical noise on singular states)
        clipped to zero, which keeps pure/rank-deficient states exact.
        """
        if other.num_qubits != self.num_qubits:
            raise PlantError("qubit count mismatch")

        def psd_sqrt(matrix: np.ndarray) -> np.ndarray:
            hermitian = (matrix + matrix.conj().T) / 2.0
            eigenvalues, eigenvectors = np.linalg.eigh(hermitian)
            eigenvalues = np.clip(eigenvalues, 0.0, None)
            return (eigenvectors * np.sqrt(eigenvalues)) @ \
                eigenvectors.conj().T

        sqrt_rho = psd_sqrt(self._matrix)
        inner = psd_sqrt(sqrt_rho @ other._matrix @ sqrt_rho)
        value = np.trace(inner).real
        return float(min(max(value ** 2, 0.0), 1.0))
