"""The quantum plant: timed, noisy qubits behind the analog-digital
interface.

In the paper's hardware (Fig. 10), the microarchitecture's digital output
triggers codeword-selected pulses that drive the transmon chip.  In this
reproduction, the plant stands in for the chip *plus* the analog
electronics: it accepts trigger events ("apply unitary U to qubits (a, b)
at time t", "start measuring qubit q at time t") and maintains the joint
quantum state under a calibrated noise model.

*How* the state is represented is delegated to a pluggable
:class:`~repro.quantum.backend.PlantBackend`:

* the **dense** backend (default) keeps an exact density matrix with
  Kraus-channel noise — any unitary, any noise model, O(4^n) per gate;
* the **stabilizer** backend (:mod:`repro.quantum.stabilizer`) keeps a
  Gottesman–Knill tableau — Clifford gates and Pauli/readout-only
  noise, polynomial cost, which is what lets surface-code-scale chips
  (the 17-qubit distance-3 patch) run at all.

:meth:`repro.uarch.machine.QuMAv2.run_iter` selects the backend
automatically per run from a static pass over the loaded binary plus
the noise model, and falls back to the dense backend transparently for
non-Clifford programs; callers can pin a backend with
:meth:`use_backend`.  Backends are constructed lazily, so merely
building a plant for a wide chip never allocates the (possibly
infeasible) dense matrix.

Physics modelled:

* decoherence while idling (T1/T2), applied lazily per qubit between
  consecutive operations — this produces the Fig. 12 interval dependence;
* depolarizing gate error applied with every unitary;
* projective z-measurement, collapsing the state; the classical
  assignment error is applied by the measurement-discrimination unit
  (:mod:`repro.uarch.measurement`) so that the plant itself reports the
  physical outcome.

The plant enforces monotonic per-qubit time: an operation scheduled
before the previous one on the same qubit has finished indicates a
control bug (the paper inserts a 1 us wait after measurements precisely
to avoid this) and raises :class:`~repro.core.errors.PlantError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import BackendFaultError, PlantError, ResourceError
from repro.quantum.backend import DenseBackend, PlantBackend
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import NoiseModel
from repro.topology.chip import QuantumChipTopology


@dataclass(frozen=True)
class AppliedOperation:
    """Trace record of one operation the plant actually performed."""

    name: str
    qubits: tuple[int, ...]
    start_ns: float
    duration_ns: float


@dataclass(frozen=True)
class PlantSnapshot:
    """A frozen mid-shot plant state, restorable in O(state size).

    Used by the shot-replay engine to cache the (deterministic) state
    reached just before the first stochastic operation of a shot, so
    replayed shots skip re-evolving the whole deterministic prefix.
    ``state`` is the owning backend's opaque snapshot (a density matrix
    for the dense backend, a tableau for the stabilizer backend); it
    can only be restored onto a plant using the same backend kind.
    """

    state: object
    qubit_free_at: dict[int, float]
    operations_log: tuple[AppliedOperation, ...]
    backend_kind: str = "dense"
    #: Integrity token of ``state`` at capture time (None: the backend
    #: does not support digests).  :meth:`QuantumPlant.restore`
    #: verifies it so a corrupted stored snapshot is detected instead
    #: of silently loading wrong state.
    digest: int | None = None


class QuantumPlant:
    """Backend-pluggable model of the chip behind the ADI.

    Parameters
    ----------
    topology:
        Chip description; physical qubit addresses may be sparse (the
        two-qubit chip uses addresses 0 and 2) and are mapped to dense
        simulator indices internally.
    noise:
        The noise model; defaults to the calibrated paper-like model.
    rng:
        Random generator for measurement sampling.  Pass a seeded
        generator for reproducible shots.
    backend:
        Initial state-backend kind, ``"dense"`` (exact density matrix,
        the default) or ``"stabilizer"`` (Clifford tableau).  The
        backend is constructed on first use and can be swapped between
        shots with :meth:`use_backend` — which is how the machine's
        automatic selection plugs in.
    """

    #: Registered backend constructors (kind -> class).  The stabilizer
    #: backend registers itself here on import, avoiding a hard import
    #: cycle; third-party backends may add entries as well.
    BACKENDS: dict[str, type[PlantBackend]] = {"dense": DenseBackend}

    #: Default admission budget for any one backend's state.  2 GiB
    #: admits the 13-qubit dense matrix (1 GiB) and refuses 14 qubits
    #: and up (4 GiB+) — requests past the budget fail fast with the
    #: estimate instead of OOM-ing mid-allocation.
    DEFAULT_MEMORY_LIMIT_BYTES = 2 * 2 ** 30

    def __init__(self, topology: QuantumChipTopology,
                 noise: NoiseModel | None = None,
                 rng: np.random.Generator | None = None,
                 backend: str = "dense"):
        self.topology = topology
        self.noise = noise if noise is not None else NoiseModel()
        self.rng = rng if rng is not None else np.random.default_rng()
        self._index_of = {address: index
                          for index, address in enumerate(topology.qubits)}
        self.num_qubits = len(topology.qubits)
        self._backend_kind = backend
        self._backend: PlantBackend | None = None
        self._qubit_free_at = {address: 0.0 for address in topology.qubits}
        self.operations_log: list[AppliedOperation] = []
        #: Optional hook called as ``observer(qubit, start_ns, p_one)``
        #: just before every projective collapse — the branch-resolved
        #: replay engine records the pre-collapse P(1) at each segment
        #: boundary through this.  Survives :meth:`reset_shot`.
        self.measure_observer = None
        #: Admission budget for backend state (overridable per plant).
        self.memory_limit_bytes = self.DEFAULT_MEMORY_LIMIT_BYTES
        #: Armed :class:`~repro.uarch.faults.FaultPlan` (None in
        #: production) — set by :meth:`QuMAv2.arm_faults`.
        self.fault_plan = None
        #: Attached :class:`repro.obs.Observability` (None = disabled)
        #: — set through :attr:`QuMAv2.observability`.  When present,
        #: backend gate/measure kernel time lands in per-backend
        #: ``backend.<kind>.*.time_ns`` histograms.
        self.observability = None

    @property
    def observability(self):
        return self._observability

    @observability.setter
    def observability(self, obs) -> None:
        self._observability = obs
        # (kind, gate histogram, measure histogram) — resolved lazily
        # per backend kind so the per-gate hook never rebuilds metric
        # names on the hot path.
        self._obs_kernel_cache = None

    def _obs_kernels(self, obs):
        """The cached ``(gate, measure)`` histograms for the current
        backend kind."""
        kind = self._backend_kind
        cache = self._obs_kernel_cache
        if cache is None or cache[0] != kind:
            cache = (kind,
                     obs.metrics.histogram(
                         f"backend.{kind}.gate.time_ns"),
                     obs.metrics.histogram(
                         f"backend.{kind}.measure.time_ns"))
            self._obs_kernel_cache = cache
        return cache

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def check_admission(self, kind: str | None = None) -> None:
        """Fail fast when a backend's state would not fit in memory.

        Estimates the requested backend's state size from the qubit
        count and raises :class:`~repro.core.errors.ResourceError` —
        with the estimate, the budget and a suggested alternative in
        machine-readable context — when it exceeds
        :attr:`memory_limit_bytes`.  Called automatically before any
        backend is constructed.
        """
        kind = kind if kind is not None else self._backend_kind
        factory = self._backend_factory(kind)
        estimate = factory.estimate_bytes(self.num_qubits)
        limit = self.memory_limit_bytes
        if estimate <= limit:
            return
        suggestion = (
            "use plant_backend='stabilizer' (polynomial memory) for "
            "Clifford workloads, or a narrower chip"
            if kind == "dense" else "use a narrower chip")
        raise ResourceError(
            f"the {kind} backend needs ~{estimate:,} bytes for "
            f"{self.num_qubits} qubits, past the {limit:,}-byte "
            f"admission budget; {suggestion}",
            requested_bytes=estimate, limit_bytes=limit,
            num_qubits=self.num_qubits, backend=kind,
            suggestion=suggestion)

    def _backend_factory(self, kind: str) -> type[PlantBackend]:
        if kind == "stabilizer" and kind not in self.BACKENDS:
            # Lazy registration: importing the module adds the entry.
            from repro.quantum import stabilizer  # noqa: F401
        try:
            return self.BACKENDS[kind]
        except KeyError:
            known = ", ".join(sorted(self.BACKENDS))
            raise PlantError(
                f"unknown plant backend {kind!r}; known backends: {known}")

    def _make_backend(self, kind: str) -> PlantBackend:
        factory = self._backend_factory(kind)
        self.check_admission(kind)
        return factory(self.num_qubits)

    @property
    def backend(self) -> PlantBackend:
        """The live state backend (constructed on first access)."""
        if self._backend is None:
            self._backend = self._make_backend(self._backend_kind)
        return self._backend

    @property
    def backend_kind(self) -> str:
        """The selected backend kind ("dense" / "stabilizer")."""
        return self._backend_kind

    def use_backend(self, kind: str) -> None:
        """Select the state backend for subsequent shots.

        Swapping kinds rebuilds the state in ``|0...0>``; reselecting
        the current kind keeps the live backend (state included).
        Callers switch only at shot boundaries —
        :meth:`repro.uarch.machine.QuMAv2.run_iter` does so before the
        first shot of every run.
        """
        if kind != self._backend_kind or self._backend is None:
            self._backend = self._make_backend(kind)
            self._backend_kind = kind

    @property
    def state(self) -> DensityMatrix:
        """The dense backend's density matrix (back-compat accessor).

        Raises when another backend owns the state — use
        :attr:`backend` for backend-agnostic access.
        """
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.state
        raise PlantError(
            f"the {backend.kind} backend does not expose a density "
            f"matrix; read plant.backend instead")

    # ------------------------------------------------------------------
    # Shot lifecycle
    # ------------------------------------------------------------------
    def reset_shot(self) -> None:
        """Return every qubit to |0> at time zero (start of a new shot)."""
        self.backend.reset()
        self._qubit_free_at = {address: 0.0
                               for address in self.topology.qubits}
        self.operations_log = []

    def snapshot(self) -> PlantSnapshot:
        """Capture the current state, busy times and operation log."""
        backend = self.backend
        state = backend.snapshot()
        return PlantSnapshot(state=state,
                             qubit_free_at=dict(self._qubit_free_at),
                             operations_log=tuple(self.operations_log),
                             backend_kind=self._backend_kind,
                             digest=backend.state_digest(state))

    def restore(self, snapshot: PlantSnapshot) -> None:
        """Return the plant to a previously captured snapshot.

        The snapshot itself is never aliased: the state is copied on
        both capture and restore, so one snapshot can seed arbitrarily
        many replayed shots.  When the backend supports state digests
        the stored state's integrity is re-verified here: a snapshot
        corrupted since capture raises
        :class:`~repro.core.errors.BackendFaultError` instead of
        silently loading wrong state.
        """
        if snapshot.backend_kind != self._backend_kind:
            raise PlantError(
                f"snapshot was captured on the {snapshot.backend_kind} "
                f"backend; the plant now runs {self._backend_kind}")
        backend = self.backend
        plan = self.fault_plan
        if plan is not None and plan.fire("snapshot_corrupt",
                                          backend=self._backend_kind):
            backend.corrupt_snapshot(snapshot.state, plan.rng)
        if snapshot.digest is not None:
            digest = backend.state_digest(snapshot.state)
            if digest != snapshot.digest:
                raise BackendFaultError(
                    f"snapshot integrity violation on the "
                    f"{self._backend_kind} backend: stored state no "
                    f"longer matches its capture-time digest",
                    backend=self._backend_kind, operation="restore",
                    site="snapshot_corrupt")
        backend.restore(snapshot.state)
        self._qubit_free_at = dict(snapshot.qubit_free_at)
        self.operations_log = list(snapshot.operations_log)

    def qubit_index(self, address: int) -> int:
        """Dense simulator index for a physical qubit address."""
        try:
            return self._index_of[address]
        except KeyError:
            raise PlantError(
                f"qubit address {address} not on chip {self.topology.name}")

    # ------------------------------------------------------------------
    # Idling
    # ------------------------------------------------------------------
    def _advance_qubit(self, address: int, to_time_ns: float) -> None:
        """Apply idle decoherence to one qubit up to ``to_time_ns``."""
        free_at = self._qubit_free_at[address]
        if to_time_ns < free_at - 1e-9:
            raise PlantError(
                f"operation on qubit {address} at t={to_time_ns} ns "
                f"overlaps previous operation ending at {free_at} ns")
        idle = max(to_time_ns - free_at, 0.0)
        if idle > 0:
            self.backend.apply_idle(self.qubit_index(address), idle,
                                    self.noise.decoherence)

    def idle_all_until(self, time_ns: float) -> None:
        """Idle every qubit up to ``time_ns`` (end-of-program flush)."""
        for address in self.topology.qubits:
            if time_ns > self._qubit_free_at[address]:
                self._advance_qubit(address, time_ns)
                self._qubit_free_at[address] = time_ns

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def apply_unitary(self, name: str, unitary: np.ndarray,
                      qubits: tuple[int, ...], start_ns: float,
                      duration_ns: float,
                      apply_gate_error: bool = True) -> None:
        """Apply a named unitary on physical qubit addresses at a time.

        The qubits are first idled (decohered) up to ``start_ns``; the
        gate is applied instantaneously at its start time and the qubits
        are marked busy until ``start_ns + duration_ns``.
        """
        if not qubits:
            raise PlantError(f"operation {name} has no target qubits")
        plan = self.fault_plan
        if plan is not None and plan.fire("backend_gate", operation=name,
                                          qubits=qubits):
            raise BackendFaultError(
                f"injected backend fault while applying {name} to "
                f"qubits {qubits} on the {self._backend_kind} backend",
                backend=self._backend_kind, operation=name,
                qubits=qubits, site="backend_gate")
        for address in qubits:
            self._advance_qubit(address, start_ns)
        indices = tuple(self.qubit_index(address) for address in qubits)
        backend = self.backend
        obs = self.observability
        if obs is None:
            backend.apply_gate(name, unitary, indices)
            if apply_gate_error:
                backend.apply_gate_error(indices,
                                         self.noise.gate_error,
                                         self.rng)
        else:
            clock = obs.tracer.clock
            gate_start = clock()
            backend.apply_gate(name, unitary, indices)
            if apply_gate_error:
                backend.apply_gate_error(indices,
                                         self.noise.gate_error,
                                         self.rng)
            self._obs_kernels(obs)[1].record(clock() - gate_start)
        for address in qubits:
            self._qubit_free_at[address] = start_ns + duration_ns
        self.operations_log.append(
            AppliedOperation(name=name, qubits=qubits, start_ns=start_ns,
                             duration_ns=duration_ns))

    def measure(self, qubit: int, start_ns: float,
                duration_ns: float, forced: int | None = None) -> int:
        """Projective z-measurement of a physical qubit.

        Returns the *physical* outcome (no assignment error); the
        measurement-discrimination unit applies the classical readout
        flip.  The qubit is busy for the full measurement duration.

        ``forced`` collapses the state onto a caller-chosen outcome
        instead of sampling — the branch-resolved replay engine uses it
        to re-run an interpreter shot along an already-sampled outcome
        prefix (the forced outcome was itself drawn from this state's
        pre-collapse distribution, so the statistics stay exact).
        """
        self._advance_qubit(qubit, start_ns)
        index = self.qubit_index(qubit)
        backend = self.backend
        if self.measure_observer is not None:
            self.measure_observer(qubit, start_ns,
                                  backend.probability_one(index))
        obs = self.observability
        if obs is None:
            if forced is None:
                result = backend.measure(index, self.rng)
            else:
                backend.collapse(index, forced)
                result = forced
        else:
            clock = obs.tracer.clock
            measure_start = clock()
            if forced is None:
                result = backend.measure(index, self.rng)
            else:
                backend.collapse(index, forced)
                result = forced
            self._obs_kernels(obs)[2].record(clock() - measure_start)
        self._qubit_free_at[qubit] = start_ns + duration_ns
        self.operations_log.append(
            AppliedOperation(name="MEASZ", qubits=(qubit,),
                             start_ns=start_ns, duration_ns=duration_ns))
        return result

    # ------------------------------------------------------------------
    # Inspection helpers (used by experiments and tests)
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> float:
        """Ideal P(1) of a physical qubit in the current state."""
        return self.backend.probability_one(self.qubit_index(qubit))

    def density_matrix(self) -> DensityMatrix:
        """Copy of the current joint state (dense backend only)."""
        return self.backend.density_matrix()

    def qubit_free_at(self, qubit: int) -> float:
        """Time at which the qubit's last operation completes."""
        if qubit not in self._qubit_free_at:
            raise PlantError(f"qubit {qubit} not on chip")
        return self._qubit_free_at[qubit]
