"""The quantum plant: timed, noisy qubits behind the analog-digital
interface.

In the paper's hardware (Fig. 10), the microarchitecture's digital output
triggers codeword-selected pulses that drive the transmon chip.  In this
reproduction, the plant stands in for the chip *plus* the analog
electronics: it accepts trigger events ("apply unitary U to qubits (a, b)
at time t", "start measuring qubit q at time t") and maintains an exact
density matrix under a calibrated noise model.

Physics modelled:

* decoherence while idling (T1/T2), applied lazily per qubit between
  consecutive operations — this produces the Fig. 12 interval dependence;
* depolarizing gate error applied with every unitary;
* projective z-measurement, collapsing the state; the classical
  assignment error is applied by the measurement-discrimination unit
  (:mod:`repro.uarch.measurement`) so that the plant itself reports the
  physical outcome.

The plant enforces monotonic per-qubit time: an operation scheduled
before the previous one on the same qubit has finished indicates a
control bug (the paper inserts a 1 us wait after measurements precisely
to avoid this) and raises :class:`~repro.core.errors.PlantError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import NoiseModel
from repro.topology.chip import QuantumChipTopology


@dataclass(frozen=True)
class AppliedOperation:
    """Trace record of one operation the plant actually performed."""

    name: str
    qubits: tuple[int, ...]
    start_ns: float
    duration_ns: float


@dataclass(frozen=True)
class PlantSnapshot:
    """A frozen mid-shot plant state, restorable in O(dim^2).

    Used by the shot-replay engine to cache the (deterministic) state
    reached just before the first stochastic operation of a shot, so
    replayed shots skip re-evolving the whole deterministic prefix.
    """

    state: DensityMatrix
    qubit_free_at: dict[int, float]
    operations_log: tuple[AppliedOperation, ...]


class QuantumPlant:
    """Density-matrix model of the chip behind the ADI.

    Parameters
    ----------
    topology:
        Chip description; physical qubit addresses may be sparse (the
        two-qubit chip uses addresses 0 and 2) and are mapped to dense
        simulator indices internally.
    noise:
        The noise model; defaults to the calibrated paper-like model.
    rng:
        Random generator for measurement sampling.  Pass a seeded
        generator for reproducible shots.
    """

    def __init__(self, topology: QuantumChipTopology,
                 noise: NoiseModel | None = None,
                 rng: np.random.Generator | None = None):
        self.topology = topology
        self.noise = noise if noise is not None else NoiseModel()
        self.rng = rng if rng is not None else np.random.default_rng()
        self._index_of = {address: index
                          for index, address in enumerate(topology.qubits)}
        self.num_qubits = len(topology.qubits)
        self.state = DensityMatrix(self.num_qubits)
        self._qubit_free_at = {address: 0.0 for address in topology.qubits}
        self.operations_log: list[AppliedOperation] = []
        #: Optional hook called as ``observer(qubit, start_ns, p_one)``
        #: just before every projective collapse — the branch-resolved
        #: replay engine records the pre-collapse P(1) at each segment
        #: boundary through this.  Survives :meth:`reset_shot`.
        self.measure_observer = None

    # ------------------------------------------------------------------
    # Shot lifecycle
    # ------------------------------------------------------------------
    def reset_shot(self) -> None:
        """Return every qubit to |0> at time zero (start of a new shot)."""
        self.state = DensityMatrix(self.num_qubits)
        self._qubit_free_at = {address: 0.0
                               for address in self.topology.qubits}
        self.operations_log = []

    def snapshot(self) -> PlantSnapshot:
        """Capture the current state, busy times and operation log."""
        return PlantSnapshot(state=self.state.copy(),
                             qubit_free_at=dict(self._qubit_free_at),
                             operations_log=tuple(self.operations_log))

    def restore(self, snapshot: PlantSnapshot) -> None:
        """Return the plant to a previously captured snapshot.

        The snapshot itself is never aliased: the state is copied on
        both capture and restore, so one snapshot can seed arbitrarily
        many replayed shots.
        """
        self.state = snapshot.state.copy()
        self._qubit_free_at = dict(snapshot.qubit_free_at)
        self.operations_log = list(snapshot.operations_log)

    def qubit_index(self, address: int) -> int:
        """Dense simulator index for a physical qubit address."""
        try:
            return self._index_of[address]
        except KeyError:
            raise PlantError(
                f"qubit address {address} not on chip {self.topology.name}")

    # ------------------------------------------------------------------
    # Idling
    # ------------------------------------------------------------------
    def _advance_qubit(self, address: int, to_time_ns: float) -> None:
        """Apply idle decoherence to one qubit up to ``to_time_ns``."""
        free_at = self._qubit_free_at[address]
        if to_time_ns < free_at - 1e-9:
            raise PlantError(
                f"operation on qubit {address} at t={to_time_ns} ns "
                f"overlaps previous operation ending at {free_at} ns")
        idle = max(to_time_ns - free_at, 0.0)
        if idle > 0:
            kraus = self.noise.decoherence.idle_channel(idle)
            self.state.apply_channel(kraus, (self.qubit_index(address),))

    def idle_all_until(self, time_ns: float) -> None:
        """Idle every qubit up to ``time_ns`` (end-of-program flush)."""
        for address in self.topology.qubits:
            if time_ns > self._qubit_free_at[address]:
                self._advance_qubit(address, time_ns)
                self._qubit_free_at[address] = time_ns

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def apply_unitary(self, name: str, unitary: np.ndarray,
                      qubits: tuple[int, ...], start_ns: float,
                      duration_ns: float,
                      apply_gate_error: bool = True) -> None:
        """Apply a named unitary on physical qubit addresses at a time.

        The qubits are first idled (decohered) up to ``start_ns``; the
        gate is applied instantaneously at its start time and the qubits
        are marked busy until ``start_ns + duration_ns``.
        """
        if not qubits:
            raise PlantError(f"operation {name} has no target qubits")
        for address in qubits:
            self._advance_qubit(address, start_ns)
        indices = tuple(self.qubit_index(address) for address in qubits)
        self.state.apply_gate(np.asarray(unitary, dtype=complex), indices)
        if apply_gate_error:
            channel = self.noise.gate_error.channel_for(len(qubits))
            self.state.apply_channel(channel, indices)
        for address in qubits:
            self._qubit_free_at[address] = start_ns + duration_ns
        self.operations_log.append(
            AppliedOperation(name=name, qubits=qubits, start_ns=start_ns,
                             duration_ns=duration_ns))

    def measure(self, qubit: int, start_ns: float,
                duration_ns: float, forced: int | None = None) -> int:
        """Projective z-measurement of a physical qubit.

        Returns the *physical* outcome (no assignment error); the
        measurement-discrimination unit applies the classical readout
        flip.  The qubit is busy for the full measurement duration.

        ``forced`` collapses the state onto a caller-chosen outcome
        instead of sampling — the branch-resolved replay engine uses it
        to re-run an interpreter shot along an already-sampled outcome
        prefix (the forced outcome was itself drawn from this state's
        pre-collapse distribution, so the statistics stay exact).
        """
        self._advance_qubit(qubit, start_ns)
        index = self.qubit_index(qubit)
        if self.measure_observer is not None:
            self.measure_observer(qubit, start_ns,
                                  self.state.probability_one(index))
        if forced is None:
            result = self.state.measure(index, self.rng)
        else:
            self.state.collapse(index, forced)
            result = forced
        self._qubit_free_at[qubit] = start_ns + duration_ns
        self.operations_log.append(
            AppliedOperation(name="MEASZ", qubits=(qubit,),
                             start_ns=start_ns, duration_ns=duration_ns))
        return result

    # ------------------------------------------------------------------
    # Inspection helpers (used by experiments and tests)
    # ------------------------------------------------------------------
    def probability_one(self, qubit: int) -> float:
        """Ideal P(1) of a physical qubit in the current state."""
        return self.state.probability_one(self.qubit_index(qubit))

    def density_matrix(self) -> DensityMatrix:
        """Copy of the current joint state."""
        return self.state.copy()

    def qubit_free_at(self, qubit: int) -> float:
        """Time at which the qubit's last operation completes."""
        if qubit not in self._qubit_free_at:
            raise PlantError(f"qubit {qubit} not on chip")
        return self._qubit_free_at[qubit]
