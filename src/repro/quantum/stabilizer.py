"""Stabilizer-tableau plant backend (Gottesman–Knill / CHP).

The CC-Light instantiation of eQASM exists to run surface-code cycles:
an instruction mix of X/Y/Z/H/S/CZ, projective z-measurement and
Pauli-frame feedback.  Every one of those operations is Clifford, and a
Clifford+measurement circuit is simulated *exactly* in polynomial time
by tracking the stabilizer group of the state instead of its density
matrix (Gottesman's theorem; Aaronson & Gottesman's CHP tableau,
arXiv:quant-ph/0406196).

Representation: for ``n`` qubits the tableau holds ``2n`` rows of
binary symplectic vectors plus a phase bit.  Row ``i`` encodes the
Hermitian Pauli ``(-1)^{r_i} * prod_j i^{x_ij z_ij} X_j^{x_ij}
Z_j^{z_ij}`` — rows ``n..2n-1`` generate the stabilizer group of the
state, rows ``0..n-1`` the matching destabilizers (needed to make
deterministic measurements O(n^2) instead of exponential).

Storage is **bit-packed**: the 2n bits of each qubit column live in
``ceil(2n/64)`` uint64 words (:attr:`StabilizerTableau.xw` /
:attr:`~StabilizerTableau.zw`, shape ``(n, words)``; phases in
:attr:`~StabilizerTableau.rw`).  A gate update then touches only the
target columns, as a handful of word-wide AND/XOR minterm operations
over all 2n rows at once — instead of the boolean fancy-indexing of
the earlier uint8 layout, which materialised three 2n-length index
arrays per gate.  Up to 64 qubits a column is a *single* word and the
update runs on plain Python integers (CPython's arbitrary-precision
ints are word arrays under the hood, so the same word-wide semantics
hold for wider chips with zero numpy per-op overhead).  The canonical
unpacked image (:meth:`~StabilizerTableau.x_bits` etc.) is what
snapshot digests hash, so digests are a function of the generators,
not of the packing.

Gate application does **not** hard-code per-gate update rules.  Instead
the symplectic action of any configured unitary is *derived
numerically* once per operation (:func:`clifford_action_of`): conjugate
every k-qubit Hermitian Pauli by the unitary and decompose the result
in the Pauli basis.  If every image is again ``±`` a Pauli, the gate is
Clifford and the resulting 4^k-entry lookup table updates all 2n rows;
otherwise the gate is not Clifford and the caller must fall back to
the dense backend.  This keeps the backend faithful to eQASM's
defining feature — the operation set is *configured*, not fixed — any
user-registered Clifford pulse works without touching this module.

Noise: depolarizing gate error is a uniform Pauli mixture, so the
backend realises it as a *sampled Pauli injection* per gate (the
standard Pauli-trajectory unravelling — exact in distribution over
shots).  Idle T1/T2 decoherence is not a Pauli channel; the backend
refuses it, and the machine's backend selection keeps such noise
models on the dense backend.  Readout assignment error is classical
and lives in the measurement-discrimination unit, untouched.

The backend also exports the hooks the Pauli-frame batched engine
(:mod:`repro.quantum.pauli_frame`) records its reference shot through:
setting :attr:`StabilizerBackend.frame_recorder` turns one shot into a
noise-free reference run whose Clifford sequence, gate-error sites and
measurement structure the recorder captures for vectorised multi-shot
frame propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.backend import PlantBackend
from repro.quantum.noise import DecoherenceModel, GateErrorModel

#: Single-qubit Hermitian Paulis indexed by ``v = x + 2z``:
#: I(00), X(10), Z(01), Y(11) = i X Z.
_PAULI_BY_V = [
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
]

#: Tolerance for the numerical Clifford decomposition.
_ATOL = 1e-9


@dataclass(frozen=True)
class CliffordAction:
    """The symplectic action of one k-qubit Clifford unitary.

    ``bits[v]`` is the Pauli index of ``U P_v U^dag`` and ``sign[v]``
    its sign bit, where ``v`` packs the target qubits' (x, z) bits two
    per qubit — qubit 0 of the gate (the MSB of its matrix basis) in
    bits 0-1, qubit 1 in bits 2-3.
    """

    num_qubits: int
    bits: np.ndarray   # uint8, shape (4**k,)
    sign: np.ndarray   # uint8, shape (4**k,)


def _pauli_matrix(v: int, k: int) -> np.ndarray:
    """The Hermitian Pauli with packed index ``v`` on ``k`` qubits."""
    matrix = _PAULI_BY_V[v & 3]
    for qubit in range(1, k):
        matrix = np.kron(matrix, _PAULI_BY_V[(v >> (2 * qubit)) & 3])
    return matrix


def clifford_action_of(unitary: np.ndarray) -> CliffordAction | None:
    """Derive a unitary's tableau update table, or None if not Clifford.

    Conjugates each of the 4^k Hermitian Paulis by the unitary and
    decomposes the image in the Pauli basis; the gate is Clifford
    exactly when every image is ``±1`` times a single Pauli.  The
    result is independent of the unitary's global phase, so any
    phase-equivalent matrix yields the same action.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        return None
    dim = unitary.shape[0]
    if dim not in (2, 4):
        return None
    k = 1 if dim == 2 else 2
    bits = np.zeros(4 ** k, dtype=np.uint8)
    sign = np.zeros(4 ** k, dtype=np.uint8)
    adjoint = unitary.conj().T
    for v in range(1, 4 ** k):
        image = unitary @ _pauli_matrix(v, k) @ adjoint
        found = False
        for w in range(4 ** k):
            coefficient = np.trace(_pauli_matrix(w, k) @ image) / dim
            if abs(coefficient) < _ATOL:
                continue
            if abs(coefficient - 1.0) < _ATOL:
                bits[v], sign[v] = w, 0
            elif abs(coefficient + 1.0) < _ATOL:
                bits[v], sign[v] = w, 1
            else:
                return None          # a genuine Pauli mixture: not Clifford
            found = True
            break
        if not found:
            return None
    return CliffordAction(num_qubits=k, bits=bits, sign=sign)


_ACTION_CACHE: dict[bytes, CliffordAction | None] = {}


def cached_clifford_action(unitary: np.ndarray) -> CliffordAction | None:
    """Memoised :func:`clifford_action_of`, keyed by the matrix bytes.

    Gate matrices are tiny (at most 4x4), so the byte image is both an
    exact key and cheap; repeated static backend-selection passes and
    per-trigger gate applications share one derivation per distinct
    matrix.
    """
    unitary = np.ascontiguousarray(unitary, dtype=complex)
    key = unitary.tobytes()
    if key not in _ACTION_CACHE:
        _ACTION_CACHE[key] = clifford_action_of(unitary)
    return _ACTION_CACHE[key]


def is_clifford(unitary: np.ndarray) -> bool:
    """Whether a 1- or 2-qubit unitary is a Clifford operation."""
    return cached_clifford_action(unitary) is not None


class StabilizerTableau:
    """An ``n``-qubit stabilizer state as a bit-packed CHP tableau.

    The 2n rows (destabilizers then stabilizers) are packed along the
    row axis: for each qubit column ``q``, ``xw[q]`` / ``zw[q]`` hold
    the column's 2n symplectic bits in uint64 words (bit ``i`` of word
    ``i // 64`` is row ``i``); ``rw`` packs the 2n phase bits the same
    way.  Gate application, Pauli injection and phase flips are then
    word-wide boolean algebra over whole columns; the rowsum paths of
    measurement extract individual rows as n-vectors when they need
    the Aaronson–Gottesman i-exponent arithmetic.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise PlantError("need at least one qubit")
        self.num_qubits = num_qubits
        n = num_qubits
        self._rows = 2 * n
        self._words = (self._rows + 63) // 64
        #: Packed symplectic bits, shape (n, words): ``xw[q]`` is the
        #: X column of qubit q over all 2n rows.
        self.xw = np.zeros((n, self._words), dtype=np.uint64)
        self.zw = np.zeros((n, self._words), dtype=np.uint64)
        #: Packed phase bits r_i over the 2n rows.
        self.rw = np.zeros(self._words, dtype=np.uint64)
        self._identity_init()

    def _identity_init(self) -> None:
        n = self.num_qubits
        for q in range(n):
            self.xw[q, q >> 6] |= np.uint64(1) << np.uint64(q & 63)
            row = n + q
            self.zw[q, row >> 6] |= np.uint64(1) << np.uint64(row & 63)

    def reset(self) -> None:
        """Return to ``|0...0>``."""
        self.xw[:] = 0
        self.zw[:] = 0
        self.rw[:] = 0
        self._identity_init()

    def copy(self) -> "StabilizerTableau":
        clone = StabilizerTableau.__new__(StabilizerTableau)
        clone.num_qubits = self.num_qubits
        clone._rows = self._rows
        clone._words = self._words
        clone.xw = self.xw.copy()
        clone.zw = self.zw.copy()
        clone.rw = self.rw.copy()
        return clone

    # ------------------------------------------------------------------
    # Packed-word access helpers
    # ------------------------------------------------------------------
    def _col_int(self, arr: np.ndarray, q: int) -> int:
        """One packed column as a single Python integer (2n bits)."""
        if self._words == 1:
            return int(arr[q, 0])
        return int.from_bytes(arr[q].tobytes(), "little")

    def _set_col_int(self, arr: np.ndarray, q: int, value: int) -> None:
        if self._words == 1:
            arr[q, 0] = value
        else:
            arr[q] = np.frombuffer(
                value.to_bytes(self._words * 8, "little"), dtype=np.uint64)

    def _r_int(self) -> int:
        if self._words == 1:
            return int(self.rw[0])
        return int.from_bytes(self.rw.tobytes(), "little")

    def _xor_r(self, flips: int) -> None:
        if not flips:
            return
        if self._words == 1:
            self.rw[0] ^= np.uint64(flips)
        else:
            self.rw ^= np.frombuffer(
                flips.to_bytes(self._words * 8, "little"), dtype=np.uint64)

    def _r_bit(self, row: int) -> int:
        return int(self.rw[row >> 6] >> np.uint64(row & 63)) & 1

    def _set_r_bit(self, row: int, value: int) -> None:
        mask = np.uint64(1) << np.uint64(row & 63)
        if value:
            self.rw[row >> 6] |= mask
        else:
            self.rw[row >> 6] &= ~mask

    def _row_bits(self, arr: np.ndarray, row: int) -> np.ndarray:
        """One tableau row across all n columns as an int8 0/1 vector."""
        return ((arr[:, row >> 6] >> np.uint64(row & 63)) &
                np.uint64(1)).astype(np.int8)

    # ------------------------------------------------------------------
    # Clifford evolution
    # ------------------------------------------------------------------
    def apply(self, action: CliffordAction,
              qubits: tuple[int, ...]) -> None:
        """Conjugate every row by the gate via its action table.

        The update is the minterm expansion of the action table in
        word-wide boolean algebra: each of the ``4^k - 1`` non-identity
        input values ``v`` selects the rows currently carrying that
        Pauli on the target qubits (an AND of column literals), and
        XOR/ORs them into the output columns and the phase word that
        ``bits[v]`` / ``sign[v]`` prescribe.
        """
        if len(qubits) != action.num_qubits:
            raise PlantError(
                f"action on {action.num_qubits} qubit(s) applied to "
                f"{len(qubits)}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PlantError(f"qubit {qubit} out of range")
        bits = action.bits
        sign = action.sign
        if len(qubits) == 1:
            a = qubits[0]
            xa = self._col_int(self.xw, a)
            za = self._col_int(self.zw, a)
            # Minterms of (x, z) indexed by v = x + 2z; v=0 maps I->I
            # and never contributes, so it is skipped.
            minterms = (0, xa & ~za, ~xa & za, xa & za)
            new_x = new_z = flips = 0
            for v in (1, 2, 3):
                term = minterms[v]
                if not term:
                    continue
                image = bits[v]
                if image & 1:
                    new_x |= term
                if image & 2:
                    new_z |= term
                if sign[v]:
                    flips ^= term
            self._set_col_int(self.xw, a, new_x)
            self._set_col_int(self.zw, a, new_z)
            self._xor_r(flips)
        else:
            a, b = qubits
            if a == b:
                raise PlantError(f"duplicate qubits in {qubits}")
            xa = self._col_int(self.xw, a)
            za = self._col_int(self.zw, a)
            xb = self._col_int(self.xw, b)
            zb = self._col_int(self.zw, b)
            full = (1 << self._rows) - 1
            ta = (full & ~xa & ~za, xa & ~za, ~xa & za, xa & za)
            tb = (full & ~xb & ~zb, xb & ~zb, ~xb & zb, xb & zb)
            new_xa = new_za = new_xb = new_zb = flips = 0
            for v in range(1, 16):
                term = ta[v & 3] & tb[v >> 2]
                if not term:
                    continue
                image = bits[v]
                if image & 1:
                    new_xa |= term
                if image & 2:
                    new_za |= term
                if image & 4:
                    new_xb |= term
                if image & 8:
                    new_zb |= term
                if sign[v]:
                    flips ^= term
            self._set_col_int(self.xw, a, new_xa)
            self._set_col_int(self.zw, a, new_za)
            self._set_col_int(self.xw, b, new_xb)
            self._set_col_int(self.zw, b, new_zb)
            self._xor_r(flips)

    def apply_pauli(self, v: int, qubits: tuple[int, ...]) -> None:
        """Apply a Pauli error (packed index ``v`` as in the action
        tables): each row's phase flips iff it anticommutes with it."""
        flips = 0
        for slot, qubit in enumerate(qubits):
            if (v >> (2 * slot)) & 1:                  # X component
                flips ^= self._col_int(self.zw, qubit)
            if (v >> (2 * slot + 1)) & 1:              # Z component
                flips ^= self._col_int(self.xw, qubit)
        self._xor_r(flips)

    # ------------------------------------------------------------------
    # Row products (Aaronson–Gottesman "rowsum")
    # ------------------------------------------------------------------
    def _phase_exponent(self, x1, z1, x2, z2) -> int:
        """Sum over qubits of the i-exponent g(x1, z1, x2, z2) when the
        Pauli (x1, z1) is multiplied by (x2, z2) (A–G eq. for rowsum)."""
        g = np.where(
            (x1 == 1) & (z1 == 1), z2 - x2,
            np.where((x1 == 1) & (z1 == 0), z2 * (2 * x2 - 1),
                     np.where((x1 == 0) & (z1 == 1), x2 * (1 - 2 * z2),
                              0)))
        return int(g.sum())

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row i * row h (the stabilizer-group product)."""
        xi = self._row_bits(self.xw, i)
        zi = self._row_bits(self.zw, i)
        xh = self._row_bits(self.xw, h)
        zh = self._row_bits(self.zw, h)
        total = (2 * self._r_bit(h) + 2 * self._r_bit(i) +
                 self._phase_exponent(xi, zi, xh, zh))
        self._set_r_bit(h, (total % 4) // 2)
        shift_i = np.uint64(i & 63)
        shift_h = np.uint64(h & 63)
        one = np.uint64(1)
        src_x = (self.xw[:, i >> 6] >> shift_i) & one
        src_z = (self.zw[:, i >> 6] >> shift_i) & one
        self.xw[:, h >> 6] ^= src_x << shift_h
        self.zw[:, h >> 6] ^= src_z << shift_h

    def _deterministic_outcome(self, a: int) -> int:
        """Outcome of measuring qubit ``a`` when no stabilizer
        anticommutes with Z_a: multiply out the stabilizer rows whose
        destabilizer partners anticommute and read the product's sign."""
        n = self.num_qubits
        sx = np.zeros(n, dtype=np.int8)
        sz = np.zeros(n, dtype=np.int8)
        total = 0
        remaining = self._col_int(self.xw, a) & ((1 << n) - 1)
        while remaining:
            i = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            row = i + n
            xr = self._row_bits(self.xw, row)
            zr = self._row_bits(self.zw, row)
            total += (2 * self._r_bit(row) +
                      self._phase_exponent(xr, zr, sx, sz))
            sx ^= xr
            sz ^= zr
        return (total % 4) // 2

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def probability_one(self, a: int) -> float:
        """Pre-collapse P(1): 0.5 when some stabilizer anticommutes
        with Z_a (random outcome), else exactly 0.0 or 1.0."""
        if not 0 <= a < self.num_qubits:
            raise PlantError(f"qubit {a} out of range")
        if self._col_int(self.xw, a) >> self.num_qubits:
            return 0.5
        return float(self._deterministic_outcome(a))

    def pivot_stabilizer(self, a: int) -> int | None:
        """Row index of the first stabilizer anticommuting with Z_a,
        or None when the measurement of ``a`` is deterministic.  This
        is the row :meth:`collapse` pivots on; the Pauli-frame engine
        records it (:meth:`row_paulis`) as the frame correction that
        maps one random-measurement branch onto the other."""
        stab = self._col_int(self.xw, a) >> self.num_qubits
        if not stab:
            return None
        return self.num_qubits + (stab & -stab).bit_length() - 1

    def row_paulis(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """One row's (x, z) bits as uint8 n-vectors (sign excluded)."""
        if not 0 <= row < self._rows:
            raise PlantError(f"row {row} out of range")
        return (self._row_bits(self.xw, row).astype(np.uint8),
                self._row_bits(self.zw, row).astype(np.uint8))

    def collapse(self, a: int, result: int) -> None:
        """Project qubit ``a`` onto ``result`` (raises on probability 0)."""
        if result not in (0, 1):
            raise PlantError(f"result {result} is not a bit")
        if not 0 <= a < self.num_qubits:
            raise PlantError(f"qubit {a} out of range")
        n = self.num_qubits
        column = self._col_int(self.xw, a)
        if not column >> n:
            if self._deterministic_outcome(a) != result:
                raise PlantError(
                    f"collapse of qubit {a} to {result} has probability 0")
            return
        p = self.pivot_stabilizer(a)
        remaining = column & ~(1 << p)
        while remaining:
            h = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            self._rowsum(h, p)
        # The old stabilizer becomes the new destabilizer; the new
        # stabilizer is (+/-) Z_a with the chosen outcome as its sign.
        self._copy_row(p, p - n)
        self._clear_row(p)
        self.zw[a, p >> 6] |= np.uint64(1) << np.uint64(p & 63)
        self._set_r_bit(p, result)

    def _copy_row(self, src: int, dst: int) -> None:
        one = np.uint64(1)
        shift_s = np.uint64(src & 63)
        shift_d = np.uint64(dst & 63)
        keep = ~(one << shift_d)
        for arr in (self.xw, self.zw):
            bit = (arr[:, src >> 6] >> shift_s) & one
            arr[:, dst >> 6] = (arr[:, dst >> 6] & keep) | (bit << shift_d)
        self._set_r_bit(dst, self._r_bit(src))

    def _clear_row(self, row: int) -> None:
        keep = ~(np.uint64(1) << np.uint64(row & 63))
        self.xw[:, row >> 6] &= keep
        self.zw[:, row >> 6] &= keep
        self._set_r_bit(row, 0)

    def measure(self, a: int, rng: np.random.Generator) -> int:
        """Sample a projective z-measurement and collapse the state."""
        p_one = self.probability_one(a)
        if p_one == 0.5:
            result = 1 if rng.random() < 0.5 else 0
        else:
            result = int(p_one)
        self.collapse(a, result)
        return result

    # ------------------------------------------------------------------
    # Canonical unpacked image (tests / digests / debugging)
    # ------------------------------------------------------------------
    def _unpack(self, arr: np.ndarray) -> np.ndarray:
        """Unpack a (n, words) column array to (2n, n) uint8 bits —
        the pre-packing row-major layout, which is the *canonical*
        image: snapshot digests hash it so the digest-of-state
        contract (same generators => same digest) is independent of
        the word packing."""
        shifts = np.arange(64, dtype=np.uint64)
        bits = (arr[:, :, None] >> shifts) & np.uint64(1)
        flat = bits.reshape(self.num_qubits, self._words * 64)
        return np.ascontiguousarray(
            flat[:, :self._rows].T.astype(np.uint8))

    def x_bits(self) -> np.ndarray:
        """The X bits as a canonical (2n, n) uint8 array."""
        return self._unpack(self.xw)

    def z_bits(self) -> np.ndarray:
        """The Z bits as a canonical (2n, n) uint8 array."""
        return self._unpack(self.zw)

    def r_bits(self) -> np.ndarray:
        """The phase bits as a canonical (2n,) uint8 vector."""
        shifts = np.arange(64, dtype=np.uint64)
        bits = (self.rw[:, None] >> shifts) & np.uint64(1)
        return np.ascontiguousarray(
            bits.reshape(self._words * 64)[:self._rows].astype(np.uint8))

    # ------------------------------------------------------------------
    # Inspection (tests / debugging)
    # ------------------------------------------------------------------
    def stabilizer_strings(self) -> list[str]:
        """The stabilizer generators as signed Pauli strings."""
        letters = {0: "I", 1: "X", 2: "Z", 3: "Y"}
        x = self.x_bits()
        z = self.z_bits()
        r = self.r_bits()
        out = []
        n = self.num_qubits
        for row in range(n, 2 * n):
            body = "".join(
                letters[int(x[row, q]) | (int(z[row, q]) << 1)]
                for q in range(n))
            out.append(("-" if r[row] else "+") + body)
        return out


class StabilizerBackend(PlantBackend):
    """The Gottesman–Knill plant backend.

    Restricted by construction: gates must be Clifford (the action is
    derived from the configured unitary; a non-Clifford gate raises —
    the machine's static backend selection prevents this at run
    granularity) and noise must be Pauli/readout-only (depolarizing
    gate error becomes a sampled Pauli injection; idle T1/T2
    decoherence is refused).  Within that domain it is exact *per
    trajectory* and exact in distribution over shots, at polynomial
    cost — surface-code-scale chips run where the dense backend cannot
    allocate its matrix.

    Setting :attr:`frame_recorder` (a
    :class:`repro.quantum.pauli_frame.FrameRecorder`) turns the next
    shot into the Pauli-frame engine's *reference* run: gates and
    measurements are recorded, and stochastic gate error is *deferred*
    to the batched frames instead of being sampled here — the
    reference trajectory must be noise-free for the frames to carry
    the noise exactly.
    """

    kind = "stabilizer"

    def __init__(self, num_qubits: int):
        super().__init__(num_qubits)
        self.tableau = StabilizerTableau(num_qubits)
        #: When set, this shot is a Pauli-frame reference run — see
        #: the class docstring.  Cleared by the machine in a finally.
        self.frame_recorder = None

    def reset(self) -> None:
        self.tableau.reset()

    def snapshot(self) -> StabilizerTableau:
        return self.tableau.copy()

    def restore(self, snapshot: StabilizerTableau) -> None:
        self.tableau = snapshot.copy()

    def apply_gate(self, name: str, unitary: np.ndarray,
                   indices: tuple[int, ...]) -> None:
        action = cached_clifford_action(unitary)
        if action is None:
            raise PlantError(
                f"operation {name!r} is not Clifford; the stabilizer "
                f"backend cannot apply it (select the dense backend)")
        self.tableau.apply(action, indices)
        if self.frame_recorder is not None:
            self.frame_recorder.record_gate(action, indices)

    def apply_gate_error(self, indices: tuple[int, ...],
                         gate_error: GateErrorModel,
                         rng: np.random.Generator) -> None:
        """Depolarizing error as a sampled uniform non-identity Pauli.

        Exactly unravels the dense backend's Kraus channel: with
        probability ``p`` one of the ``4^k - 1`` non-identity Paulis is
        injected, so the distribution over shots matches the channel.
        During a Pauli-frame reference shot the injection is *recorded
        instead of sampled* — the batched frames sample it per shot.
        """
        k = len(indices)
        if k == 1:
            p = gate_error.single_qubit_error
        elif k == 2:
            p = gate_error.two_qubit_error
        else:
            raise PlantError("only 1- and 2-qubit gates are supported")
        if p == 0.0:
            return
        if self.frame_recorder is not None:
            self.frame_recorder.record_gate_error(indices, p)
            return
        if rng.random() < p:
            v = int(rng.integers(1, 4 ** k))
            self.tableau.apply_pauli(v, indices)

    def apply_idle(self, index: int, duration_ns: float,
                   decoherence: DecoherenceModel) -> None:
        if duration_ns == 0.0 or decoherence.is_negligible:
            return
        raise PlantError(
            "idle T1/T2 decoherence is not a Pauli channel; the "
            "stabilizer backend cannot apply it (select the dense "
            "backend)")

    def probability_one(self, index: int) -> float:
        return self.tableau.probability_one(index)

    def measure(self, index: int, rng: np.random.Generator) -> int:
        if self.frame_recorder is not None:
            return self.frame_recorder.record_measurement(
                self.tableau, index, rng)
        return self.tableau.measure(index, rng)

    def collapse(self, index: int, result: int) -> None:
        self.tableau.collapse(index, result)

    @classmethod
    def estimate_bytes(cls, num_qubits: int) -> int:
        # Two (n x words) uint64 column arrays plus the packed phases.
        words = (2 * num_qubits + 63) // 64
        return 16 * num_qubits * words + 8 * words

    def state_digest(self, snapshot: StabilizerTableau) -> int:
        # Hash the canonical unpacked image, not the word layout: the
        # digest is a function of the generators alone, so it survives
        # any repacking of the same state.
        return hash((snapshot.x_bits().tobytes(),
                     snapshot.z_bits().tobytes(),
                     snapshot.r_bits().tobytes()))

    def corrupt_snapshot(self, snapshot: StabilizerTableau,
                         rng: np.random.Generator) -> None:
        row = int(rng.integers(2 * snapshot.num_qubits))
        column = int(rng.integers(snapshot.num_qubits))
        snapshot.xw[column, row >> 6] ^= \
            np.uint64(1) << np.uint64(row & 63)


# Register with the plant's backend table ("stabilizer" resolves here).
from repro.quantum.plant import QuantumPlant  # noqa: E402

QuantumPlant.BACKENDS[StabilizerBackend.kind] = StabilizerBackend
