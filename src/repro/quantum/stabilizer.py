"""Stabilizer-tableau plant backend (Gottesman–Knill / CHP).

The CC-Light instantiation of eQASM exists to run surface-code cycles:
an instruction mix of X/Y/Z/H/S/CZ, projective z-measurement and
Pauli-frame feedback.  Every one of those operations is Clifford, and a
Clifford+measurement circuit is simulated *exactly* in polynomial time
by tracking the stabilizer group of the state instead of its density
matrix (Gottesman's theorem; Aaronson & Gottesman's CHP tableau,
arXiv:quant-ph/0406196).

Representation: for ``n`` qubits the tableau holds ``2n`` rows of
binary symplectic vectors plus a phase bit.  Row ``i`` encodes the
Hermitian Pauli ``(-1)^{r_i} * prod_j i^{x_ij z_ij} X_j^{x_ij}
Z_j^{z_ij}`` — rows ``n..2n-1`` generate the stabilizer group of the
state, rows ``0..n-1`` the matching destabilizers (needed to make
deterministic measurements O(n^2) instead of exponential).

Gate application does **not** hard-code per-gate update rules.  Instead
the symplectic action of any configured unitary is *derived
numerically* once per operation (:func:`clifford_action_of`): conjugate
every k-qubit Hermitian Pauli by the unitary and decompose the result
in the Pauli basis.  If every image is again ``±`` a Pauli, the gate is
Clifford and the resulting 4^k-entry lookup table updates all 2n rows
with two fancy-indexing operations; otherwise the gate is not Clifford
and the caller must fall back to the dense backend.  This keeps the
backend faithful to eQASM's defining feature — the operation set is
*configured*, not fixed — any user-registered Clifford pulse works
without touching this module.

Noise: depolarizing gate error is a uniform Pauli mixture, so the
backend realises it as a *sampled Pauli injection* per gate (the
standard Pauli-trajectory unravelling — exact in distribution over
shots).  Idle T1/T2 decoherence is not a Pauli channel; the backend
refuses it, and the machine's backend selection keeps such noise
models on the dense backend.  Readout assignment error is classical
and lives in the measurement-discrimination unit, untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.backend import PlantBackend
from repro.quantum.noise import DecoherenceModel, GateErrorModel

#: Single-qubit Hermitian Paulis indexed by ``v = x + 2z``:
#: I(00), X(10), Z(01), Y(11) = i X Z.
_PAULI_BY_V = [
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
]

#: Tolerance for the numerical Clifford decomposition.
_ATOL = 1e-9


@dataclass(frozen=True)
class CliffordAction:
    """The symplectic action of one k-qubit Clifford unitary.

    ``bits[v]`` is the Pauli index of ``U P_v U^dag`` and ``sign[v]``
    its sign bit, where ``v`` packs the target qubits' (x, z) bits two
    per qubit — qubit 0 of the gate (the MSB of its matrix basis) in
    bits 0-1, qubit 1 in bits 2-3.
    """

    num_qubits: int
    bits: np.ndarray   # uint8, shape (4**k,)
    sign: np.ndarray   # uint8, shape (4**k,)


def _pauli_matrix(v: int, k: int) -> np.ndarray:
    """The Hermitian Pauli with packed index ``v`` on ``k`` qubits."""
    matrix = _PAULI_BY_V[v & 3]
    for qubit in range(1, k):
        matrix = np.kron(matrix, _PAULI_BY_V[(v >> (2 * qubit)) & 3])
    return matrix


def clifford_action_of(unitary: np.ndarray) -> CliffordAction | None:
    """Derive a unitary's tableau update table, or None if not Clifford.

    Conjugates each of the 4^k Hermitian Paulis by the unitary and
    decomposes the image in the Pauli basis; the gate is Clifford
    exactly when every image is ``±1`` times a single Pauli.  The
    result is independent of the unitary's global phase, so any
    phase-equivalent matrix yields the same action.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        return None
    dim = unitary.shape[0]
    if dim not in (2, 4):
        return None
    k = 1 if dim == 2 else 2
    bits = np.zeros(4 ** k, dtype=np.uint8)
    sign = np.zeros(4 ** k, dtype=np.uint8)
    adjoint = unitary.conj().T
    for v in range(1, 4 ** k):
        image = unitary @ _pauli_matrix(v, k) @ adjoint
        found = False
        for w in range(4 ** k):
            coefficient = np.trace(_pauli_matrix(w, k) @ image) / dim
            if abs(coefficient) < _ATOL:
                continue
            if abs(coefficient - 1.0) < _ATOL:
                bits[v], sign[v] = w, 0
            elif abs(coefficient + 1.0) < _ATOL:
                bits[v], sign[v] = w, 1
            else:
                return None          # a genuine Pauli mixture: not Clifford
            found = True
            break
        if not found:
            return None
    return CliffordAction(num_qubits=k, bits=bits, sign=sign)


_ACTION_CACHE: dict[bytes, CliffordAction | None] = {}


def cached_clifford_action(unitary: np.ndarray) -> CliffordAction | None:
    """Memoised :func:`clifford_action_of`, keyed by the matrix bytes.

    Gate matrices are tiny (at most 4x4), so the byte image is both an
    exact key and cheap; repeated static backend-selection passes and
    per-trigger gate applications share one derivation per distinct
    matrix.
    """
    unitary = np.ascontiguousarray(unitary, dtype=complex)
    key = unitary.tobytes()
    if key not in _ACTION_CACHE:
        _ACTION_CACHE[key] = clifford_action_of(unitary)
    return _ACTION_CACHE[key]


def is_clifford(unitary: np.ndarray) -> bool:
    """Whether a 1- or 2-qubit unitary is a Clifford operation."""
    return cached_clifford_action(unitary) is not None


class StabilizerTableau:
    """An ``n``-qubit stabilizer state as a CHP-style tableau.

    Columns are qubits, rows are Pauli generators (destabilizers then
    stabilizers); all arrays are uint8 0/1 so the per-gate updates and
    the row-product phase arithmetic vectorise over the 2n rows.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise PlantError("need at least one qubit")
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        self.x[np.arange(n), np.arange(n)] = 1          # destabilizers X_j
        self.z[np.arange(n, 2 * n), np.arange(n)] = 1   # stabilizers  Z_j

    def reset(self) -> None:
        """Return to ``|0...0>``."""
        n = self.num_qubits
        self.x[:] = 0
        self.z[:] = 0
        self.r[:] = 0
        self.x[np.arange(n), np.arange(n)] = 1
        self.z[np.arange(n, 2 * n), np.arange(n)] = 1

    def copy(self) -> "StabilizerTableau":
        clone = StabilizerTableau.__new__(StabilizerTableau)
        clone.num_qubits = self.num_qubits
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    # ------------------------------------------------------------------
    # Clifford evolution
    # ------------------------------------------------------------------
    def apply(self, action: CliffordAction,
              qubits: tuple[int, ...]) -> None:
        """Conjugate every row by the gate via its action table."""
        if len(qubits) != action.num_qubits:
            raise PlantError(
                f"action on {action.num_qubits} qubit(s) applied to "
                f"{len(qubits)}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PlantError(f"qubit {qubit} out of range")
        if len(qubits) == 1:
            a = qubits[0]
            v = self.x[:, a] | (self.z[:, a] << 1)
            image = action.bits[v]
            self.r ^= action.sign[v]
            self.x[:, a] = image & 1
            self.z[:, a] = (image >> 1) & 1
        else:
            a, b = qubits
            if a == b:
                raise PlantError(f"duplicate qubits in {qubits}")
            v = (self.x[:, a] | (self.z[:, a] << 1) |
                 (self.x[:, b] << 2) | (self.z[:, b] << 3))
            image = action.bits[v]
            self.r ^= action.sign[v]
            self.x[:, a] = image & 1
            self.z[:, a] = (image >> 1) & 1
            self.x[:, b] = (image >> 2) & 1
            self.z[:, b] = (image >> 3) & 1

    def apply_pauli(self, v: int, qubits: tuple[int, ...]) -> None:
        """Apply a Pauli error (packed index ``v`` as in the action
        tables): each row's phase flips iff it anticommutes with it."""
        anti = np.zeros(2 * self.num_qubits, dtype=np.uint8)
        for slot, qubit in enumerate(qubits):
            px = (v >> (2 * slot)) & 1
            pz = (v >> (2 * slot + 1)) & 1
            if px:
                anti ^= self.z[:, qubit]
            if pz:
                anti ^= self.x[:, qubit]
        self.r ^= anti

    # ------------------------------------------------------------------
    # Row products (Aaronson–Gottesman "rowsum")
    # ------------------------------------------------------------------
    def _phase_exponent(self, x1, z1, x2, z2) -> int:
        """Sum over qubits of the i-exponent g(x1, z1, x2, z2) when the
        Pauli (x1, z1) is multiplied by (x2, z2) (A–G eq. for rowsum)."""
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        g = np.where(
            (x1 == 1) & (z1 == 1), z2 - x2,
            np.where((x1 == 1) & (z1 == 0), z2 * (2 * x2 - 1),
                     np.where((x1 == 0) & (z1 == 1), x2 * (1 - 2 * z2),
                              0)))
        return int(g.sum())

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row i * row h (the stabilizer-group product)."""
        total = (2 * int(self.r[h]) + 2 * int(self.r[i]) +
                 self._phase_exponent(self.x[i], self.z[i],
                                      self.x[h], self.z[h]))
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def _deterministic_outcome(self, a: int) -> int:
        """Outcome of measuring qubit ``a`` when no stabilizer
        anticommutes with Z_a: multiply out the stabilizer rows whose
        destabilizer partners anticommute and read the product's sign."""
        n = self.num_qubits
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        total = 0
        for i in np.nonzero(self.x[:n, a])[0]:
            total += (2 * int(self.r[i + n]) +
                      self._phase_exponent(self.x[i + n], self.z[i + n],
                                           sx, sz))
            sx ^= self.x[i + n]
            sz ^= self.z[i + n]
        return (total % 4) // 2

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def probability_one(self, a: int) -> float:
        """Pre-collapse P(1): 0.5 when some stabilizer anticommutes
        with Z_a (random outcome), else exactly 0.0 or 1.0."""
        if not 0 <= a < self.num_qubits:
            raise PlantError(f"qubit {a} out of range")
        n = self.num_qubits
        if self.x[n:, a].any():
            return 0.5
        return float(self._deterministic_outcome(a))

    def collapse(self, a: int, result: int) -> None:
        """Project qubit ``a`` onto ``result`` (raises on probability 0)."""
        if result not in (0, 1):
            raise PlantError(f"result {result} is not a bit")
        if not 0 <= a < self.num_qubits:
            raise PlantError(f"qubit {a} out of range")
        n = self.num_qubits
        anticommuting = np.nonzero(self.x[n:, a])[0]
        if anticommuting.size == 0:
            if self._deterministic_outcome(a) != result:
                raise PlantError(
                    f"collapse of qubit {a} to {result} has probability 0")
            return
        p = int(anticommuting[0]) + n
        for h in np.nonzero(self.x[:, a])[0]:
            if h != p:
                self._rowsum(int(h), p)
        # The old stabilizer becomes the new destabilizer; the new
        # stabilizer is (+/-) Z_a with the chosen outcome as its sign.
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, a] = 1
        self.r[p] = result

    def measure(self, a: int, rng: np.random.Generator) -> int:
        """Sample a projective z-measurement and collapse the state."""
        p_one = self.probability_one(a)
        if p_one == 0.5:
            result = 1 if rng.random() < 0.5 else 0
        else:
            result = int(p_one)
        self.collapse(a, result)
        return result

    # ------------------------------------------------------------------
    # Inspection (tests / debugging)
    # ------------------------------------------------------------------
    def stabilizer_strings(self) -> list[str]:
        """The stabilizer generators as signed Pauli strings."""
        letters = {0: "I", 1: "X", 2: "Z", 3: "Y"}
        out = []
        n = self.num_qubits
        for row in range(n, 2 * n):
            body = "".join(
                letters[int(self.x[row, q]) | (int(self.z[row, q]) << 1)]
                for q in range(n))
            out.append(("-" if self.r[row] else "+") + body)
        return out


class StabilizerBackend(PlantBackend):
    """The Gottesman–Knill plant backend.

    Restricted by construction: gates must be Clifford (the action is
    derived from the configured unitary; a non-Clifford gate raises —
    the machine's static backend selection prevents this at run
    granularity) and noise must be Pauli/readout-only (depolarizing
    gate error becomes a sampled Pauli injection; idle T1/T2
    decoherence is refused).  Within that domain it is exact *per
    trajectory* and exact in distribution over shots, at polynomial
    cost — surface-code-scale chips run where the dense backend cannot
    allocate its matrix.
    """

    kind = "stabilizer"

    def __init__(self, num_qubits: int):
        super().__init__(num_qubits)
        self.tableau = StabilizerTableau(num_qubits)

    def reset(self) -> None:
        self.tableau.reset()

    def snapshot(self) -> StabilizerTableau:
        return self.tableau.copy()

    def restore(self, snapshot: StabilizerTableau) -> None:
        self.tableau = snapshot.copy()

    def apply_gate(self, name: str, unitary: np.ndarray,
                   indices: tuple[int, ...]) -> None:
        action = cached_clifford_action(unitary)
        if action is None:
            raise PlantError(
                f"operation {name!r} is not Clifford; the stabilizer "
                f"backend cannot apply it (select the dense backend)")
        self.tableau.apply(action, indices)

    def apply_gate_error(self, indices: tuple[int, ...],
                         gate_error: GateErrorModel,
                         rng: np.random.Generator) -> None:
        """Depolarizing error as a sampled uniform non-identity Pauli.

        Exactly unravels the dense backend's Kraus channel: with
        probability ``p`` one of the ``4^k - 1`` non-identity Paulis is
        injected, so the distribution over shots matches the channel.
        """
        k = len(indices)
        if k == 1:
            p = gate_error.single_qubit_error
        elif k == 2:
            p = gate_error.two_qubit_error
        else:
            raise PlantError("only 1- and 2-qubit gates are supported")
        if p == 0.0:
            return
        if rng.random() < p:
            v = int(rng.integers(1, 4 ** k))
            self.tableau.apply_pauli(v, indices)

    def apply_idle(self, index: int, duration_ns: float,
                   decoherence: DecoherenceModel) -> None:
        if duration_ns == 0.0 or decoherence.is_negligible:
            return
        raise PlantError(
            "idle T1/T2 decoherence is not a Pauli channel; the "
            "stabilizer backend cannot apply it (select the dense "
            "backend)")

    def probability_one(self, index: int) -> float:
        return self.tableau.probability_one(index)

    def measure(self, index: int, rng: np.random.Generator) -> int:
        return self.tableau.measure(index, rng)

    def collapse(self, index: int, result: int) -> None:
        self.tableau.collapse(index, result)

    @classmethod
    def estimate_bytes(cls, num_qubits: int) -> int:
        # Two (2n x n) uint8 arrays plus the 2n-entry phase vector.
        return 4 * num_qubits * num_qubits + 2 * num_qubits

    def state_digest(self, snapshot: StabilizerTableau) -> int:
        return hash((snapshot.x.tobytes(), snapshot.z.tobytes(),
                     snapshot.r.tobytes()))

    def corrupt_snapshot(self, snapshot: StabilizerTableau,
                         rng: np.random.Generator) -> None:
        row = int(rng.integers(snapshot.x.shape[0]))
        column = int(rng.integers(snapshot.x.shape[1]))
        snapshot.x[row, column] ^= 1


# Register with the plant's backend table ("stabilizer" resolves here).
from repro.quantum.plant import QuantumPlant  # noqa: E402

QuantumPlant.BACKENDS[StabilizerBackend.kind] = StabilizerBackend
