"""Pluggable plant backends: the state interface behind the ADI.

The plant (:mod:`repro.quantum.plant`) models the chip plus the analog
electronics; *how* the joint quantum state is represented is a separate
concern.  This module makes that concern explicit: a
:class:`PlantBackend` owns the state and answers exactly the operations
the plant's analog-digital interface needs —

* apply a named 1q/2q unitary,
* apply the noise model's per-gate error and per-qubit idle channel,
* report a pre-collapse ``P(1)``, sample or force a projective
  collapse,
* snapshot/restore the state in O(state size) (the replay engine's
  growth shots), and reset it to ``|0...0>``.

Two backends implement it:

* :class:`DenseBackend` — the exact density matrix with Kraus-channel
  noise (the default; handles any unitary and any noise model at
  O(4^n) cost per gate);
* :class:`~repro.quantum.stabilizer.StabilizerBackend` — a
  Gottesman–Knill binary symplectic tableau, restricted to Clifford
  gates and Pauli/readout-only noise but polynomial in the qubit
  count, which takes surface-code workloads past the density-matrix
  wall (a 17-qubit dense matrix would need ~256 GB; the tableau needs
  ~1 kB).

Backend selection is automatic per run: :class:`repro.uarch.machine.QuMAv2`
statically checks the loaded binary's operations and the noise model
(:meth:`QuMAv2.plant_backend_reasons`) and picks the tableau whenever
it is sound, reporting the choice in
:class:`~repro.uarch.replay.EngineStats` — see
:meth:`repro.quantum.plant.QuantumPlant.use_backend`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import DecoherenceModel, GateErrorModel


class PlantBackend(abc.ABC):
    """The state interface the plant's analog-digital interface needs.

    A backend owns an ``n``-qubit joint state (indices are *dense*
    simulator indices, 0-based; the plant maps sparse physical
    addresses onto them) — and nothing else.  Noise models and
    randomness are passed per call, so the plant remains the single
    owner of both (callers may swap ``plant.noise`` or ``plant.rng``
    between runs without stale copies surviving inside a backend).
    """

    #: Short identifier used in reports ("dense" / "stabilizer").
    kind: str = "?"

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits

    # -- lifecycle -----------------------------------------------------
    @abc.abstractmethod
    def reset(self) -> None:
        """Return the state to ``|0...0>``."""

    @abc.abstractmethod
    def snapshot(self) -> object:
        """An opaque, frozen copy of the current state."""

    @abc.abstractmethod
    def restore(self, snapshot: object) -> None:
        """Return to a previously captured snapshot (never aliased)."""

    # -- evolution -----------------------------------------------------
    @abc.abstractmethod
    def apply_gate(self, name: str, unitary: np.ndarray,
                   indices: tuple[int, ...]) -> None:
        """Apply a named k-qubit unitary (``indices[0]`` is the MSB of
        the unitary's own basis)."""

    @abc.abstractmethod
    def apply_gate_error(self, indices: tuple[int, ...],
                         gate_error: GateErrorModel,
                         rng: np.random.Generator) -> None:
        """Apply the model's intrinsic gate-error channel."""

    @abc.abstractmethod
    def apply_idle(self, index: int, duration_ns: float,
                   decoherence: DecoherenceModel) -> None:
        """Apply the model's idle-decoherence channel to one qubit."""

    # -- measurement ---------------------------------------------------
    @abc.abstractmethod
    def probability_one(self, index: int) -> float:
        """Pre-collapse P(1) of an ideal projective z-measurement."""

    @abc.abstractmethod
    def measure(self, index: int, rng: np.random.Generator) -> int:
        """Sample a projective z-measurement and collapse the state."""

    @abc.abstractmethod
    def collapse(self, index: int, result: int) -> None:
        """Project one qubit onto ``result`` (raises on probability 0)."""

    # -- inspection ----------------------------------------------------
    def density_matrix(self) -> DensityMatrix:
        """The joint state as a density matrix, when representable."""
        raise PlantError(
            f"the {self.kind} backend does not expose a density matrix")

    # -- integrity (runtime guards + fault injection) ------------------
    @classmethod
    def estimate_bytes(cls, num_qubits: int) -> int:
        """Approximate memory this backend needs for ``num_qubits``.

        Admission control compares the estimate against the plant's
        memory budget *before* constructing the backend, so an
        impossible request fails fast with the number instead of
        OOM-ing mid-allocation.
        """
        return 0

    def state_digest(self, snapshot: object) -> int | None:
        """Cheap integrity token for a snapshot (None: not supported).

        :meth:`QuantumPlant.restore` re-digests the stored snapshot
        and refuses to load state whose token no longer matches —
        corruption of a stored snapshot becomes a structured
        :class:`~repro.core.errors.BackendFaultError` instead of a
        silently wrong state.
        """
        return None

    def corrupt_snapshot(self, snapshot: object,
                         rng: np.random.Generator) -> None:
        """Tamper a snapshot in place (``snapshot_corrupt`` fault
        injection); a no-op for backends without a digest."""


class DenseBackend(PlantBackend):
    """The exact density-matrix backend (the historical plant state).

    Supports arbitrary unitaries and the full Kraus-channel noise
    model; cost is O(4^n) per gate, which caps practical use at the
    seven-qubit chip.
    """

    kind = "dense"

    def __init__(self, num_qubits: int):
        super().__init__(num_qubits)
        self.state = DensityMatrix(num_qubits)

    def reset(self) -> None:
        self.state = DensityMatrix(self.num_qubits)

    def snapshot(self) -> DensityMatrix:
        return self.state.copy()

    def restore(self, snapshot: DensityMatrix) -> None:
        self.state = snapshot.copy()

    def apply_gate(self, name: str, unitary: np.ndarray,
                   indices: tuple[int, ...]) -> None:
        self.state.apply_gate(np.asarray(unitary, dtype=complex), indices)

    def apply_gate_error(self, indices: tuple[int, ...],
                         gate_error: GateErrorModel,
                         rng: np.random.Generator) -> None:
        channel = gate_error.channel_for(len(indices))
        self.state.apply_channel(channel, indices)

    def apply_idle(self, index: int, duration_ns: float,
                   decoherence: DecoherenceModel) -> None:
        kraus = decoherence.idle_channel(duration_ns)
        self.state.apply_channel(kraus, (index,))

    def probability_one(self, index: int) -> float:
        return self.state.probability_one(index)

    def measure(self, index: int, rng: np.random.Generator) -> int:
        return self.state.measure(index, rng)

    def collapse(self, index: int, result: int) -> None:
        self.state.collapse(index, result)

    def density_matrix(self) -> DensityMatrix:
        return self.state.copy()

    @classmethod
    def estimate_bytes(cls, num_qubits: int) -> int:
        # One complex128 (16-byte) entry per element of the
        # 2^n x 2^n density matrix.
        return 16 * 4 ** num_qubits

    def state_digest(self, snapshot: DensityMatrix) -> int:
        return hash(snapshot.matrix.tobytes())

    def corrupt_snapshot(self, snapshot: DensityMatrix,
                         rng: np.random.Generator) -> None:
        dim = 1 << snapshot.num_qubits
        row = int(rng.integers(dim))
        snapshot._matrix[row, row] += 0.125
