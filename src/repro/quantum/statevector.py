"""Pure-state (statevector) simulator.

Used where noise is irrelevant: verifying that compiled circuits
implement the intended unitary (Grover square root, Ising model,
Clifford inversion in randomized benchmarking) and computing ideal
reference curves (the AllXY staircase).

Qubit index convention: qubit 0 is the most significant bit of the
computational basis index, i.e. for ``n`` qubits, basis state
``|q0 q1 ... q(n-1)>`` has index ``q0 * 2**(n-1) + ... + q(n-1)``.
The same convention is used by :mod:`repro.quantum.density_matrix`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import PlantError


class Statevector:
    """An ``n``-qubit pure state with gate application and measurement."""

    def __init__(self, num_qubits: int,
                 amplitudes: np.ndarray | None = None):
        if num_qubits < 1:
            raise PlantError("need at least one qubit")
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if amplitudes is None:
            self._amplitudes = np.zeros(dim, dtype=complex)
            self._amplitudes[0] = 1.0
        else:
            amplitudes = np.asarray(amplitudes, dtype=complex).ravel()
            if amplitudes.shape != (dim,):
                raise PlantError(
                    f"amplitude vector has shape {amplitudes.shape}, "
                    f"expected ({dim},)")
            norm = np.linalg.norm(amplitudes)
            if not math.isclose(norm, 1.0, abs_tol=1e-9):
                raise PlantError(f"state not normalised (norm {norm})")
            self._amplitudes = amplitudes.copy()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def amplitudes(self) -> np.ndarray:
        """A copy of the amplitude vector."""
        return self._amplitudes.copy()

    @property
    def amplitudes_view(self) -> np.ndarray:
        """A read-only view of the amplitude vector (no copy).

        Hot paths (fidelity, tomography, density-matrix construction)
        should prefer this over :attr:`amplitudes`; the view is
        invalidated by the next gate application.
        """
        view = self._amplitudes.view()
        view.flags.writeable = False
        return view

    def probability(self, basis_state: int) -> float:
        """Probability of measuring the given computational basis state."""
        return float(abs(self._amplitudes[basis_state]) ** 2)

    def probabilities(self) -> np.ndarray:
        """Probabilities over all computational basis states."""
        return np.abs(self._amplitudes) ** 2

    def copy(self) -> "Statevector":
        """An independent copy of this state."""
        return Statevector(self.num_qubits, self._amplitudes)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_gate(self, unitary: np.ndarray, qubits: tuple[int, ...] | list[int]) -> None:
        """Apply a k-qubit unitary to the listed qubits, in order.

        ``qubits[0]`` corresponds to the most significant bit of the
        unitary's own basis (matching :mod:`repro.quantum.gates`).
        """
        qubits = tuple(qubits)
        unitary = np.asarray(unitary, dtype=complex)
        k = len(qubits)
        if unitary.shape != (1 << k, 1 << k):
            raise PlantError(
                f"unitary shape {unitary.shape} does not match {k} qubit(s)")
        if len(set(qubits)) != k:
            raise PlantError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PlantError(f"qubit {qubit} out of range")
        self._amplitudes = _apply_unitary(self._amplitudes, unitary, qubits,
                                          self.num_qubits)

    def measure_probability_one(self, qubit: int) -> float:
        """P(qubit measured as 1) without collapsing the state.

        With qubit 0 as the most significant bit, qubit ``q`` is axis
        ``q`` of the state tensor reshaped to ``[2] * num_qubits``.
        """
        if not 0 <= qubit < self.num_qubits:
            raise PlantError(f"qubit {qubit} out of range")
        view = self._amplitudes.reshape(1 << qubit, 2, -1)
        return float(np.sum(np.abs(view[:, 1, :]) ** 2))

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Projective z-measurement of one qubit; collapses the state."""
        p_one = self.measure_probability_one(qubit)
        result = 1 if rng.random() < p_one else 0
        self.collapse(qubit, result)
        return result

    def collapse(self, qubit: int, result: int) -> None:
        """Project onto ``result`` for ``qubit`` and renormalise."""
        view = self._amplitudes.reshape(1 << qubit, 2, -1)
        view[:, 1 - result, :] = 0.0
        norm = np.linalg.norm(self._amplitudes)
        if norm < 1e-12:
            raise PlantError(
                f"collapse of qubit {qubit} to {result} has probability 0")
        self._amplitudes /= norm

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2 — pure state overlap."""
        if other.num_qubits != self.num_qubits:
            raise PlantError("qubit count mismatch")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    def equiv_up_to_phase(self, other: "Statevector",
                          atol: float = 1e-9) -> bool:
        """Whether two pure states are equal up to global phase."""
        return self.fidelity(other) > 1.0 - atol


#: Basis permutation swapping the two qubit bits of a 2-qubit unitary.
_SWAP_2Q = (0, 2, 1, 3)


def _apply_unitary_1q(amplitudes: np.ndarray, unitary: np.ndarray,
                      qubit: int) -> np.ndarray:
    """In-place single-qubit kernel: no transpose, two axpy-style rows.

    ``amplitudes`` must be C-contiguous (it always is for the state
    vectors this module manages); the reshape is then a view and the
    update happens in place.
    """
    view = amplitudes.reshape(1 << qubit, 2, -1)
    zero = view[:, 0, :]
    one = view[:, 1, :]
    new_zero = unitary[0, 0] * zero + unitary[0, 1] * one
    new_one = unitary[1, 0] * zero + unitary[1, 1] * one
    view[:, 0, :] = new_zero
    view[:, 1, :] = new_one
    return amplitudes


def _apply_unitary_2q(amplitudes: np.ndarray, unitary: np.ndarray,
                      qubits: tuple[int, ...]) -> np.ndarray:
    """In-place two-qubit kernel via a five-axis view of the tensor.

    ``qubits[0]`` is the most significant bit of the unitary's own
    basis; when the qubits are given high-to-low the unitary's basis is
    re-permuted instead of transposing the state.
    """
    low, high = ((qubits[0], qubits[1]) if qubits[0] < qubits[1]
                 else (qubits[1], qubits[0]))
    if qubits[0] != low:
        unitary = unitary[np.ix_(_SWAP_2Q, _SWAP_2Q)]
    view = amplitudes.reshape(1 << low, 2, 1 << (high - low - 1), 2, -1)
    slices = [view[:, a, :, b, :] for a in (0, 1) for b in (0, 1)]
    new = [unitary[row, 0] * slices[0] + unitary[row, 1] * slices[1] +
           unitary[row, 2] * slices[2] + unitary[row, 3] * slices[3]
           for row in range(4)]
    for index, (a, b) in enumerate(((0, 0), (0, 1), (1, 0), (1, 1))):
        view[:, a, :, b, :] = new[index]
    return amplitudes


def _apply_unitary(amplitudes: np.ndarray, unitary: np.ndarray,
                   qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Apply a unitary on selected qubits.

    One- and two-qubit gates (every gate the eQASM instantiations
    define) take the specialized in-place kernels; larger operators
    fall back to the generic transpose path.
    """
    k = len(qubits)
    if k <= 2 and not amplitudes.flags.c_contiguous:
        # The in-place kernels rely on reshape returning a view.
        amplitudes = np.ascontiguousarray(amplitudes)
    if k == 1:
        return _apply_unitary_1q(amplitudes, unitary, qubits[0])
    if k == 2:
        return _apply_unitary_2q(amplitudes, unitary, qubits)
    tensor = amplitudes.reshape([2] * num_qubits)
    # Move the target axes to the front, in the given order.
    axes = list(qubits)
    rest = [axis for axis in range(num_qubits) if axis not in axes]
    order = axes + rest
    tensor = np.transpose(tensor, order)
    tensor = tensor.reshape(1 << k, -1)
    tensor = unitary @ tensor
    tensor = tensor.reshape([2] * num_qubits)
    # Move axes back: the inverse permutation is constructed directly
    # instead of argsort-ing the forward one.
    inverse = [0] * num_qubits
    for position, axis in enumerate(order):
        inverse[axis] = position
    tensor = np.transpose(tensor, inverse)
    return tensor.reshape(-1)


def zero_state(num_qubits: int) -> Statevector:
    """|0...0> on ``num_qubits`` qubits."""
    return Statevector(num_qubits)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """Computational basis state with the given integer index."""
    dim = 1 << num_qubits
    if not 0 <= index < dim:
        raise PlantError(f"basis index {index} out of range for {dim}")
    amplitudes = np.zeros(dim, dtype=complex)
    amplitudes[index] = 1.0
    return Statevector(num_qubits, amplitudes)
