"""Pure-state (statevector) simulator.

Used where noise is irrelevant: verifying that compiled circuits
implement the intended unitary (Grover square root, Ising model,
Clifford inversion in randomized benchmarking) and computing ideal
reference curves (the AllXY staircase).

Qubit index convention: qubit 0 is the most significant bit of the
computational basis index, i.e. for ``n`` qubits, basis state
``|q0 q1 ... q(n-1)>`` has index ``q0 * 2**(n-1) + ... + q(n-1)``.
The same convention is used by :mod:`repro.quantum.density_matrix`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import PlantError


class Statevector:
    """An ``n``-qubit pure state with gate application and measurement."""

    def __init__(self, num_qubits: int,
                 amplitudes: np.ndarray | None = None):
        if num_qubits < 1:
            raise PlantError("need at least one qubit")
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if amplitudes is None:
            self._amplitudes = np.zeros(dim, dtype=complex)
            self._amplitudes[0] = 1.0
        else:
            amplitudes = np.asarray(amplitudes, dtype=complex).ravel()
            if amplitudes.shape != (dim,):
                raise PlantError(
                    f"amplitude vector has shape {amplitudes.shape}, "
                    f"expected ({dim},)")
            norm = np.linalg.norm(amplitudes)
            if not math.isclose(norm, 1.0, abs_tol=1e-9):
                raise PlantError(f"state not normalised (norm {norm})")
            self._amplitudes = amplitudes.copy()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def amplitudes(self) -> np.ndarray:
        """A copy of the amplitude vector."""
        return self._amplitudes.copy()

    def probability(self, basis_state: int) -> float:
        """Probability of measuring the given computational basis state."""
        return float(abs(self._amplitudes[basis_state]) ** 2)

    def probabilities(self) -> np.ndarray:
        """Probabilities over all computational basis states."""
        return np.abs(self._amplitudes) ** 2

    def copy(self) -> "Statevector":
        """An independent copy of this state."""
        return Statevector(self.num_qubits, self._amplitudes)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_gate(self, unitary: np.ndarray, qubits: tuple[int, ...] | list[int]) -> None:
        """Apply a k-qubit unitary to the listed qubits, in order.

        ``qubits[0]`` corresponds to the most significant bit of the
        unitary's own basis (matching :mod:`repro.quantum.gates`).
        """
        qubits = tuple(qubits)
        unitary = np.asarray(unitary, dtype=complex)
        k = len(qubits)
        if unitary.shape != (1 << k, 1 << k):
            raise PlantError(
                f"unitary shape {unitary.shape} does not match {k} qubit(s)")
        if len(set(qubits)) != k:
            raise PlantError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PlantError(f"qubit {qubit} out of range")
        self._amplitudes = _apply_unitary(self._amplitudes, unitary, qubits,
                                          self.num_qubits)

    def measure_probability_one(self, qubit: int) -> float:
        """P(qubit measured as 1) without collapsing the state.

        With qubit 0 as the most significant bit, qubit ``q`` is axis
        ``q`` of the state tensor reshaped to ``[2] * num_qubits``.
        """
        if not 0 <= qubit < self.num_qubits:
            raise PlantError(f"qubit {qubit} out of range")
        reshaped = self._amplitudes.reshape([2] * self.num_qubits)
        slice_one = np.take(reshaped, 1, axis=qubit)
        return float(np.sum(np.abs(slice_one) ** 2))

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Projective z-measurement of one qubit; collapses the state."""
        p_one = self.measure_probability_one(qubit)
        result = 1 if rng.random() < p_one else 0
        self.collapse(qubit, result)
        return result

    def collapse(self, qubit: int, result: int) -> None:
        """Project onto ``result`` for ``qubit`` and renormalise."""
        reshaped = self._amplitudes.reshape([2] * self.num_qubits)
        index = [slice(None)] * self.num_qubits
        index[qubit] = 1 - result
        reshaped[tuple(index)] = 0.0
        norm = np.linalg.norm(self._amplitudes)
        if norm < 1e-12:
            raise PlantError(
                f"collapse of qubit {qubit} to {result} has probability 0")
        self._amplitudes /= norm

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2 — pure state overlap."""
        if other.num_qubits != self.num_qubits:
            raise PlantError("qubit count mismatch")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    def equiv_up_to_phase(self, other: "Statevector",
                          atol: float = 1e-9) -> bool:
        """Whether two pure states are equal up to global phase."""
        return self.fidelity(other) > 1.0 - atol


def _apply_unitary(amplitudes: np.ndarray, unitary: np.ndarray,
                   qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Apply a unitary on selected qubits via tensor reshaping."""
    k = len(qubits)
    tensor = amplitudes.reshape([2] * num_qubits)
    # Move the target axes to the front, in the given order.
    axes = list(qubits)
    rest = [axis for axis in range(num_qubits) if axis not in axes]
    tensor = np.transpose(tensor, axes + rest)
    tensor = tensor.reshape(1 << k, -1)
    tensor = unitary @ tensor
    tensor = tensor.reshape([2] * num_qubits)
    # Move axes back.
    inverse = np.argsort(axes + rest)
    tensor = np.transpose(tensor, inverse)
    return tensor.reshape(-1)


def zero_state(num_qubits: int) -> Statevector:
    """|0...0> on ``num_qubits`` qubits."""
    return Statevector(num_qubits)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """Computational basis state with the given integer index."""
    dim = 1 << num_qubits
    if not 0 <= index < dim:
        raise PlantError(f"basis index {index} out of range for {dim}")
    amplitudes = np.zeros(dim, dtype=complex)
    amplitudes[index] = 1.0
    return Statevector(num_qubits, amplitudes)
