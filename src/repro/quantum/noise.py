"""Noise channels for the open-system plant.

The Section 5 experiments are bounded by three physical error sources,
all modelled here as Kraus channels (plus a classical readout error):

* **Decoherence during idle time** — amplitude damping with time
  constant T1 and pure dephasing with constant Tphi derived from T2
  (``1/Tphi = 1/T2 - 1/(2 T1)``).  This is what makes the error per
  Clifford grow with the gate interval in Fig. 12.
* **Intrinsic gate error** — a depolarizing channel applied with each
  gate, representing control imperfections (calibration residuals).
* **Readout assignment error** — a classical bit flip of the
  discriminated measurement result; this bounds active reset at 82.7 %.

Channels are represented as lists of Kraus operators ``K_i`` with
``sum_i K_i^dag K_i = I``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import PlantError
from repro.quantum import gates


def amplitude_damping(gamma: float) -> list[np.ndarray]:
    """Amplitude damping (T1 relaxation) with decay probability gamma."""
    if not 0.0 <= gamma <= 1.0:
        raise PlantError(f"gamma {gamma} outside [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping(lam: float) -> list[np.ndarray]:
    """Pure dephasing with phase-flip-equivalent probability ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise PlantError(f"lambda {lam} outside [0, 1]")
    k0 = math.sqrt(1 - lam) * np.eye(2, dtype=complex)
    k1 = math.sqrt(lam) * np.array([[1, 0], [0, -1]], dtype=complex)
    return [k0, k1]


def depolarizing(p: float, num_qubits: int = 1) -> list[np.ndarray]:
    """Depolarizing channel with error probability ``p``.

    With probability ``p`` one of the non-identity Paulis (uniformly)
    is applied; ``num_qubits`` may be 1 or 2.
    """
    if not 0.0 <= p <= 1.0:
        raise PlantError(f"p {p} outside [0, 1]")
    if num_qubits not in (1, 2):
        raise PlantError("depolarizing supports 1 or 2 qubits")
    paulis_1q = [gates.I, gates.X, gates.Y, gates.Z]
    if num_qubits == 1:
        operators = paulis_1q
    else:
        operators = [np.kron(a, b) for a in paulis_1q for b in paulis_1q]
    num_errors = len(operators) - 1
    kraus = [math.sqrt(1 - p) * operators[0]]
    kraus.extend(math.sqrt(p / num_errors) * op for op in operators[1:])
    return kraus


def bit_flip(p: float) -> list[np.ndarray]:
    """Classical-equivalent X error with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise PlantError(f"p {p} outside [0, 1]")
    return [math.sqrt(1 - p) * gates.I, math.sqrt(p) * gates.X]


def is_trace_preserving(kraus: list[np.ndarray], atol: float = 1e-9) -> bool:
    """Check ``sum K^dag K == I`` for a Kraus set."""
    dim = kraus[0].shape[0]
    total = sum(k.conj().T @ k for k in kraus)
    return bool(np.allclose(total, np.eye(dim), atol=atol))


@dataclass(frozen=True)
class DecoherenceModel:
    """Per-qubit T1/T2 decoherence applied over idle durations.

    Parameters are in nanoseconds.  ``t2`` must satisfy ``t2 <= 2 * t1``
    (physicality).  ``idle_channel`` returns the Kraus set for idling a
    single qubit for ``duration_ns``.
    """

    t1_ns: float = 40_000.0
    t2_ns: float = 25_000.0

    #: Time constants at or above this are treated as "no decoherence"
    #: (:meth:`is_negligible`); :meth:`NoiseModel.noiseless` uses 1e15.
    NEGLIGIBLE_NS = 1e12

    def __post_init__(self) -> None:
        if self.t1_ns <= 0 or self.t2_ns <= 0:
            raise PlantError("T1 and T2 must be positive")
        if self.t2_ns > 2 * self.t1_ns + 1e-9:
            raise PlantError("T2 cannot exceed 2*T1")

    @property
    def is_negligible(self) -> bool:
        """Whether idling is effectively noise-free.

        True when both time constants are at least
        :data:`NEGLIGIBLE_NS` (a millisecond-scale shot then idles with
        error below 1e-9, under double-precision noise anyway).  The
        stabilizer plant backend — which cannot represent the non-Pauli
        T1/T2 channels — is only eligible when this holds.
        """
        return (self.t1_ns >= self.NEGLIGIBLE_NS and
                self.t2_ns >= self.NEGLIGIBLE_NS)

    @property
    def tphi_ns(self) -> float:
        """Pure-dephasing time constant: 1/Tphi = 1/T2 - 1/(2 T1)."""
        rate = 1.0 / self.t2_ns - 1.0 / (2.0 * self.t1_ns)
        if rate <= 0:
            return math.inf
        return 1.0 / rate

    def idle_channel(self, duration_ns: float) -> list[np.ndarray]:
        """Kraus operators for idling one qubit for ``duration_ns``.

        Amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed with
        pure dephasing ``lam = (1 - exp(-t/Tphi)) / 2``.
        """
        if duration_ns < 0:
            raise PlantError("negative idle duration")
        if duration_ns == 0:
            return [np.eye(2, dtype=complex)]
        gamma = 1.0 - math.exp(-duration_ns / self.t1_ns)
        tphi = self.tphi_ns
        if math.isinf(tphi):
            lam = 0.0
        else:
            lam = (1.0 - math.exp(-duration_ns / tphi)) / 2.0
        damping = amplitude_damping(gamma)
        dephasing = phase_damping(lam)
        return compose_channels(damping, dephasing)

    def average_gate_infidelity(self, duration_ns: float) -> float:
        """Coherence-limited average infidelity of an idle of given length.

        Standard expression for a single qubit idling under T1/T2:
        ``1 - F_avg = (3 - exp(-t/T1) - 2 exp(-t/T2)) / 6``.
        Useful for calibrating Fig. 12 expectations analytically.
        """
        e1 = math.exp(-duration_ns / self.t1_ns)
        e2 = math.exp(-duration_ns / self.t2_ns)
        return (3.0 - e1 - 2.0 * e2) / 6.0


def compose_channels(first: list[np.ndarray],
                     second: list[np.ndarray]) -> list[np.ndarray]:
    """Kraus set of ``second`` applied after ``first``."""
    return [b @ a for a in first for b in second]


@dataclass(frozen=True)
class ReadoutErrorModel:
    """Classical assignment error of the measurement discrimination unit.

    ``p01`` is the probability of reading 1 when the qubit was 0, and
    ``p10`` of reading 0 when it was 1.  The paper's active-reset result
    (82.7 % in |0> after reset, "limited by the readout fidelity")
    corresponds to an assignment fidelity around 0.905.
    """

    p01: float = 0.095
    p10: float = 0.095

    def __post_init__(self) -> None:
        for name, value in (("p01", self.p01), ("p10", self.p10)):
            if not 0.0 <= value <= 1.0:
                raise PlantError(f"{name} {value} outside [0, 1]")

    @property
    def assignment_fidelity(self) -> float:
        """1 - (p01 + p10) / 2 — the usual single-number readout score."""
        return 1.0 - (self.p01 + self.p10) / 2.0

    def apply(self, true_result: int, rng: np.random.Generator) -> int:
        """Flip the discriminated bit with the assignment probability."""
        if true_result not in (0, 1):
            raise PlantError(f"result {true_result} is not a bit")
        flip_probability = self.p01 if true_result == 0 else self.p10
        if rng.random() < flip_probability:
            return 1 - true_result
        return true_result

    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix M with M[i, j] = P(read i | prepared j)."""
        return np.array([[1 - self.p01, self.p10],
                         [self.p01, 1 - self.p10]])

    def correct_probabilities(self, measured: np.ndarray) -> np.ndarray:
        """Invert the confusion matrix on a measured [P0, P1] vector.

        This is the "corrected for readout errors" post-processing used
        for Fig. 11 and the Grover fidelity.
        """
        measured = np.asarray(measured, dtype=float)
        corrected = np.linalg.solve(self.confusion_matrix(), measured)
        return corrected


@dataclass(frozen=True)
class GateErrorModel:
    """Intrinsic (duration-independent) gate error probabilities.

    Depolarizing error applied alongside each gate:  the defaults give a
    single-qubit gate fidelity of 99.90 % at a 20 ns interval (paper's
    measured RB number) and a CZ-limited Grover fidelity near 85.6 %.
    """

    single_qubit_error: float = 1.5e-3
    two_qubit_error: float = 0.07

    def __post_init__(self) -> None:
        for name, value in (("single_qubit_error", self.single_qubit_error),
                            ("two_qubit_error", self.two_qubit_error)):
            if not 0.0 <= value <= 1.0:
                raise PlantError(f"{name} {value} outside [0, 1]")

    def channel_for(self, num_qubits: int) -> list[np.ndarray]:
        """Depolarizing Kraus set for a gate of the given arity."""
        if num_qubits == 1:
            return depolarizing(self.single_qubit_error, 1)
        if num_qubits == 2:
            return depolarizing(self.two_qubit_error, 2)
        raise PlantError("only 1- and 2-qubit gates are supported")

    @property
    def is_zero(self) -> bool:
        """Whether gates are error-free (both probabilities zero)."""
        return self.single_qubit_error == 0.0 and \
            self.two_qubit_error == 0.0


@dataclass(frozen=True)
class NoiseModel:
    """Bundle of all noise sources with the calibrated defaults.

    The defaults are chosen once (documented in DESIGN.md Section 7) so
    the paper's measured numbers fall out of the simulation without
    per-experiment tuning.
    """

    decoherence: DecoherenceModel = DecoherenceModel()
    readout: ReadoutErrorModel = ReadoutErrorModel()
    gate_error: GateErrorModel = GateErrorModel()

    @property
    def is_pauli_plus_readout(self) -> bool:
        """Whether every quantum channel of this model is Pauli.

        Depolarizing gate error is a Pauli mixture and the readout
        assignment error is purely classical, so the only obstruction
        is idle decoherence (amplitude damping is not Pauli).  Models
        satisfying this are eligible for the stabilizer plant backend
        (non-Clifford *gates* can still force the dense backend — see
        :meth:`repro.uarch.machine.QuMAv2.plant_backend_reasons`).
        """
        return self.decoherence.is_negligible

    @staticmethod
    def noiseless() -> "NoiseModel":
        """A noise model in which every channel is the identity."""
        return NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
            readout=ReadoutErrorModel(p01=0.0, p10=0.0),
            gate_error=GateErrorModel(single_qubit_error=0.0,
                                      two_qubit_error=0.0),
        )
