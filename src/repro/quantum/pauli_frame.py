"""Pauli-frame batched multi-shot engine for the stabilizer backend.

The surface-code workloads of the eQASM paper (Fu et al., HPCA 2019)
are Clifford circuits with depolarizing gate error and readout
assignment error.  Simulated per shot, every trajectory repeats the
*same* tableau updates and differs only in which Pauli errors were
sampled — so at 17 qubits the interpreter spends its time re-deriving
an identical Clifford sequence thousands of times.  Pauli-frame
simulation (Knill's trick, the engine behind stim-style samplers)
removes the repetition: run ONE noise-free *reference* shot on the
tableau, recording the Clifford sequence, every stochastic-error site
and the measurement structure; then propagate a whole batch of
per-shot *frames* — a ``(shots, n)`` pair of X/Z bit matrices, each
row the Pauli error accumulated by one shot — through the recording
with vectorised numpy column operations.

**Eligibility rule** (enforced statically by
:meth:`repro.uarch.machine.QuMAv2.frame_batch_unsupported_reasons`):
the stabilizer backend must be selected (Clifford binary,
Pauli/readout-only noise), and the recorded Clifford/measurement
sequence must be *identical across shots* — no ``FMR`` result
consumption, no conditionally executed micro-operations, no injected
mock results, and none of the replay engine's hard blockers (live
data-memory traffic, untranslatable operations).  Outcome-dependent
control flow forks the gate sequence per shot, which a single
reference recording cannot represent; such programs fall back to the
per-shot tableau interpreter transparently.

**Accuracy contract**: within the eligible domain the batch is exact
*in distribution* — each frame row is one faithfully sampled Pauli
trajectory of the same depolarizing/readout unravelling the per-shot
backend uses, so joint outcome histograms agree with the per-shot
tableau (and the dense density matrix) up to sampling error.  The
mathematics: a frame ``P`` commutes through every recorded Clifford
``U`` as ``P -> U P U^dag`` (the same derived action table, sign
discarded — a frame's sign is a global phase).  A measurement of
``Z_a`` whose reference outcome was *deterministic* reports
``reference ^ frame_x[a]`` and leaves the frame unchanged; one whose
reference outcome was *random* reports a fresh uniform bit ``o`` and,
when ``o ^ frame_x[a]`` disagrees with the reference outcome,
multiplies the frame by the reference run's pre-collapse pivot
stabilizer ``Q`` (the anticommuting generator :meth:`collapse` pivots
on): ``Q`` maps the reference's post-measurement branch onto the other
branch, so the frame keeps tracking the shot's true state relative to
the reference trajectory.  Readout assignment error is classical and
applied column-wise after projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PlantError
from repro.quantum.noise import ReadoutErrorModel
from repro.quantum.stabilizer import CliffordAction, StabilizerTableau


@dataclass(frozen=True, slots=True)
class GateStep:
    """One Clifford applied during the reference shot."""

    action: CliffordAction
    indices: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class NoiseStep:
    """One depolarizing-error site (probability deferred to the batch)."""

    indices: tuple[int, ...]
    probability: float


@dataclass(frozen=True, slots=True)
class MeasureStep:
    """One projective measurement of the reference shot.

    ``pivot_x``/``pivot_z`` are the pre-collapse pivot stabilizer's
    Pauli bits when the reference outcome was random (``p_one`` 0.5),
    None when it was deterministic.
    """

    index: int
    p_one: float
    reference_raw: int
    pivot_x: np.ndarray | None
    pivot_z: np.ndarray | None


class FrameRecorder:
    """Captures one reference shot's step sequence for frame batching.

    The machine installs a recorder as
    :attr:`repro.quantum.stabilizer.StabilizerBackend.frame_recorder`
    for exactly one interpreter shot.  The backend then records every
    applied Clifford, *defers* every stochastic gate-error site
    (recorded, not sampled — the reference trajectory must be
    noise-free for the frames to carry the noise exactly) and routes
    measurements through :meth:`record_measurement`, which captures the
    pre-collapse structure the batch needs before collapsing the
    tableau exactly as a plain shot would.
    """

    def __init__(self) -> None:
        self.steps: list[GateStep | NoiseStep | MeasureStep] = []
        self.measure_count = 0

    def record_gate(self, action: CliffordAction,
                    indices: tuple[int, ...]) -> None:
        self.steps.append(GateStep(action=action, indices=indices))

    def record_gate_error(self, indices: tuple[int, ...],
                          probability: float) -> None:
        self.steps.append(NoiseStep(indices=indices,
                                    probability=probability))

    def record_measurement(self, tableau: StabilizerTableau, index: int,
                           rng: np.random.Generator) -> int:
        """Measure ``index`` on the reference tableau, recording the
        pre-collapse probability and (for random outcomes) the pivot
        stabilizer.  The RNG draw matches
        :meth:`StabilizerTableau.measure` exactly, so the reference
        trajectory is reproducible against a plain noise-free shot."""
        p_one = tableau.probability_one(index)
        if p_one == 0.5:
            pivot = tableau.pivot_stabilizer(index)
            pivot_x, pivot_z = tableau.row_paulis(pivot)
            result = 1 if rng.random() < 0.5 else 0
        else:
            pivot_x = pivot_z = None
            result = int(p_one)
        tableau.collapse(index, result)
        self.steps.append(MeasureStep(
            index=index, p_one=p_one, reference_raw=result,
            pivot_x=pivot_x, pivot_z=pivot_z))
        self.measure_count += 1
        return result


def propagate_frames(steps, num_qubits: int, shots: int,
                     rng: np.random.Generator,
                     readout: ReadoutErrorModel
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Push ``shots`` Pauli frames through a recorded step sequence.

    Returns ``(raw, reported)`` uint8 matrices of shape
    ``(shots, measurements)`` — one row per shot, columns in the
    reference shot's measurement order.  All sampling (depolarizing
    injections, random-measurement outcomes, readout flips) is
    column-wise over the whole batch; the per-frame state is two
    ``(shots, num_qubits)`` bit matrices and every step costs O(shots)
    numpy work on the touched columns only.
    """
    if shots < 1:
        raise PlantError("need at least one shot to propagate")
    fx = np.zeros((shots, num_qubits), dtype=np.uint8)
    fz = np.zeros((shots, num_qubits), dtype=np.uint8)
    raw_columns: list[np.ndarray] = []
    reported_columns: list[np.ndarray] = []
    for step in steps:
        if isinstance(step, GateStep):
            bits = step.action.bits
            if len(step.indices) == 1:
                a = step.indices[0]
                v = fx[:, a] | (fz[:, a] << 1)
                image = bits[v]
                fx[:, a] = image & 1
                fz[:, a] = (image >> 1) & 1
            else:
                a, b = step.indices
                v = (fx[:, a] | (fz[:, a] << 1) |
                     (fx[:, b] << 2) | (fz[:, b] << 3))
                image = bits[v]
                fx[:, a] = image & 1
                fz[:, a] = (image >> 1) & 1
                fx[:, b] = (image >> 2) & 1
                fz[:, b] = (image >> 3) & 1
        elif isinstance(step, NoiseStep):
            k = len(step.indices)
            hit = rng.random(shots) < step.probability
            if not hit.any():
                continue
            v = rng.integers(1, 4 ** k, size=shots).astype(np.uint8)
            v = np.where(hit, v, 0).astype(np.uint8)
            for slot, qubit in enumerate(step.indices):
                fx[:, qubit] ^= (v >> (2 * slot)) & 1
                fz[:, qubit] ^= (v >> (2 * slot + 1)) & 1
        else:  # MeasureStep
            a = step.index
            if step.pivot_x is None:
                # Deterministic reference outcome: the frame's X
                # component flips it; projection changes nothing.
                raw = (step.reference_raw ^ fx[:, a]).astype(np.uint8)
            else:
                # Random reference outcome: every shot's outcome is a
                # fresh fair coin; shots landing on the branch the
                # reference did not take absorb the pivot stabilizer
                # into their frame.
                raw = rng.integers(0, 2, size=shots, dtype=np.uint8)
                flip = (raw ^ fx[:, a] ^ step.reference_raw) \
                    .astype(bool)
                if flip.any():
                    fx[flip] ^= step.pivot_x
                    fz[flip] ^= step.pivot_z
            p_flip = np.where(raw == 0, readout.p01, readout.p10)
            reported = raw ^ (rng.random(shots) < p_flip)
            raw_columns.append(raw)
            reported_columns.append(reported.astype(np.uint8))
    if not raw_columns:
        empty = np.zeros((shots, 0), dtype=np.uint8)
        return empty, empty.copy()
    return (np.column_stack(raw_columns),
            np.column_stack(reported_columns))
