"""Metrics registry: counters, gauges and fixed-bound histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`).  Metrics carry hierarchical dot-separated names
(``engine.replay.cached_shots``, ``service.journal.append.time_ns``)
and snapshot to a plain dict in *sorted-name order*, so two exported
snapshots diff cleanly line by line.

Determinism contract: every metric that measures wall-clock time is
named with a final segment ending in ``_ns`` or ``_s`` (``time_ns``,
``latency_s``).  :func:`filter_timing` strips exactly those entries,
and what remains is a pure function of the program, seed and
configuration — two identical seeded runs produce byte-identical
filtered snapshots (pinned by ``tests/obs/test_determinism.py``).

Histograms use *fixed* bucket bounds chosen at creation, so histograms
of the same name merge exactly (bucket-wise addition) across runs,
workers and processes; percentiles are estimated by linear
interpolation inside the owning bucket and clamped to the observed
``[min, max]``.  This is the one percentile implementation in the
repo — ``ServiceStats`` point latency and the sweep-service bench both
consume it.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_S_BOUNDS",
    "MetricsRegistry",
    "TIME_NS_BOUNDS",
    "exponential_bounds",
    "filter_timing",
]


def exponential_bounds(start: float, factor: float,
                       count: int) -> tuple[float, ...]:
    """``count`` geometrically spaced bucket upper edges from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"bounds need start > 0, factor > 1, count >= 1; got "
            f"start={start!r} factor={factor!r} count={count!r}")
    return tuple(start * factor ** i for i in range(count))


#: Default bounds for nanosecond timing histograms: 1 us .. ~4.3 s.
TIME_NS_BOUNDS = exponential_bounds(1_000.0, 4.0, 12)

#: Default bounds for second-scale latency histograms: 100 us .. ~52 s.
LATENCY_S_BOUNDS = exponential_bounds(1e-4, 2.0, 20)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only count up, got {amount!r}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time numeric level (queue depth, cache size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound histogram with interpolated percentile summaries.

    ``bounds`` are the strictly increasing upper edges of the finite
    buckets; one implicit overflow bucket catches everything above the
    last edge.  Two histograms with identical bounds merge exactly.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, bounds: tuple[float, ...] = TIME_NS_BOUNDS):
        bounds = tuple(float(edge) for edge in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def record(self, value: float) -> None:
        """Add one observation.  This sits on per-shot hot paths, so
        the bucket search is a C-level bisect (first edge with
        ``value <= edge``; past the last edge lands in overflow)."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise addition; bounds must match exactly."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} edges)")
        for index, increment in enumerate(other.bucket_counts):
            self.bucket_counts[index] += increment
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def copy(self) -> "Histogram":
        clone = Histogram(self.bounds)
        clone.bucket_counts = list(self.bucket_counts)
        clone.count = self.count
        clone.total = self.total
        clone.min_value = self.min_value
        clone.max_value = self.max_value
        return clone

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile, interpolated inside its bucket.

        Empty histograms report 0.0.  The estimate is exact at the
        observed extremes (clamped to ``[min, max]``) and linear in
        between, which keeps it deterministic and merge-stable.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], "
                             f"got {fraction!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == 0:
                    lower = self.min_value
                else:
                    lower = self.bounds[index - 1]
                if index < len(self.bounds):
                    upper = self.bounds[index]
                else:
                    upper = self.max_value
                position = (rank - cumulative) / bucket_count
                value = lower + position * (upper - lower)
                return min(max(value, self.min_value), self.max_value)
            cumulative += bucket_count
        return self.max_value  # unreachable with count > 0

    def as_dict(self) -> dict:
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": 0.0 if empty else self.min_value,
            "max": 0.0 if empty else self.max_value,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from its exported ``as_dict`` payload."""
        histogram = cls(tuple(payload["bounds"]))
        histogram.bucket_counts = list(payload["bucket_counts"])
        histogram.count = int(payload["count"])
        histogram.total = float(payload["sum"])
        if histogram.count:
            histogram.min_value = float(payload["min"])
            histogram.max_value = float(payload["max"])
        return histogram

    @classmethod
    def from_values(cls, values,
                    bounds: tuple[float, ...] = TIME_NS_BOUNDS) -> "Histogram":
        histogram = cls(bounds)
        histogram.record_many(values)
        return histogram


class MetricsRegistry:
    """Named metrics with get-or-create access and sorted snapshots."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = TIME_NS_BOUNDS) -> Histogram:
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(bounds))

    # Convenience single-call forms used by the instrumentation hooks.
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = TIME_NS_BOUNDS) -> None:
        self.histogram(name, bounds).record(value)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Every metric as a JSON-ready dict, in sorted-name order."""
        return {name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)}

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold an exported snapshot in: counters and histograms add,
        gauges take the incoming level.  This is how worker-process
        metrics aggregate into the serving driver's registry."""
        for name, payload in snapshot.items():
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).inc(int(payload["value"]))
            elif kind == "gauge":
                self.gauge(name).set(payload["value"])
            elif kind == "histogram":
                incoming = Histogram.from_dict(payload)
                self.histogram(name, incoming.bounds).merge(incoming)
            else:
                raise ValueError(
                    f"metric {name!r} has unknown type {kind!r}")

    def clear(self) -> None:
        self._metrics.clear()


def _is_timing_name(name: str) -> bool:
    leaf = name.rsplit(".", 1)[-1]
    return leaf.endswith("_ns") or leaf.endswith("_s")


def filter_timing(snapshot: dict[str, dict]) -> dict[str, dict]:
    """Drop timing-valued entries (leaf name ending ``_ns``/``_s``).

    What survives is deterministic for seeded runs — the basis of the
    byte-identical-snapshot guarantee in :mod:`repro.obs`.
    """
    return {name: payload for name, payload in snapshot.items()
            if not _is_timing_name(name)}
