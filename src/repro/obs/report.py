"""Render a markdown run report from exported telemetry.

Consumes the files :meth:`repro.obs.Observability.export` writes — a
metrics snapshot (JSON dict) and/or a Chrome-format trace (JSON array
of ``trace_event`` records) — and produces the human-readable side of
the observability story: where the counters stand, where the
wall-clock went, what events fired.  Exposed on the command line as
``python -m repro.obs report``.
"""

from __future__ import annotations

import json

__all__ = ["load_chrome_trace", "render_report"]


def load_chrome_trace(path) -> list[dict]:
    """Load a Chrome trace file (JSON array or ``{"traceEvents": []}``)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("traceEvents", [])
    if not isinstance(payload, list):
        raise ValueError(f"{path} is not a Chrome trace")
    return payload


def _format(value: float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.1f}"
    return f"{value:.4g}"


def _metrics_sections(metrics: dict[str, dict]) -> list[str]:
    counters = {n: m for n, m in metrics.items()
                if m.get("type") == "counter"}
    gauges = {n: m for n, m in metrics.items() if m.get("type") == "gauge"}
    histograms = {n: m for n, m in metrics.items()
                  if m.get("type") == "histogram"}
    lines: list[str] = ["## Metrics", ""]
    if counters:
        lines += ["### Counters", "", "| name | value |", "| --- | ---: |"]
        lines += [f"| `{name}` | {_format(int(m['value']))} |"
                  for name, m in sorted(counters.items())]
        lines.append("")
    if gauges:
        lines += ["### Gauges", "", "| name | value |", "| --- | ---: |"]
        lines += [f"| `{name}` | {_format(m['value'])} |"
                  for name, m in sorted(gauges.items())]
        lines.append("")
    if histograms:
        lines += ["### Histograms", "",
                  "| name | count | p50 | p90 | p99 | max |",
                  "| --- | ---: | ---: | ---: | ---: | ---: |"]
        lines += [f"| `{name}` | {_format(int(m['count']))} "
                  f"| {_format(m['p50'])} | {_format(m['p90'])} "
                  f"| {_format(m['p99'])} | {_format(m['max'])} |"
                  for name, m in sorted(histograms.items())]
        lines.append("")
    if not metrics:
        lines += ["(no metrics in snapshot)", ""]
    return lines


def _trace_sections(events: list[dict]) -> list[str]:
    spans: dict[str, list[float]] = {}
    instants: dict[str, int] = {}
    for event in events:
        name = event.get("name", "?")
        if event.get("ph") == "X":
            spans.setdefault(name, []).append(float(event.get("dur", 0.0)))
        elif event.get("ph") == "i":
            instants[name] = instants.get(name, 0) + 1
    lines: list[str] = ["## Trace", ""]
    if spans:
        lines += ["### Span time by name", "",
                  "| span | count | total ms | mean ms | max ms |",
                  "| --- | ---: | ---: | ---: | ---: |"]
        ranked = sorted(spans.items(), key=lambda item: -sum(item[1]))
        for name, durations in ranked:
            total_ms = sum(durations) / 1000.0
            mean_ms = total_ms / len(durations)
            max_ms = max(durations) / 1000.0
            lines.append(f"| `{name}` | {len(durations):,} "
                         f"| {total_ms:.3f} | {mean_ms:.3f} "
                         f"| {max_ms:.3f} |")
        lines.append("")
    if instants:
        lines += ["### Events", "", "| event | count |", "| --- | ---: |"]
        lines += [f"| `{name}` | {count:,} |"
                  for name, count in sorted(instants.items())]
        lines.append("")
    if not events:
        lines += ["(no trace events)", ""]
    return lines


def render_report(metrics: dict | None = None,
                  trace_events: list[dict] | None = None,
                  title: str = "Run report") -> str:
    """Markdown report from a metrics snapshot and/or trace events."""
    lines = [f"# {title}", ""]
    if metrics is not None:
        lines += _metrics_sections(metrics)
    if trace_events is not None:
        lines += _trace_sections(trace_events)
    if metrics is None and trace_events is None:
        lines += ["(nothing to report: pass a metrics snapshot and/or "
                  "a trace)", ""]
    return "\n".join(lines)
