"""The :class:`Observability` facade: one handle, one enablement point.

Everything instrumented in this repo accepts an optional
``Observability`` and holds ``None`` by default — a disabled hook is
one ``is not None`` branch, nothing more.  The facade bundles the two
halves (a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.SpanTracer`) plus the export path, so
callers wire a single object through
``QuMAv2(observability=...)`` / ``SweepService(observability=...)``
and read back metrics, spans and rendered reports from the same place.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry, filter_timing
from repro.obs.tracing import SpanTracer

__all__ = ["Observability"]


class Observability:
    """Paired metrics registry + span tracer with export helpers.

    Parameters
    ----------
    sample_fraction:
        Fraction of root spans recorded (deterministic credit
        accumulator) — the production-sweep sampled mode.  Metrics are
        always recorded; sampling applies to spans only.
    trace_capacity:
        Ring-buffer bound on retained trace records.
    clock:
        Nanosecond monotonic clock, injectable for tests.
    """

    def __init__(self, *, sample_fraction: float = 1.0,
                 trace_capacity: int = 65536, clock=None):
        self.metrics = MetricsRegistry()
        kwargs = {} if clock is None else {"clock": clock}
        self.tracer = SpanTracer(capacity=trace_capacity,
                                 sample_fraction=sample_fraction,
                                 **kwargs)

    # Tracer delegates, so hook sites write ``obs.span(...)``.
    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    def begin(self, name: str, **attributes):
        return self.tracer.begin(name, **attributes)

    def end(self, span, **attributes) -> None:
        self.tracer.end(span, **attributes)

    def event(self, name: str, **attributes) -> None:
        self.tracer.event(name, **attributes)

    def clock(self) -> int:
        return self.tracer.clock()

    def record_engine_run(self, stats) -> None:
        """Fold one finished run's :class:`EngineStats` into the
        registry (the ``engine.*`` namespace)."""
        stats.publish_metrics(self.metrics)

    def snapshot(self, exclude_timing: bool = False) -> dict:
        """The metrics snapshot; ``exclude_timing`` strips wall-clock
        entries, leaving the deterministic subset."""
        snapshot = self.metrics.snapshot()
        return filter_timing(snapshot) if exclude_timing else snapshot

    def export(self, directory, prefix: str = "run") -> dict[str, str]:
        """Write ``<prefix>_metrics.json`` (sorted snapshot),
        ``<prefix>_trace.json`` (Chrome/Perfetto) and
        ``<prefix>_events.jsonl`` under ``directory``; returns the
        paths keyed ``metrics`` / ``trace`` / ``events``."""
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics": os.path.join(directory, f"{prefix}_metrics.json"),
            "trace": os.path.join(directory, f"{prefix}_trace.json"),
            "events": os.path.join(directory, f"{prefix}_events.jsonl"),
        }
        with open(paths["metrics"], "w", encoding="utf-8") as handle:
            json.dump(self.metrics.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        self.tracer.write_chrome_trace(paths["trace"])
        self.tracer.write_event_log(paths["events"])
        return paths
