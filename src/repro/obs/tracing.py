"""Span tracer: monotonic-clock spans, ring-buffer bounded, Chrome-exportable.

Spans are measured on :func:`time.perf_counter_ns` (``CLOCK_MONOTONIC``
on Linux, shared across processes on one host, so driver and worker
spans land on one consistent timeline).  Nesting is tracked with an
explicit stack — every span records its parent's name and depth — and
the export maps cleanly onto the Chrome ``trace_event`` format:
complete (``"ph": "X"``) events for spans, instant (``"ph": "i"``)
events for point-in-time facts (faults, degradations, supervision
decisions).  The exported file is a JSON array with one event per
line, which both ``chrome://tracing`` and Perfetto open directly; a
plain-JSONL structured event log is available for ``jq``-style
processing.

The buffer is a bounded ring (``capacity`` completed records): a
runaway sweep overwrites its oldest spans instead of growing without
bound, and :attr:`SpanTracer.dropped` counts the overwritten records.
Sampling (``sample_fraction``) applies per *root* span through a
deterministic credit accumulator — never an RNG draw, so enabling
sampled tracing cannot perturb a seeded run — and an unsampled root
suppresses its whole subtree while instant events always record.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "EventRecord",
    "SpanRecord",
    "SpanTracer",
]


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


@dataclass(slots=True)
class SpanRecord:
    """One completed span (recorded at end time)."""

    name: str
    start_ns: int
    duration_ns: int
    parent: str | None = None
    depth: int = 0
    tid: int = 0
    attributes: dict = field(default_factory=dict)

    def chrome_event(self, pid: int) -> dict:
        return {"name": self.name, "cat": "repro", "ph": "X",
                "ts": self.start_ns / 1000.0,
                "dur": self.duration_ns / 1000.0,
                "pid": pid, "tid": self.tid,
                "args": _json_safe(self.attributes)}

    def log_record(self, pid: int) -> dict:
        return {"kind": "span", "name": self.name, "pid": pid,
                "tid": self.tid, "parent": self.parent,
                "depth": self.depth, "start_ns": self.start_ns,
                "duration_ns": self.duration_ns,
                "attributes": _json_safe(self.attributes)}


@dataclass(slots=True)
class EventRecord:
    """One instantaneous structured event."""

    name: str
    timestamp_ns: int
    tid: int = 0
    attributes: dict = field(default_factory=dict)

    def chrome_event(self, pid: int) -> dict:
        return {"name": self.name, "cat": "repro", "ph": "i", "s": "t",
                "ts": self.timestamp_ns / 1000.0,
                "pid": pid, "tid": self.tid,
                "args": _json_safe(self.attributes)}

    def log_record(self, pid: int) -> dict:
        return {"kind": "event", "name": self.name, "pid": pid,
                "tid": self.tid, "timestamp_ns": self.timestamp_ns,
                "attributes": _json_safe(self.attributes)}


class _ActiveSpan:
    __slots__ = ("name", "start_ns", "attributes", "sampled", "parent",
                 "depth")

    def __init__(self, name, start_ns, attributes, sampled, parent,
                 depth):
        self.name = name
        self.start_ns = start_ns
        self.attributes = attributes
        self.sampled = sampled
        self.parent = parent
        self.depth = depth


class SpanTracer:
    """Bounded recorder of spans and instant events.

    Parameters
    ----------
    capacity:
        Ring-buffer bound on retained completed records; the oldest
        record is overwritten past the bound (counted in
        :attr:`dropped`).
    sample_fraction:
        Fraction of *root* spans recorded, via a deterministic credit
        accumulator; nested spans inherit the root's decision.
    clock:
        Nanosecond monotonic clock (injectable for tests).
    """

    def __init__(self, capacity: int = 65536,
                 sample_fraction: float = 1.0,
                 clock=time.perf_counter_ns):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must lie in [0, 1], "
                             f"got {sample_fraction!r}")
        self.capacity = capacity
        self.sample_fraction = sample_fraction
        self.clock = clock
        self._records: deque = deque(maxlen=capacity)
        self._stack: list[_ActiveSpan] = []
        self._credit = 0.0
        #: Completed records overwritten by the ring buffer.
        self.dropped = 0
        #: Chrome events ingested from other processes (workers),
        #: already carrying their own pid.
        self._foreign: list[dict] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, record) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def _sample_root(self) -> bool:
        self._credit += self.sample_fraction
        if self._credit >= 1.0 - 1e-12:
            self._credit -= 1.0
            return True
        return False

    def begin(self, name: str, **attributes) -> _ActiveSpan:
        """Open a span; pair with :meth:`end`."""
        if self._stack:
            parent = self._stack[-1]
            sampled = parent.sampled
            parent_name = parent.name
        else:
            sampled = self._sample_root()
            parent_name = None
        span = _ActiveSpan(name, self.clock() if sampled else 0,
                           attributes, sampled, parent_name,
                           len(self._stack))
        self._stack.append(span)
        return span

    def end(self, span: _ActiveSpan, **attributes) -> None:
        """Close the innermost open span (must be ``span``)."""
        popped = self._stack.pop()
        if popped is not span:
            raise RuntimeError(
                f"span nesting violation: ending {span.name!r} while "
                f"{popped.name!r} is innermost")
        if not span.sampled:
            return
        if attributes:
            span.attributes.update(attributes)
        self._append(SpanRecord(
            name=span.name, start_ns=span.start_ns,
            duration_ns=self.clock() - span.start_ns,
            parent=span.parent, depth=span.depth,
            attributes=span.attributes))

    @contextmanager
    def span(self, name: str, **attributes):
        handle = self.begin(name, **attributes)
        try:
            yield handle
        finally:
            self.end(handle)

    def event(self, name: str, **attributes) -> None:
        """Record an instantaneous structured event (never sampled
        away: events mark rare, operationally significant facts)."""
        self._append(EventRecord(name=name, timestamp_ns=self.clock(),
                                 attributes=attributes))

    def record_span(self, name: str, start_ns: int, end_ns: int, *,
                    tid: int = 0, parent: str | None = None,
                    **attributes) -> None:
        """Record a span with explicit endpoints — for work whose
        start and end are observed at different call sites (e.g. a
        sweep point between dispatch and journal acknowledgement)."""
        self._append(SpanRecord(
            name=name, start_ns=start_ns,
            duration_ns=max(0, end_ns - start_ns), parent=parent,
            tid=tid, attributes=attributes))

    def ingest_chrome_events(self, events: list[dict], pid: int,
                             tid: int | None = None) -> None:
        """Adopt Chrome-format events exported by another process,
        re-tagged with ``pid`` (and optionally ``tid``).  Re-tagging
        both onto the ingesting tracer's own pid and a per-unit-of-work
        tid places foreign spans *inside* the local span that covers
        them (time containment on one track), which is how a sweep
        point's worker-side execution nests under the service's
        dispatch-to-journal span."""
        for event in events:
            merged = {**event, "pid": pid}
            if tid is not None:
                merged["tid"] = tid
            self._foreign.append(merged)

    # ------------------------------------------------------------------
    # Reading and export
    # ------------------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        return [record for record in self._records
                if isinstance(record, SpanRecord)]

    def events(self) -> list[EventRecord]:
        return [record for record in self._records
                if isinstance(record, EventRecord)]

    def chrome_trace_events(self, pid: int = 0) -> list[dict]:
        """All records in Chrome ``trace_event`` form (own + ingested)."""
        own = [record.chrome_event(pid) for record in self._records]
        return own + list(self._foreign)

    def write_chrome_trace(self, path, pid: int = 0) -> None:
        """Write a Chrome/Perfetto-loadable JSON array, one event per
        line (diff-friendly, still a valid single JSON document)."""
        events = self.chrome_trace_events(pid)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[\n")
            for index, event in enumerate(events):
                comma = "," if index < len(events) - 1 else ""
                handle.write(json.dumps(event, sort_keys=True) + comma
                             + "\n")
            handle.write("]\n")

    def write_event_log(self, path, pid: int = 0) -> None:
        """Write the plain-JSONL structured log (one record per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.log_record(pid),
                                        sort_keys=True) + "\n")

    def clear(self) -> None:
        self._records.clear()
        self._foreign.clear()
        self._stack.clear()
        self._credit = 0.0
        self.dropped = 0
