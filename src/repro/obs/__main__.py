"""Command-line surface of the observability layer.

``python -m repro.obs report --metrics run_metrics.json
--trace run_trace.json [--output report.md]`` renders the markdown run
report from telemetry exported by
:meth:`repro.obs.Observability.export`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import load_chrome_trace, render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability telemetry tooling.")
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render a markdown run report from exported "
        "metrics/trace files")
    report.add_argument("--metrics", help="metrics snapshot JSON "
                        "(from Observability.export)")
    report.add_argument("--trace", help="Chrome trace_event JSON "
                        "(from Observability.export)")
    report.add_argument("--title", default="Run report")
    report.add_argument("--output", help="write the markdown here "
                        "instead of stdout")
    arguments = parser.parse_args(argv)

    if arguments.metrics is None and arguments.trace is None:
        report.error("pass --metrics and/or --trace")
    metrics = None
    if arguments.metrics is not None:
        with open(arguments.metrics, "r", encoding="utf-8") as handle:
            metrics = json.load(handle)
    trace_events = None
    if arguments.trace is not None:
        trace_events = load_chrome_trace(arguments.trace)
    rendered = render_report(metrics, trace_events,
                             title=arguments.title)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        sys.stdout.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
