"""Unified observability: span tracing, metrics, exportable telemetry.

The paper's case for eQASM is that an executable ISA makes the control
stack *inspectable* — its timing and feedback behaviour measurable on
the real machine.  This package is that instrumentation story for the
reproduction: one deterministic, near-free-when-disabled layer that
answers "where did the wall-clock go" across the engine matrix
(interpreter / replay tree / Pauli-frame batch, dense / stabilizer
plant) and the supervised serving stack.

Layer contract
--------------
* **Overhead guarantee.**  Observability is *off by default*.  Every
  hook in the instrumented code is guarded by a single
  ``if obs is not None`` branch on a plain attribute — no allocation,
  no call, no clock read when disabled.  Enabled, hot per-shot paths
  record into histograms (two clock reads + one bucket increment per
  shot) rather than allocating spans; spans mark phases and rare
  events.  The feedback bench gates enabled-mode overhead (<= 5%
  recorded, <= 15% in CI) against the disabled mode.
* **Determinism guarantee.**  Metric values never depend on wall-clock
  except through metrics whose *name* says so: every timing metric's
  final name segment ends in ``_ns`` or ``_s``, and
  :func:`~repro.obs.metrics.filter_timing` strips exactly those.  Two
  identical seeded runs yield byte-identical filtered snapshots
  (snapshots are emitted in sorted-name order, so they diff cleanly).
  Span *sampling* uses a credit accumulator, never an RNG draw, so
  enabling tracing cannot perturb a seeded run.
* **Export formats.**  :meth:`Observability.export` writes three
  files: a metrics snapshot (``*_metrics.json``, sorted JSON dict), a
  Chrome ``trace_event`` trace (``*_trace.json``, a JSON array one
  event per line — opens directly in ``chrome://tracing`` and
  Perfetto, with worker processes as separate ``pid`` rows), and a
  plain JSONL structured event log (``*_events.jsonl``).
  ``python -m repro.obs report`` renders a markdown run report from
  the first two.

Enablement points: ``QuMAv2(observability=...)`` (machine + plant +
engine phases), ``ExperimentSetup.create(observability=...)``,
``SweepSpec(observe=True)`` (worker-side machine telemetry shipped
back through the result queue) and ``SweepService(observability=...)``
(driver-side dispatch/journal/supervision telemetry).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_S_BOUNDS,
    MetricsRegistry,
    TIME_NS_BOUNDS,
    exponential_bounds,
    filter_timing,
)
from repro.obs.observability import Observability
from repro.obs.report import load_chrome_trace, render_report
from repro.obs.tracing import EventRecord, SpanRecord, SpanTracer

__all__ = [
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "LATENCY_S_BOUNDS",
    "MetricsRegistry",
    "Observability",
    "SpanRecord",
    "SpanTracer",
    "TIME_NS_BOUNDS",
    "exponential_bounds",
    "filter_timing",
    "load_chrome_trace",
    "render_report",
]
