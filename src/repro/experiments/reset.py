"""Active qubit reset via fast conditional execution (Fig. 4, Section 5).

"Fast conditional execution is verified by the active qubit reset
experiment with qubit 2 ... We find the probability of measuring the
qubit in the |0> state after conditionally applying the C_X gate to be
82.7 %, limited by the readout fidelity."

The experiment runs the exact Fig. 4 program (hand-written assembly,
not compiler output) on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.uarch.replay import EngineStats

#: The Fig. 4 listing, extended with a terminating STOP.
FIG4_PROGRAM = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""

PAPER_RESET_PROBABILITY = 0.827


@dataclass
class ResetResult:
    """Outcome of the active-reset experiment."""

    shots: int
    ground_probability: float          # P(final result = 0)
    conditional_executed_fraction: float
    readout_fidelity: float
    #: Per-run execution-engine statistics — active reset exercises
    #: fast conditional execution, so this shows the branch-resolved
    #: replay path (shots via interpreter vs replay, cache hits).
    engine_stats: EngineStats = field(default_factory=EngineStats)

    def matches_paper(self, tolerance: float = 0.05) -> bool:
        """Within ``tolerance`` of the paper's 82.7 %."""
        return abs(self.ground_probability -
                   PAPER_RESET_PROBABILITY) <= tolerance


def run_active_reset_experiment(shots: int = 2000, seed: int = 5,
                                noise: NoiseModel | None = None
                                ) -> ResetResult:
    """Execute the Fig. 4 program for N shots (streamed — per-shot
    aggregates are folded as traces are produced, so memory stays flat
    at any shot count)."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    assembled = setup.assemble_text(FIG4_PROGRAM)
    executed = 0
    ground = 0
    for trace in setup.run_iter(assembled, shots):
        for trigger in trace.triggers:
            if trigger.name == "C_X":
                executed += trigger.executed
                break
        if trace.last_result(2) == 0:
            ground += 1
    return ResetResult(
        shots=shots,
        ground_probability=ground / shots,
        conditional_executed_fraction=executed / shots,
        readout_fidelity=setup.machine.plant.noise.readout
        .assignment_fidelity,
        engine_stats=setup.last_engine_stats)


def format_reset_report(result: ResetResult) -> str:
    """Render the reset result vs the paper's number."""
    return (
        f"active reset over {result.shots} shots:\n"
        f"  P(|0> after conditional C_X): "
        f"{result.ground_probability * 100:.1f}%  (paper: 82.7%)\n"
        f"  C_X executed in {result.conditional_executed_fraction * 100:.1f}"
        f"% of shots (expect ~50%)\n"
        f"  readout assignment fidelity: "
        f"{result.readout_fidelity * 100:.1f}% (the limiting factor)")
