"""Active qubit reset via fast conditional execution (Fig. 4, Section 5).

"Fast conditional execution is verified by the active qubit reset
experiment with qubit 2 ... We find the probability of measuring the
qubit in the |0> state after conditionally applying the C_X gate to be
82.7 %, limited by the readout fidelity."

The experiment runs the exact Fig. 4 program (hand-written assembly,
not compiler output) on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentSetup, ground_fraction
from repro.quantum.noise import NoiseModel

#: The Fig. 4 listing, extended with a terminating STOP.
FIG4_PROGRAM = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""

PAPER_RESET_PROBABILITY = 0.827


@dataclass
class ResetResult:
    """Outcome of the active-reset experiment."""

    shots: int
    ground_probability: float          # P(final result = 0)
    conditional_executed_fraction: float
    readout_fidelity: float

    def matches_paper(self, tolerance: float = 0.05) -> bool:
        """Within ``tolerance`` of the paper's 82.7 %."""
        return abs(self.ground_probability -
                   PAPER_RESET_PROBABILITY) <= tolerance


def run_active_reset_experiment(shots: int = 2000, seed: int = 5,
                                noise: NoiseModel | None = None
                                ) -> ResetResult:
    """Execute the Fig. 4 program for N shots."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    assembled = setup.assemble_text(FIG4_PROGRAM)
    traces = setup.run(assembled, shots)
    executed = 0
    for trace in traces:
        cx = [t for t in trace.triggers if t.name == "C_X"]
        if cx and cx[0].executed:
            executed += 1
    return ResetResult(
        shots=shots,
        ground_probability=ground_fraction(traces, 2),
        conditional_executed_fraction=executed / shots,
        readout_fidelity=setup.machine.plant.noise.readout
        .assignment_fidelity)


def format_reset_report(result: ResetResult) -> str:
    """Render the reset result vs the paper's number."""
    return (
        f"active reset over {result.shots} shots:\n"
        f"  P(|0> after conditional C_X): "
        f"{result.ground_probability * 100:.1f}%  (paper: 82.7%)\n"
        f"  C_X executed in {result.conditional_executed_fraction * 100:.1f}"
        f"% of shots (expect ~50%)\n"
        f"  readout assignment fidelity: "
        f"{result.readout_fidelity * 100:.1f}% (the limiting factor)")
