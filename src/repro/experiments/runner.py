"""Experiment runner: circuit -> compile -> assemble -> execute.

Glues the full stack together the way the paper's toolflow does
(Section 2.1): the OpenQL-like backend schedules the circuit and emits
eQASM, the assembler produces the binary, the binary is loaded into the
QuMA v2 instruction memory and executed against the plant for N shots.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from typing import Iterator

from repro.compiler.codegen import EQASMCodeGenerator
from repro.compiler.ir import Circuit
from repro.compiler.scheduler import (
    schedule_asap,
    schedule_with_interval,
)
from repro.core.assembler import AssembledProgram, Assembler
from repro.core.errors import (
    BackendFaultError,
    ConfigurationError,
    GuardFault,
    InvalidRequestError,
    PlantError,
    QueueOverflowError,
    ResourceError,
    ShotTimeoutError,
)
from repro.core.isa import EQASMInstantiation, two_qubit_instantiation
from repro.quantum.noise import NoiseModel
from repro.quantum.plant import QuantumPlant
from repro.uarch.config import UarchConfig
from repro.uarch.machine import QuMAv2
from repro.uarch.replay import EngineStats
from repro.uarch.trace import ShotCounts, ShotTrace

#: Compiled-program cache bound (FIFO eviction); sweeps rarely cycle
#: through more distinct circuit skeletons than this.
_PROGRAM_CACHE_CAPACITY = 128


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff policy for :meth:`ExperimentSetup.run_resilient`.

    ``max_attempts`` bounds the total executions (first try included).
    ``backoff_s`` is the *base* delay of a capped exponential backoff:
    retry ``n`` waits ``backoff_s * backoff_multiplier**(n-1)``
    seconds, clamped to ``backoff_cap_s``, with a deterministic
    ``jitter`` fraction derived from ``seed`` (so two policies with
    the same seed sleep identically — retries stay reproducible, while
    distinct seeds decorrelate a fleet of workers hammering a shared
    resource).  The default base of zero keeps the historical
    zero-sleep behaviour: the simulator's failures are deterministic,
    so only sweeps driving external resources ask for real backoff.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_cap_s: float = 30.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be non-negative")
        if self.backoff_cap_s < 0:
            raise ConfigurationError(
                "backoff_cap_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                "backoff_multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must lie in [0, 1]")

    def delay_for(self, attempt: int) -> float:
        """Deterministic sleep before retrying after failed attempt
        ``attempt`` (1-based).

        Zero whenever ``backoff_s`` is zero.  Otherwise the capped
        exponential above, scaled by ``1 + jitter * u`` where ``u`` in
        ``[-1, 1)`` is a pure function of ``(seed, attempt)`` — no
        global RNG state is consumed, so the schedule is reproducible
        and side-effect free.
        """
        if self.backoff_s <= 0.0:
            return 0.0
        delay = self.backoff_s * self.backoff_multiplier ** (attempt - 1)
        delay = min(delay, self.backoff_cap_s)
        if self.jitter:
            digest = hashlib.sha256(
                f"eqasm-backoff:{self.seed}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return min(delay, self.backoff_cap_s)


@dataclass
class ExperimentSetup:
    """A ready-to-run machine + assembler pair for one instantiation."""

    isa: EQASMInstantiation
    machine: QuMAv2
    assembler: Assembler
    #: schedule+codegen+assemble results keyed by circuit signature, so
    #: repeated sweeps (Rabi amplitudes, RB lengths, DSE configs) stop
    #: re-compiling identical skeletons.
    _program_cache: OrderedDict = field(default_factory=OrderedDict,
                                        repr=False)

    @classmethod
    def create(cls, isa: EQASMInstantiation | None = None,
               noise: NoiseModel | None = None,
               seed: int = 0,
               config: UarchConfig | None = None,
               plant_backend: str = "auto",
               audit_fraction: float = 0.0,
               observability=None) -> "ExperimentSetup":
        """Build the Section 5 experimental setup.

        Defaults: the two-qubit instantiation, the calibrated noise
        model, and the paper-like microarchitecture configuration.

        ``plant_backend`` sets the machine's plant-backend policy:
        ``"auto"`` (default) statically checks each loaded binary and
        the noise model, running Clifford programs under
        Pauli/readout-only noise on the polynomial-cost stabilizer
        tableau and **falling back to the dense density matrix for
        anything non-Clifford** (Rabi pulses, T gates, T1/T2
        decoherence); ``"dense"`` or ``"stabilizer"`` pin a backend.
        The choice is reported per run via :attr:`last_plant_backend`.

        ``audit_fraction`` turns on self-verifying replay: that
        fraction of replayed (cache-hit) shots is shadow-run on the
        interpreter and compared bit-for-bit — see
        :meth:`repro.uarch.machine.QuMAv2.run_iter`.

        ``observability`` attaches a :class:`repro.obs.Observability`
        handle to the machine (and, through it, the plant): run-phase
        spans, engine timing histograms and degradation/fault trace
        events.  None (default) disables all instrumentation.
        """
        isa = isa or two_qubit_instantiation()
        plant = QuantumPlant(isa.topology,
                             noise=noise if noise is not None
                             else NoiseModel(),
                             rng=np.random.default_rng(seed))
        machine = QuMAv2(isa, plant, config=config,
                         plant_backend=plant_backend,
                         audit_fraction=audit_fraction,
                         observability=observability)
        return cls(isa=isa, machine=machine, assembler=Assembler(isa))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile_circuit(self, circuit: Circuit,
                        interval_cycles: int | None = None,
                        initialize_cycles: int = 10000,
                        final_wait_cycles: int = 50,
                        use_cache: bool = True) -> AssembledProgram:
        """Schedule + codegen + assemble a circuit (cached).

        ``interval_cycles`` forces a fixed gate-start interval (the
        Fig. 12 knob); None uses ASAP scheduling.  ``final_wait_cycles``
        keeps the timeline open past the last measurement, matching the
        paper's trailing QWAIT.  Identical circuit/parameter
        combinations return the cached :class:`AssembledProgram`
        (compilation is deterministic and the result is never mutated);
        pass ``use_cache=False`` to force a fresh compile.
        """
        key = None
        if use_cache:
            key = (circuit.name, circuit.num_qubits,
                   tuple((op.name, op.qubits) for op in circuit.operations),
                   interval_cycles, initialize_cycles, final_wait_cycles)
            cached = self._program_cache.get(key)
            if cached is not None:
                self._program_cache.move_to_end(key)
                return cached
        if interval_cycles is None:
            schedule = schedule_asap(circuit, self.isa.operations)
        else:
            schedule = schedule_with_interval(circuit, self.isa.operations,
                                              interval_cycles)
        generator = EQASMCodeGenerator(self.isa)
        program = generator.generate(schedule,
                                     initialize_cycles=initialize_cycles,
                                     final_wait_cycles=final_wait_cycles)
        assembled = self.assembler.assemble_program(program)
        if key is not None:
            self._program_cache[key] = assembled
            while len(self._program_cache) > _PROGRAM_CACHE_CAPACITY:
                self._program_cache.popitem(last=False)
        return assembled

    def assemble_text(self, text: str) -> AssembledProgram:
        """Assemble hand-written eQASM (the paper's listing figures)."""
        return self.assembler.assemble_text(text)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, assembled: AssembledProgram,
            shots: int) -> list[ShotTrace]:
        """Load the binary and run it for N shots."""
        self.machine.load(assembled)
        return self.machine.run(shots)

    def run_iter(self, assembled: AssembledProgram,
                 shots: int) -> Iterator[ShotTrace]:
        """Load the binary and lazily yield N shot traces.

        The streaming entry point for per-shot consumers (the loading
        happens eagerly; the shots run on demand).  Engine selection is
        the machine's — branch-resolved replay wherever possible — and
        per-run statistics are available afterwards through
        :attr:`last_engine_stats`.
        """
        self.machine.load(assembled)
        return self.machine.run_iter(shots)

    def run_counts(self, assembled: AssembledProgram,
                   shots: int) -> ShotCounts:
        """Load the binary and stream N shots into an aggregate.

        Unlike :meth:`run`, memory stays O(qubits): traces are folded
        into a :class:`~repro.uarch.trace.ShotCounts` as the machine
        produces them (replay fast path included).
        """
        self.machine.load(assembled)
        return self.machine.run_counts(shots)

    # ------------------------------------------------------------------
    # Resilient execution (degradation ladder)
    # ------------------------------------------------------------------
    def run_resilient(self, assembled: AssembledProgram, shots: int,
                      policy: RetryPolicy | None = None
                      ) -> list[ShotTrace]:
        """Run N shots with graceful degradation instead of aborting.

        Structured runtime failures walk a degradation ladder —
        tableau -> dense -> interpreter-only -> abort — one rung per
        retry, bounded by ``policy.max_attempts``:

        * :class:`~repro.core.errors.ResourceError` (a state too large
          for the memory budget) retries with the polynomial-memory
          stabilizer backend pinned;
        * :class:`~repro.core.errors.BackendFaultError` /
          :class:`~repro.core.errors.PlantError` on the tableau retries
          on the dense backend when it fits, otherwise (and for dense
          faults) retries interpreter-only so a poisoned replay tree
          cannot serve stale shots;
        * :class:`~repro.core.errors.QueueOverflowError` /
          :class:`~repro.core.errors.ShotTimeoutError` retry
          interpreter-only once;
        * anything else — or a fall off the ladder — re-raises.

        Every rung taken is recorded in the (successful) run's
        :attr:`EngineStats.degradations`; the machine's configured
        plant-backend policy is restored afterwards regardless of
        outcome.
        """
        policy = policy or RetryPolicy()
        machine = self.machine
        original_policy = machine.plant_backend_policy
        degradations: list[str] = []
        use_replay = True
        try:
            for attempt in range(policy.max_attempts):
                try:
                    machine.load(assembled)
                    traces = list(machine.run_iter(
                        shots, use_replay=use_replay))
                except (GuardFault, PlantError) as error:
                    if attempt + 1 >= policy.max_attempts:
                        raise
                    rung = self._next_rung(error, use_replay)
                    if rung is None:
                        raise
                    step, use_replay = rung
                    delay = policy.delay_for(attempt + 1)
                    degradations.append(
                        f"attempt {attempt + 1}: "
                        f"{type(error).__name__} -> {step}"
                        + (f" (backoff {delay:.3f}s)" if delay else ""))
                    obs = machine.observability
                    if obs is not None:
                        # Each ladder rung is a structured trace event
                        # carrying the triggering guard fault's
                        # machine-readable context, so ladder walks are
                        # visible in exported traces, not only in
                        # EngineStats.degradations.
                        obs.event("runner.degradation",
                                  attempt=attempt + 1,
                                  error=type(error).__name__,
                                  rung=step,
                                  use_replay=use_replay,
                                  backoff_s=delay,
                                  context=getattr(error, "context", {}))
                    if delay:
                        time.sleep(delay)
                    continue
                stats = machine.engine_stats
                stats.degradations[:0] = degradations
                return traces
            raise AssertionError("unreachable: ladder exits by "
                                 "return or raise")  # pragma: no cover
        finally:
            machine.plant_backend_policy = original_policy

    def _next_rung(self, error: Exception,
                   use_replay: bool) -> tuple[str, bool] | None:
        """The next degradation step for a failed attempt, or None to
        abort (re-raise).  Returns ``(description, use_replay)``."""
        machine = self.machine
        if isinstance(error, ResourceError):
            if machine.plant_backend_policy != "stabilizer":
                machine.plant_backend_policy = "stabilizer"
                return ("retry on the stabilizer backend "
                        "(polynomial memory)", use_replay)
            return None  # the tableau itself does not fit: abort
        if isinstance(error, (QueueOverflowError, ShotTimeoutError)):
            if use_replay:
                return "retry interpreter-only", False
            return None
        if isinstance(error, (BackendFaultError, PlantError)):
            faulted_backend = getattr(error, "context", {}).get(
                "backend", machine.last_plant_backend)
            if faulted_backend == "stabilizer":
                try:
                    machine.plant.check_admission("dense")
                except ResourceError:
                    if use_replay:
                        return ("dense does not fit; retry "
                                "interpreter-only on the tableau",
                                False)
                    return None
                machine.plant_backend_policy = "dense"
                return "retry on the dense backend", use_replay
            if use_replay:
                return "retry interpreter-only", False
            return None
        return None

    @property
    def last_engine_stats(self) -> EngineStats:
        """Engine statistics of the most recent ``run*`` call: shots
        via interpreter vs replay, segment-cache hits/misses, fallback
        reasons (see :class:`~repro.uarch.replay.EngineStats`).  The
        object is *live* while a ``run_iter`` stream is being consumed
        — use :meth:`engine_stats_snapshot` for a stable copy."""
        return self.machine.engine_stats

    def engine_stats_snapshot(self) -> EngineStats:
        """A point-in-time copy of the running engine statistics.

        Long sweeps consuming :meth:`run_iter` can report the engine
        mix mid-flight (shots so far, interpreter vs replay split,
        segment-cache hits) without aliasing the live, still-mutating
        stats object."""
        return self.machine.engine_stats_snapshot()

    @property
    def last_plant_backend(self) -> str | None:
        """Plant backend of the most recent ``run*`` call —
        "stabilizer" when the static pass proved the binary Clifford
        and the noise Pauli/readout-only, "dense" otherwise (the
        non-Clifford fallback; the reason is in
        ``machine.plant_backend_reason``)."""
        return self.machine.last_plant_backend

    def clear_replay_cache(self) -> None:
        """Drop the machine's cross-run timeline-tree cache (see
        :meth:`repro.uarch.machine.QuMAv2.clear_replay_cache`)."""
        self.machine.clear_replay_cache()

    def run_circuit(self, circuit: Circuit, shots: int,
                    interval_cycles: int | None = None,
                    initialize_cycles: int = 10000,
                    final_wait_cycles: int = 50) -> list[ShotTrace]:
        """Compile and run a circuit in one call."""
        assembled = self.compile_circuit(
            circuit, interval_cycles=interval_cycles,
            initialize_cycles=initialize_cycles,
            final_wait_cycles=final_wait_cycles)
        return self.run(assembled, shots)

    def run_circuit_iter(self, circuit: Circuit, shots: int,
                         interval_cycles: int | None = None,
                         initialize_cycles: int = 10000,
                         final_wait_cycles: int = 50
                         ) -> Iterator[ShotTrace]:
        """Compile a circuit and lazily yield its shot traces."""
        assembled = self.compile_circuit(
            circuit, interval_cycles=interval_cycles,
            initialize_cycles=initialize_cycles,
            final_wait_cycles=final_wait_cycles)
        return self.run_iter(assembled, shots)

    def run_circuit_counts(self, circuit: Circuit, shots: int,
                           interval_cycles: int | None = None,
                           initialize_cycles: int = 10000,
                           final_wait_cycles: int = 50) -> ShotCounts:
        """Compile and run a circuit, aggregating instead of tracing."""
        assembled = self.compile_circuit(
            circuit, interval_cycles=interval_cycles,
            initialize_cycles=initialize_cycles,
            final_wait_cycles=final_wait_cycles)
        return self.run_counts(assembled, shots)

    def survival_probability(self, circuit: Circuit,
                             qubit: int,
                             interval_cycles: int | None = None
                             ) -> float:
        """Exact P(qubit = 0) at the end of a measurement-free circuit.

        Runs a single shot and reads the plant's density matrix — the
        sampling-noise-free observable used by the RB fits (the machine
        still executes the genuine binary; only the final readout is
        replaced by the exact population).
        """
        assembled = self.compile_circuit(circuit,
                                         interval_cycles=interval_cycles,
                                         final_wait_cycles=0)
        self.machine.load(assembled)
        self.machine.run_shot()
        return 1.0 - self.machine.plant.probability_one(qubit)


def excited_fraction(traces: list[ShotTrace], qubit: int) -> float:
    """Fraction of shots whose last result on ``qubit`` was 1."""
    results = [trace.last_result(qubit) for trace in traces]
    results = [r for r in results if r is not None]
    if not results:
        raise InvalidRequestError(
            f"no measurement results for qubit {qubit}")
    return sum(results) / len(results)


def ground_fraction(traces: list[ShotTrace], qubit: int) -> float:
    """Fraction of shots whose last result on ``qubit`` was 0."""
    return 1.0 - excited_fraction(traces, qubit)


def outcome_counts(traces: list[ShotTrace], qubit_a: int,
                   qubit_b: int) -> dict[int, int]:
    """Two-bit outcome histogram over shots (qubit_a = MSB)."""
    counts: dict[int, int] = {}
    for trace in traces:
        a = trace.last_result(qubit_a)
        b = trace.last_result(qubit_b)
        if a is None or b is None:
            continue
        key = (a << 1) | b
        counts[key] = counts.get(key, 0) + 1
    return counts
