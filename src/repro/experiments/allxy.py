"""The two-qubit AllXY experiment (Fig. 11).

Runs the 42-step interleaved AllXY sequence on the two-qubit setup,
corrects the per-step excited-state fraction for readout errors, and
compares against the ideal staircase — "the final measurement result
of the entire experiment (blue dots), which matches well with the
expectation (red line)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.analysis import (
    correct_population_for_readout,
    staircase_rms_error,
)
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.workloads.allxy import (
    allxy_two_qubit_circuit,
    allxy_two_qubit_expected,
)


@dataclass
class AllXYResult:
    """Per-step staircase data for both qubits."""

    steps: list[int]
    measured_a: list[float]    # readout-corrected F_|1> of qubit 0
    measured_b: list[float]    # readout-corrected F_|1> of qubit 2
    expected_a: list[float]
    expected_b: list[float]

    def rms_error_a(self) -> float:
        """Staircase deviation of qubit 0."""
        return staircase_rms_error(self.measured_a, self.expected_a)

    def rms_error_b(self) -> float:
        """Staircase deviation of qubit 2."""
        return staircase_rms_error(self.measured_b, self.expected_b)


def run_allxy_experiment(shots: int = 200, seed: int = 7,
                         noise: NoiseModel | None = None,
                         qubit_a: int = 0, qubit_b: int = 2
                         ) -> AllXYResult:
    """Execute all 42 gate-pair combinations and collect the staircase."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    readout = setup.machine.plant.noise.readout
    steps = list(range(42))
    measured_a: list[float] = []
    measured_b: list[float] = []
    expected_a: list[float] = []
    expected_b: list[float] = []
    for step in steps:
        circuit = allxy_two_qubit_circuit(step, qubit_a=qubit_a,
                                          qubit_b=qubit_b)
        counts = setup.run_circuit_counts(circuit, shots)
        raw_a = counts.excited_fraction(qubit_a)
        raw_b = counts.excited_fraction(qubit_b)
        measured_a.append(correct_population_for_readout(raw_a, readout))
        measured_b.append(correct_population_for_readout(raw_b, readout))
        ideal_a, ideal_b = allxy_two_qubit_expected(step)
        expected_a.append(ideal_a)
        expected_b.append(ideal_b)
    return AllXYResult(steps=steps, measured_a=measured_a,
                       measured_b=measured_b, expected_a=expected_a,
                       expected_b=expected_b)


def format_allxy_table(result: AllXYResult) -> str:
    """Render the Fig. 11 series as text (bench output)."""
    lines = ["step  F|1> q0 (meas/ideal)   F|1> q2 (meas/ideal)"]
    for i, step in enumerate(result.steps):
        lines.append(
            f"{step:4d}  {result.measured_a[i]:.3f} / "
            f"{result.expected_a[i]:.1f}            "
            f"{result.measured_b[i]:.3f} / {result.expected_b[i]:.1f}")
    lines.append(f"RMS error: q0 {result.rms_error_a():.3f}, "
                 f"q2 {result.rms_error_b():.3f}")
    return "\n".join(lines)
