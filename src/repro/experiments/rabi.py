"""Rabi-oscillation calibration experiment (Section 5).

"The Rabi oscillation applies an x-rotation pulse on the qubit after
initialization and then measures it ... this experiment calibrated the
amplitude of the X gate pulse."

The reproduction registers the uncalibrated ``X_AMP_<i>`` operations in
a fresh operation configuration (compile-time operation definition,
Section 3.2), sweeps the amplitude index, and locates the pi-pulse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.isa import two_qubit_instantiation
from repro.core.operations import (
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.experiments.analysis import correct_population_for_readout
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.workloads.rabi import (
    fit_pi_pulse_step,
    rabi_ideal_curve,
    rabi_step_circuit,
)


@dataclass
class RabiResult:
    """The measured oscillation and the calibration outcome."""

    steps: list[int]
    populations: list[float]          # readout-corrected P(1)
    ideal: list[float]
    pi_pulse_step: int

    def max_deviation(self) -> float:
        """Worst per-point deviation from the ideal sinusoid."""
        return max(abs(m - i)
                   for m, i in zip(self.populations, self.ideal))


def run_rabi_experiment(num_steps: int = 21, shots: int = 200,
                        seed: int = 13,
                        noise: NoiseModel | None = None,
                        qubit: int = 2) -> RabiResult:
    """Sweep the pulse amplitude and fit the pi pulse."""
    operations = default_operation_set()
    add_rabi_amplitude_operations(operations, num_steps,
                                  max_angle=2.0 * math.pi)
    isa = two_qubit_instantiation(operations)
    setup = ExperimentSetup.create(isa=isa, noise=noise, seed=seed)
    readout = setup.machine.plant.noise.readout
    populations = []
    for step in range(num_steps):
        circuit = rabi_step_circuit(step, qubit=qubit)
        counts = setup.run_circuit_counts(circuit, shots)
        raw = counts.excited_fraction(qubit)
        populations.append(correct_population_for_readout(raw, readout))
    return RabiResult(
        steps=list(range(num_steps)),
        populations=populations,
        ideal=rabi_ideal_curve(num_steps),
        pi_pulse_step=fit_pi_pulse_step(populations))


def format_rabi_report(result: RabiResult) -> str:
    """Render the oscillation and calibration outcome."""
    lines = ["step  P(1) measured  P(1) ideal"]
    for step, measured, ideal in zip(result.steps, result.populations,
                                     result.ideal):
        lines.append(f"{step:4d}  {measured:13.3f}  {ideal:10.3f}")
    lines.append(f"calibrated pi pulse: X_AMP_{result.pi_pulse_step} "
                 f"(ideal: step {(len(result.steps) - 1) // 2})")
    return "\n".join(lines)
