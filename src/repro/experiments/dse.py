"""Design-space exploration driver (Fig. 7 and the Section 4.2 numbers).

Builds the three benchmark schedules (RB, IM, SR), sweeps the ten
configurations x VLIW widths, and derives every quantity the paper
quotes: instruction counts, reductions vs the Config-1/w=1 baseline,
reductions between configurations, effective operations per bundle
(Config 9), and the QuMIS baseline / issue-rate analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.compiler.configs import (
    DSE_CONFIGS,
    effective_ops_per_bundle,
    sweep,
)
from repro.compiler.quimis import QuMISGenerator, required_issue_rate
from repro.compiler.scheduler import Schedule, schedule_asap
from repro.core.operations import OperationSet, default_operation_set
from repro.workloads.grover_sqrt import grover_sqrt_circuit
from repro.workloads.ising import ising_circuit
from repro.workloads.rb import rb_dse_circuit

#: Paper claims used as shape checks by the benches (Section 4.2).
PAPER_CLAIMS = {
    "rb_w4_reduction_vs_baseline": 0.62,      # "up to 62 % (RB)"
    "config9_w2_eff_ops": {"RB": 1.795, "IM": 1.485, "SR": 1.118},
    "config9_w3_eff_ops": {"RB": 2.296, "IM": 1.622, "SR": 1.147},
    "config9_w4_eff_ops": {"RB": 3.144, "IM": 1.623, "SR": 1.147},
}


@dataclass
class DSEBenchmarks:
    """The three scheduled workloads of Fig. 7."""

    rb: Schedule
    im: Schedule
    sr: Schedule

    def named(self) -> dict[str, Schedule]:
        return {"RB": self.rb, "IM": self.im, "SR": self.sr}


@lru_cache(maxsize=4)
def _cached_benchmarks(rb_cliffords: int, seed: int) -> DSEBenchmarks:
    operations = default_operation_set()
    rb = schedule_asap(rb_dse_circuit(num_qubits=7,
                                      cliffords_per_qubit=rb_cliffords,
                                      seed=seed),
                       operations, name="RB")
    im = schedule_asap(ising_circuit(), operations, name="IM")
    sr = schedule_asap(grover_sqrt_circuit(), operations, name="SR")
    return DSEBenchmarks(rb=rb, im=im, sr=sr)


def build_benchmarks(rb_cliffords: int = 4096,
                     seed: int = 2019) -> DSEBenchmarks:
    """Schedule the three benchmarks (RB size parameterisable: the
    paper uses 4096 Cliffords/qubit; tests use fewer for speed)."""
    return _cached_benchmarks(rb_cliffords, seed)


@dataclass
class DSETable:
    """Fig. 7 as data: counts[benchmark][(config, width)]."""

    counts: dict[str, dict[tuple[int, int], int]] = field(
        default_factory=dict)

    def baseline(self, benchmark: str) -> int:
        """Config 1, w = 1 — the QuMIS-fashion baseline."""
        return self.counts[benchmark][(1, 1)]

    def reduction_vs_baseline(self, benchmark: str, config: int,
                              width: int) -> float:
        """1 - count/baseline: the per-bar reduction of Fig. 7."""
        return 1.0 - (self.counts[benchmark][(config, width)] /
                      self.baseline(benchmark))

    def reduction_between(self, benchmark: str,
                          config_a: int, width_a: int,
                          config_b: int, width_b: int) -> float:
        """Reduction of config_b relative to config_a."""
        a = self.counts[benchmark][(config_a, width_a)]
        b = self.counts[benchmark][(config_b, width_b)]
        return 1.0 - b / a


def run_dse(benchmarks: DSEBenchmarks | None = None,
            max_width: int = 4) -> DSETable:
    """The full Fig. 7 sweep over all benchmarks."""
    benchmarks = benchmarks or build_benchmarks()
    table = DSETable()
    for name, schedule in benchmarks.named().items():
        table.counts[name] = sweep(schedule, max_width=max_width)
    return table


def config9_effective_ops(benchmarks: DSEBenchmarks | None = None
                          ) -> dict[str, dict[int, float]]:
    """Effective quantum operations per bundle, Config 9, w = 2..4."""
    benchmarks = benchmarks or build_benchmarks()
    out: dict[str, dict[int, float]] = {}
    for name, schedule in benchmarks.named().items():
        out[name] = {width: effective_ops_per_bundle(schedule, 9, width)
                     for width in (2, 3, 4)}
    return out


@dataclass
class IssueRateReport:
    """Rreq/Rallowed per benchmark for QuMIS vs the chosen eQASM."""

    quimis: dict[str, float]
    eqasm: dict[str, float]


def issue_rate_analysis(benchmarks: DSEBenchmarks | None = None,
                        operations: OperationSet | None = None
                        ) -> IssueRateReport:
    """The Section 1.2 issue-rate problem, quantified.

    For each benchmark: the ratio of required to available instruction
    issue rate under the QuMIS encoding (Config 1 w=1 with per-qubit
    instructions) and under the paper's eQASM configuration (Config 9,
    w=2).  Ratios above 1.0 mean the encoding cannot sustain the
    timeline.
    """
    from repro.compiler.configs import count_for_config
    benchmarks = benchmarks or build_benchmarks()
    operations = operations or default_operation_set()
    generator = QuMISGenerator(operations)
    quimis: dict[str, float] = {}
    eqasm: dict[str, float] = {}
    for name, schedule in benchmarks.named().items():
        quimis[name] = required_issue_rate(
            schedule, operations, generator.count_instructions(schedule))
        eqasm[name] = required_issue_rate(
            schedule, operations, count_for_config(schedule, 9, 2))
    return IssueRateReport(quimis=quimis, eqasm=eqasm)


def format_dse_table(table: DSETable) -> str:
    """Render Fig. 7 as a text table (bench output)."""
    lines = []
    for benchmark, counts in table.counts.items():
        lines.append(f"--- {benchmark} ---")
        lines.append("config  " + "".join(f"  w={w:<8d}" for w in
                                          range(1, 5)))
        for number in sorted(DSE_CONFIGS):
            cells = []
            for width in range(1, 5):
                value = counts.get((number, width))
                cells.append(f"  {value:<9d}" if value is not None
                             else "  -        ")
            lines.append(f"{number:6d}" + "".join(cells))
        baseline = table.baseline(benchmark)
        lines.append(f"baseline (config 1, w=1): {baseline}")
    return "\n".join(lines)
