"""Experiment runners reproducing every table and figure of the paper."""

from repro.experiments.allxy import AllXYResult, run_allxy_experiment
from repro.experiments.analysis import (
    RBFit,
    correct_population_for_readout,
    fit_rb_decay,
    logspaced_lengths,
    staircase_rms_error,
)
from repro.experiments.cfc import (
    CFCVerificationResult,
    LatencyResult,
    measure_feedback_latencies,
    run_cfc_verification,
)
from repro.experiments.coherence import (
    CoherenceResult,
    run_ramsey_experiment,
    run_t1_experiment,
)
from repro.experiments.dse import (
    DSEBenchmarks,
    DSETable,
    IssueRateReport,
    build_benchmarks,
    config9_effective_ops,
    issue_rate_analysis,
    run_dse,
)
from repro.experiments.grover import GroverResult, run_grover_experiment
from repro.experiments.rabi import RabiResult, run_rabi_experiment
from repro.experiments.rb_timing import (
    RBCurve,
    RBTimingResult,
    run_rb_timing_experiment,
)
from repro.experiments.reset import ResetResult, run_active_reset_experiment
from repro.experiments.surface_code import (
    Surface17Result,
    Surface49Result,
    SurfaceCodeResult,
    run_looped_surface_code_experiment,
    run_surface17_experiment,
    run_surface49_experiment,
    run_surface_code_experiment,
)
from repro.experiments.runner import (
    ExperimentSetup,
    RetryPolicy,
    excited_fraction,
    ground_fraction,
    outcome_counts,
)

__all__ = [
    "AllXYResult",
    "CFCVerificationResult",
    "CoherenceResult",
    "DSEBenchmarks",
    "DSETable",
    "ExperimentSetup",
    "GroverResult",
    "IssueRateReport",
    "LatencyResult",
    "RBCurve",
    "RBFit",
    "RBTimingResult",
    "RabiResult",
    "RetryPolicy",
    "ResetResult",
    "build_benchmarks",
    "config9_effective_ops",
    "correct_population_for_readout",
    "excited_fraction",
    "fit_rb_decay",
    "ground_fraction",
    "issue_rate_analysis",
    "logspaced_lengths",
    "measure_feedback_latencies",
    "outcome_counts",
    "run_active_reset_experiment",
    "run_allxy_experiment",
    "run_cfc_verification",
    "run_dse",
    "run_grover_experiment",
    "run_rabi_experiment",
    "run_ramsey_experiment",
    "run_rb_timing_experiment",
    "run_looped_surface_code_experiment",
    "run_surface17_experiment",
    "run_surface49_experiment",
    "run_surface_code_experiment",
    "run_t1_experiment",
    "Surface17Result",
    "Surface49Result",
    "SurfaceCodeResult",
    "staircase_rms_error",
]
