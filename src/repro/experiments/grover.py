"""Two-qubit Grover's search with tomography (Section 5).

"As a proof of concept ... we executed a two-qubit Grover's search
algorithm.  The algorithmic fidelity, i.e., correcting for readout
infidelity, is found to be 85.6 % using quantum tomography with
maximum likelihood estimation.  This fidelity is limited by the CZ
gate."

Pipeline: for each of the four oracles, append each of the nine
tomography pre-rotation settings to the search circuit, execute the
compiled binaries, correct the measured expectation values for readout
error, reconstruct the state by MLE, and compute the fidelity to the
ideal marked state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Circuit
from repro.experiments.runner import ExperimentSetup, outcome_counts
from repro.quantum.noise import NoiseModel
from repro.quantum.tomography import (
    correct_expectations_for_readout,
    expectation_from_counts,
    measurement_settings,
    mle_tomography,
    state_fidelity,
)
from repro.workloads.grover2q import grover2q_circuit, grover2q_ideal_state

PAPER_GROVER_FIDELITY = 0.856

#: Pre-rotation operation names per readout basis (native gate set).
PREROTATION_NAME = {"X": "YM90", "Y": "X90", "Z": None}


@dataclass
class GroverResult:
    """Tomography fidelity per oracle and the average."""

    fidelities: dict[int, float]

    @property
    def average_fidelity(self) -> float:
        return sum(self.fidelities.values()) / len(self.fidelities)

    def matches_paper(self, tolerance: float = 0.06) -> bool:
        return abs(self.average_fidelity -
                   PAPER_GROVER_FIDELITY) <= tolerance


def tomography_circuit(marked_state: int, bases: tuple[str, str],
                       qubit_a: int = 0, qubit_b: int = 2) -> Circuit:
    """Search circuit + pre-rotations + simultaneous measurement."""
    circuit = grover2q_circuit(marked_state, qubit_a=qubit_a,
                               qubit_b=qubit_b, native=True)
    for qubit, basis in ((qubit_a, bases[0]), (qubit_b, bases[1])):
        name = PREROTATION_NAME[basis]
        if name is not None:
            circuit.add(name, qubit)
    circuit.add("MEASZ", qubit_a)
    circuit.add("MEASZ", qubit_b)
    return circuit


def run_grover_tomography(marked_state: int, setup: ExperimentSetup,
                          shots: int = 300, qubit_a: int = 0,
                          qubit_b: int = 2) -> float:
    """Fidelity of one oracle's output state via MLE tomography."""
    readout = setup.machine.plant.noise.readout
    fidelity_q = readout.assignment_fidelity
    setting_expectations = {}
    for setting in measurement_settings():
        circuit = tomography_circuit(marked_state, setting.bases,
                                     qubit_a, qubit_b)
        traces = setup.run_circuit(circuit, shots)
        counts = outcome_counts(traces, qubit_a, qubit_b)
        expectations = expectation_from_counts(counts)
        corrected = correct_expectations_for_readout(
            expectations, fidelity_q, fidelity_q)
        setting_expectations[setting.bases] = corrected
    rho = mle_tomography(setting_expectations)
    ideal = grover2q_ideal_state(marked_state)
    return state_fidelity(rho, ideal)


def run_grover_experiment(shots: int = 300, seed: int = 17,
                          noise: NoiseModel | None = None
                          ) -> GroverResult:
    """All four oracles; returns per-oracle and average fidelities."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    fidelities = {}
    for marked_state in range(4):
        fidelities[marked_state] = run_grover_tomography(
            marked_state, setup, shots=shots)
    return GroverResult(fidelities=fidelities)


def format_grover_report(result: GroverResult) -> str:
    """Render per-oracle fidelities vs the paper's average."""
    lines = ["two-qubit Grover search, MLE tomography fidelity:"]
    for marked_state, fidelity in sorted(result.fidelities.items()):
        lines.append(f"  oracle |{marked_state:02b}>: "
                     f"{fidelity * 100:.1f}%")
    lines.append(f"  average: {result.average_fidelity * 100:.1f}%  "
                 f"(paper: 85.6%, CZ-limited)")
    return "\n".join(lines)
