"""T1 / Ramsey coherence experiments (the Section 2.2 requirement).

"The design of eQASM focuses on providing a comprehensive abstraction
... which can support ... some quantum experiments such as measuring
the relaxation time of qubits (T1 experiment)."  These runners execute
the hand-rolled wait-sweep programs on the machine and fit the decay,
closing the loop: the *fitted* T1/T2 should recover the constants the
plant was configured with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.workloads.coherence import (
    ramsey_program,
    sweep_waits,
    t1_program,
)


@dataclass
class CoherenceResult:
    """A decay sweep with its fitted time constant (in ns)."""

    waits_ns: list[float]
    populations: list[float]
    fitted_constant_ns: float
    configured_constant_ns: float

    @property
    def relative_error(self) -> float:
        """|fitted - configured| / configured."""
        return abs(self.fitted_constant_ns -
                   self.configured_constant_ns) / \
            self.configured_constant_ns


def _exponential(t, amplitude, tau, offset):
    return amplitude * np.exp(-t / tau) + offset


def run_t1_experiment(max_wait_cycles: int = 4096, points: int = 10,
                      qubit: int = 2, seed: int = 19,
                      noise: NoiseModel | None = None) -> CoherenceResult:
    """Sweep the T1 wait and fit the relaxation constant."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    decoherence = setup.machine.plant.noise.decoherence
    cycle_ns = setup.isa.cycle_time_ns
    waits = sweep_waits(max_wait_cycles, points)
    populations = []
    for wait in waits:
        # Execute the program without its final MEASZ and read the
        # excited population exactly from the plant (sampling-free,
        # like the RB runner).  The plant idles lazily, so advance it
        # explicitly to the cycle where MEASZ would have triggered.
        probe = t1_program(qubit, wait)
        probe.instructions = [ins for ins in probe.instructions
                              if not _is_measure_bundle(ins)]
        assembled = setup.assembler.assemble_program(probe)
        setup.machine.load(assembled)
        trace = setup.machine.run_shot()
        pulse_trigger = max(t.trigger_ns for t in trace.triggers)
        setup.machine.plant.idle_all_until(pulse_trigger +
                                           wait * cycle_ns)
        populations.append(setup.machine.plant.probability_one(qubit))
    waits_ns = [wait * cycle_ns for wait in waits]
    params, _ = curve_fit(_exponential, np.array(waits_ns),
                          np.array(populations),
                          p0=(1.0, decoherence.t1_ns, 0.0),
                          maxfev=20000)
    return CoherenceResult(waits_ns=waits_ns, populations=populations,
                           fitted_constant_ns=float(params[1]),
                           configured_constant_ns=decoherence.t1_ns)


def run_ramsey_experiment(max_wait_cycles: int = 2048, points: int = 10,
                          qubit: int = 2, seed: int = 23,
                          noise: NoiseModel | None = None
                          ) -> CoherenceResult:
    """Sweep the Ramsey wait and fit the dephasing constant (T2)."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    decoherence = setup.machine.plant.noise.decoherence
    cycle_ns = setup.isa.cycle_time_ns
    waits = sweep_waits(max_wait_cycles, points)
    populations = []
    for wait in waits:
        probe = ramsey_program(qubit, wait)
        probe.instructions = [ins for ins in probe.instructions
                              if not _is_measure_bundle(ins)]
        assembled = setup.assembler.assemble_program(probe)
        setup.machine.load(assembled)
        setup.machine.run_shot()
        populations.append(setup.machine.plant.probability_one(qubit))
    waits_ns = [wait * cycle_ns for wait in waits]
    params, _ = curve_fit(_exponential, np.array(waits_ns),
                          np.array(populations),
                          p0=(0.5, decoherence.t2_ns, 0.5),
                          maxfev=20000)
    return CoherenceResult(waits_ns=waits_ns, populations=populations,
                           fitted_constant_ns=float(params[1]),
                           configured_constant_ns=decoherence.t2_ns)


def _is_measure_bundle(instruction) -> bool:
    """Whether an instruction is a bundle containing MEASZ."""
    from repro.core.instructions import Bundle
    if not isinstance(instruction, Bundle):
        return False
    return any(op.name == "MEASZ" for op in instruction.operations)


def format_coherence_report(name: str, result: CoherenceResult) -> str:
    """Render a decay sweep and its fit."""
    lines = [f"{name} sweep:"]
    for wait, population in zip(result.waits_ns, result.populations):
        lines.append(f"  t = {wait:9.0f} ns   P = {population:.4f}")
    lines.append(
        f"  fitted {name} = {result.fitted_constant_ns / 1000:.1f} us "
        f"(configured {result.configured_constant_ns / 1000:.1f} us, "
        f"error {result.relative_error * 100:.1f}%)")
    return "\n".join(lines)
