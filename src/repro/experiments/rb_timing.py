"""Single-qubit randomized benchmarking vs gate interval (Fig. 12).

"Single-qubit randomized benchmarking was performed for different
intervals between the starting points of consecutive gates (320, 160,
80, 40, and 20 ns) ... the average error per gate decreases by a factor
of ~7, from 0.71 % to 0.10 % when decreasing the interval from 320 ns
to 20 ns."

The reproduction compiles each RB sequence at the requested interval,
executes the binary on the microarchitecture + plant, and reads the
exact survival probability (sampling-noise-free; see
``ExperimentSetup.survival_probability``) before fitting the decay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.analysis import RBFit, fit_rb_decay, \
    logspaced_lengths
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.workloads.rb import rb_sequence_circuit

#: The paper's interval sweep (ns) and measured error-per-gate values.
PAPER_INTERVALS_NS = (320, 160, 80, 40, 20)
PAPER_ERROR_PER_GATE = {320: 0.0071, 160: 0.0035, 80: 0.0020,
                        40: 0.0012, 20: 0.0010}


@dataclass
class RBCurve:
    """One decay curve: survival vs Clifford count at one interval."""

    interval_ns: int
    lengths: list[int]
    survivals: list[float]
    fit: RBFit

    @property
    def error_per_gate(self) -> float:
        return self.fit.error_per_gate


@dataclass
class RBTimingResult:
    """The full Fig. 12 dataset."""

    curves: list[RBCurve] = field(default_factory=list)

    def error_by_interval(self) -> dict[int, float]:
        return {curve.interval_ns: curve.error_per_gate
                for curve in self.curves}

    def improvement_factor(self) -> float:
        """Error ratio between the longest and shortest interval."""
        errors = self.error_by_interval()
        longest = max(errors)
        shortest = min(errors)
        if errors[shortest] <= 0:
            return float("inf")
        return errors[longest] / errors[shortest]


def run_rb_at_interval(setup: ExperimentSetup, interval_cycles: int,
                       lengths: list[int], num_sequences: int,
                       qubit: int, rng: np.random.Generator) -> RBCurve:
    """Measure the decay curve for one gate interval."""
    survivals = []
    for k in lengths:
        values = []
        for _ in range(num_sequences):
            circuit = rb_sequence_circuit(
                k, rng, qubit=qubit,
                num_qubits=max(qubit + 1, 1),
                include_measurement=False)
            values.append(setup.survival_probability(
                circuit, qubit, interval_cycles=interval_cycles))
        survivals.append(float(np.mean(values)))
    fit = fit_rb_decay(lengths, survivals)
    return RBCurve(interval_ns=int(interval_cycles * 20),
                   lengths=list(lengths), survivals=survivals, fit=fit)


def run_rb_timing_experiment(intervals_ns=PAPER_INTERVALS_NS,
                             max_length: int = 2000,
                             num_lengths: int = 8,
                             num_sequences: int = 3,
                             qubit: int = 0, seed: int = 11,
                             noise: NoiseModel | None = None
                             ) -> RBTimingResult:
    """The full interval sweep of Fig. 12."""
    setup = ExperimentSetup.create(noise=noise, seed=seed)
    rng = np.random.default_rng(seed)
    lengths = logspaced_lengths(max_length, num_lengths, minimum=2)
    result = RBTimingResult()
    for interval_ns in intervals_ns:
        interval_cycles = max(1, round(interval_ns / 20))
        result.curves.append(
            run_rb_at_interval(setup, interval_cycles, lengths,
                               num_sequences, qubit, rng))
    return result


def format_rb_table(result: RBTimingResult) -> str:
    """Render the Fig. 12 legend numbers: eps(interval) vs paper."""
    lines = ["interval   eps measured   eps paper"]
    for curve in sorted(result.curves, key=lambda c: -c.interval_ns):
        paper = PAPER_ERROR_PER_GATE.get(curve.interval_ns)
        paper_text = f"{paper * 100:.2f}%" if paper else "-"
        lines.append(f"{curve.interval_ns:5d} ns   "
                     f"{curve.error_per_gate * 100:10.2f}%   {paper_text}")
    lines.append(f"improvement factor (320 -> 20 ns): "
                 f"{result.improvement_factor():.1f} (paper: ~7)")
    return "\n".join(lines)
