"""CFC verification and feedback-latency measurement (Section 5).

Two reproductions:

* **CFC verification** — the Fig. 5 program with the measurement unit
  "programmed to generate alternative mock measurement results"; the
  observable is strict X/Y alternation of the conditioned operation
  (the paper verified the alternating digital outputs on a scope).
* **Feedback latencies** — "the time between sending the measurement
  result into the Central Controller and receiving the digital output
  based on the feedback": ~92 ns for fast conditional execution and
  ~316 ns for CFC.  The reproduction measures both paths on the
  simulated microarchitecture with minimal-wait probe programs,
  scanning the programmed wait to find the shortest correct schedule
  (shorter waits would sample a stale flag / stall the timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.uarch.replay import EngineStats

PAPER_FAST_CONDITIONAL_LATENCY_NS = 92.0
PAPER_CFC_LATENCY_NS = 316.0

#: Fig. 5's program (qubit 1 renamed to on-chip qubit 2, as the
#: two-qubit setup names its qubits 0 and 2).
FIG5_PROGRAM = """
SMIS S0, {0}
SMIS S2, {2}
LDI R0, 1
MEASZ S2
QWAIT 30
FMR R1, Q2
CMP R1, R0
BR EQ, eq_path
ne_path:
X S0
BR ALWAYS, next
eq_path:
Y S0
next:
STOP
"""

#: Two rounds of measure -> FMR -> branch -> conditioned X/Y (Fig. 5
#: doubled, with a superposing X90 before each measurement so both
#: branches stay reachable on the real plant).  The CFC workhorse of
#: the branch-resolved replay cross-checks and throughput benchmark.
CFC_TWO_ROUND_PROGRAM = """
SMIS S0, {0}
SMIS S2, {2}
LDI R0, 1
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
FMR R1, Q2
CMP R1, R0
BR EQ, eq1
X S0
BR ALWAYS, join1
eq1:
Y S0
join1:
X90 S2
MEASZ S2
QWAIT 50
FMR R2, Q2
CMP R2, R0
BR EQ, eq2
X S0
BR ALWAYS, join2
eq2:
Y S0
join2:
QWAIT 50
STOP
"""


#: The scratch-memory CFC kernel: both round results are spilled to
#: data memory, reloaded, combined and deposited for the host — the
#: comprehensive-benchmark shape that mixes feedback with same-shot
#: ST -> LD traffic.  Every load is dominated by a same-shot store to
#: its address, so the kill-analysis in :mod:`repro.uarch.dataflow`
#: proves the traffic shot-local and the program rides the replay
#: engine (``EngineStats.killed_loads``); the reloaded first-round
#: result steers the final conditioned X/Y exactly like the pure-GPR
#: CFC programs.
CFC_SCRATCH_PROGRAM = """
SMIS S0, {0}
SMIS S2, {2}
LDI R0, 1
LDI R2, 64
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
FMR R1, Q2
ST R1, R2(0)
X90 S2
MEASZ S2
QWAIT 50
FMR R3, Q2
ST R3, R2(4)
LD R4, R2(0)
LD R5, R2(4)
ADD R6, R4, R5
ST R6, R2(8)
CMP R4, R0
BR EQ, eq
X S0
BR ALWAYS, join
eq:
Y S0
join:
QWAIT 50
STOP
"""


@dataclass
class CFCVerificationResult:
    """Outcome of the mock-result alternation test."""

    applied_operations: list[str]
    #: Per-run engine statistics — mock-result programs ride the
    #: branch-resolved replay path (the draining queues key the
    #: timeline tree's roots), so this documents the engine mix.
    engine_stats: EngineStats = field(default_factory=EngineStats)

    @property
    def alternates(self) -> bool:
        """Whether the output strictly alternates X, Y, X, Y, ..."""
        expected = ["X", "Y"] * (len(self.applied_operations) // 2 + 1)
        return self.applied_operations == \
            expected[:len(self.applied_operations)]


def run_cfc_verification(rounds: int = 16, seed: int = 3
                         ) -> CFCVerificationResult:
    """Run Fig. 5 with alternating mock results (0, 1, 0, 1, ...).

    Each round is one shot; the conditioned operation on qubit 0 is
    read from the shot's trigger records (operations that actually
    drove the ADI), streamed shot by shot.
    """
    setup = ExperimentSetup.create(noise=NoiseModel.noiseless(),
                                   seed=seed)
    pattern = [i % 2 for i in range(rounds)]
    setup.machine.measurement_unit.inject_mock_results(2, pattern)
    assembled = setup.assemble_text(FIG5_PROGRAM)
    applied: list[str] = []
    for trace in setup.run_iter(assembled, rounds):
        applied.extend(record.name for record in trace.triggers
                       if record.qubits == (0,) and record.executed)
    return CFCVerificationResult(applied_operations=applied,
                                 engine_stats=setup.last_engine_stats)


@dataclass
class LatencyResult:
    """Measured feedback latencies of both mechanisms."""

    fast_conditional_ns: float
    cfc_ns: float

    def fast_conditional_matches(self, tolerance_ns: float = 25.0) -> bool:
        return abs(self.fast_conditional_ns -
                   PAPER_FAST_CONDITIONAL_LATENCY_NS) <= tolerance_ns

    def cfc_matches(self, tolerance_ns: float = 60.0) -> bool:
        return abs(self.cfc_ns - PAPER_CFC_LATENCY_NS) <= tolerance_ns


def _fast_conditional_probe(setup: ExperimentSetup,
                            wait_cycles: int) -> float | None:
    """Latency of one fast-conditional probe, or None if invalid.

    Program: measure, wait, conditional C_X.  The probe is invalid when
    the C_X triggers before the execution flag refreshed (stale-flag
    race: the gate would be cancelled although the result was |1>).
    """
    machine = setup.machine
    machine.measurement_unit.clear_mock_results()
    machine.measurement_unit.inject_mock_results(2, [1])
    assembled = setup.assemble_text(f"""
    SMIS S2, {{2}}
    MEASZ S2
    QWAIT {wait_cycles}
    C_X S2
    STOP
    """)
    machine.load(assembled)
    trace = machine.run_shot()
    cx = [t for t in trace.triggers if t.name == "C_X"]
    if not cx or not cx[0].executed:
        return None  # stale flag: wait too short
    result_arrival = trace.results[0].arrival_ns
    if cx[0].trigger_ns < result_arrival:
        return None
    return cx[0].output_ns - result_arrival


def _cfc_probe(setup: ExperimentSetup, wait_cycles: int) -> float | None:
    """Latency of one CFC probe, or None if the schedule was invalid."""
    from repro.core.errors import TimingViolationError
    machine = setup.machine
    machine.measurement_unit.clear_mock_results()
    machine.measurement_unit.inject_mock_results(2, [1])
    assembled = setup.assemble_text(f"""
    SMIS S0, {{0}}
    SMIS S2, {{2}}
    LDI R0, 1
    MEASZ S2
    QWAIT {wait_cycles}
    FMR R1, Q2
    CMP R1, R0
    BR EQ, eq_path
    X S0
    BR ALWAYS, next
    eq_path:
    Y S0
    next:
    STOP
    """)
    machine.load(assembled)
    try:
        trace = machine.run_shot()
    except TimingViolationError:
        return None
    conditioned = [t for t in trace.triggers if t.name in ("X", "Y")]
    if not conditioned:
        return None
    result_arrival = trace.results[0].arrival_ns
    return conditioned[0].output_ns - result_arrival


def measure_feedback_latencies(seed: int = 0) -> LatencyResult:
    """Scan programmed waits for the minimal correct latency of each path."""
    setup = ExperimentSetup.create(noise=NoiseModel.noiseless(), seed=seed)
    fast = min((latency for wait in range(14, 40)
                if (latency := _fast_conditional_probe(setup, wait))
                is not None), default=float("nan"))
    cfc = min((latency for wait in range(14, 60)
               if (latency := _cfc_probe(setup, wait)) is not None),
              default=float("nan"))
    return LatencyResult(fast_conditional_ns=fast, cfc_ns=cfc)


def format_latency_report(result: LatencyResult) -> str:
    """Render latencies vs the paper's measurements."""
    return (
        f"feedback latency (result into controller -> digital output):\n"
        f"  fast conditional execution: "
        f"{result.fast_conditional_ns:.0f} ns   (paper: ~92 ns)\n"
        f"  comprehensive feedback control: "
        f"{result.cfc_ns:.0f} ns   (paper: ~316 ns)")
