"""Distance-2 surface-code error detection on the full stack.

Runs repeated syndrome extraction on the seven-qubit instantiation —
the machine compiles and executes the rounds, ancilla measurement
results stream back per round, and an injected data-qubit error must
flip exactly the stabilizers it anticommutes with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.isa import seven_qubit_instantiation
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.uarch.replay import EngineStats
from repro.workloads.surface_code import (
    Syndrome,
    surface_code_circuit,
)


@dataclass
class SurfaceCodeResult:
    """Per-round syndromes over all shots."""

    rounds: int
    syndromes_per_shot: list[list[Syndrome]]
    #: Per-run engine statistics — repeated syndrome extraction rides
    #: the branch-resolved replay tree (one cached path per observed
    #: ancilla-outcome history).
    engine_stats: EngineStats = field(default_factory=EngineStats)

    def detection_fraction(self, round_index: int) -> float:
        """Fraction of shots whose syndrome fired in a given round."""
        fired = sum(1 for shot in self.syndromes_per_shot
                    if shot[round_index].fired())
        return fired / len(self.syndromes_per_shot)


def run_surface_code_experiment(
        rounds: int = 2,
        error: tuple[str, int] | None = None,
        error_after_round: int = 0,
        shots: int = 50, seed: int = 29,
        noise: NoiseModel | None = None) -> SurfaceCodeResult:
    """Execute syndrome rounds and collect per-round Z syndromes.

    Shots are streamed: each trace is reduced to its per-round
    syndromes as it is produced, so only O(rounds) data per shot is
    retained while the machine replays cached outcome paths.
    """
    setup = ExperimentSetup.create(
        isa=seven_qubit_instantiation(),
        noise=noise if noise is not None else NoiseModel.noiseless(),
        seed=seed)
    circuit = surface_code_circuit(rounds=rounds, error=error,
                                   error_after_round=error_after_round)
    syndromes_per_shot: list[list[Syndrome]] = []
    for trace in setup.run_circuit_iter(circuit, shots):
        results_2 = [r.reported_result for r in trace.results_for(2)]
        results_4 = [r.reported_result for r in trace.results_for(4)]
        if len(results_2) != rounds or len(results_4) != rounds:
            raise RuntimeError(
                f"expected {rounds} ancilla results per shot, got "
                f"{len(results_2)}/{len(results_4)}")
        shot_syndromes = [Syndrome(z_check_2=results_2[i],
                                   z_check_4=results_4[i])
                          for i in range(rounds)]
        syndromes_per_shot.append(shot_syndromes)
    return SurfaceCodeResult(rounds=rounds,
                             syndromes_per_shot=syndromes_per_shot,
                             engine_stats=setup.last_engine_stats)


def format_surface_code_report(clean: SurfaceCodeResult,
                               faulty: SurfaceCodeResult,
                               error: tuple[str, int]) -> str:
    """Render clean-vs-faulty detection fractions per round."""
    lines = ["distance-2 surface code, Z-syndrome detection:"]
    for round_index in range(clean.rounds):
        lines.append(
            f"  round {round_index}: clean "
            f"{clean.detection_fraction(round_index) * 100:5.1f}%   "
            f"with {error[0]} on q{error[1]} "
            f"{faulty.detection_fraction(round_index) * 100:5.1f}%")
    return "\n".join(lines)
