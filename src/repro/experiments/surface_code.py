"""Distance-2 surface-code error detection on the full stack.

Runs repeated syndrome extraction on the seven-qubit instantiation —
the machine compiles and executes the rounds, ancilla measurement
results stream back per round, and an injected data-qubit error must
flip exactly the stabilizers it anticommutes with.

Two program shapes are covered:

* the **compiler path** (:func:`run_surface_code_experiment`):
  :func:`~repro.workloads.surface_code.surface_code_circuit` unrolls
  the rounds at compile time and the backend emits straight-line
  eQASM;
* the **looped binary** (:func:`run_looped_surface_code_experiment`):
  one hand-written syndrome round inside a counted ``SUB``/``CMP``/
  ``BR`` loop — the instruction-memory-friendly form a real control
  processor would run for many rounds.  The dataflow pass unrolls the
  counter statically, so the looping binary still rides the
  branch-resolved replay engine (``EngineStats.bounded_loops``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ExperimentIntegrityError, InvalidRequestError
from repro.core.isa import (
    forty_nine_qubit_instantiation,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
)
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.uarch.replay import EngineStats
from repro.workloads.surface17 import (
    SURFACE17_Z_ANCILLAS,
    Syndrome17,
    surface17_circuit,
)
from repro.workloads.surface49 import (
    SURFACE49_Z_ANCILLAS,
    Syndrome49,
    surface49_circuit,
)
from repro.workloads.surface_code import (
    Syndrome,
    surface_code_circuit,
)

#: One parallel Z-syndrome round (both ancillas masked together, the
#: CZ layers paired per SMIT register) inside a counted loop — the
#: ``{rounds}`` placeholder is the trip count.  Ancilla reset is the
#: paper's own mechanism (Fig. 4): a C_X conditioned on the last
#: result, fired after the execution flags refreshed.
LOOPED_SURFACE_CODE_TEMPLATE = """
SMIS S1, {{2, 4}}
SMIT T0, {{(2, 0), (4, 1)}}
SMIT T1, {{(2, 5), (4, 6)}}
LDI R0, 1
LDI R3, {rounds}
QWAIT 10000
loop:
Y90 S1
QWAIT 5
CZ T0
QWAIT 5
CZ T1
QWAIT 5
YM90 S1
QWAIT 50
MEASZ S1
QWAIT 50
{reset}SUB R3, R3, R0
CMP R3, R0
BR GE, loop
QWAIT 50
STOP
"""


def looped_surface_code_program(rounds: int, reset: bool = True) -> str:
    """The counted-loop syndrome-extraction binary (eQASM text).

    ``reset=False`` omits the conditional ``C_X`` ancilla reset —
    the feedback-free loop variant whose gate sequence cannot fork
    on per-shot outcomes, which is what the Pauli-frame batched
    engine requires (with data in |00..0> the noise-free Z ancillas
    end in |0> anyway).
    """
    if rounds < 1:
        raise InvalidRequestError(
            f"need at least one round, got {rounds}")
    reset_block = "C_X S1\nQWAIT 5\n" if reset else ""
    return LOOPED_SURFACE_CODE_TEMPLATE.format(rounds=rounds,
                                               reset=reset_block)


@dataclass
class SurfaceCodeResult:
    """Per-round syndromes over all shots."""

    rounds: int
    syndromes_per_shot: list[list[Syndrome]]
    #: Per-run engine statistics — repeated syndrome extraction rides
    #: the branch-resolved replay tree (one cached path per observed
    #: ancilla-outcome history).
    engine_stats: EngineStats = field(default_factory=EngineStats)

    def detection_fraction(self, round_index: int) -> float:
        """Fraction of shots whose syndrome fired in a given round."""
        fired = sum(1 for shot in self.syndromes_per_shot
                    if shot[round_index].fired())
        return fired / len(self.syndromes_per_shot)


def run_surface_code_experiment(
        rounds: int = 2,
        error: tuple[str, int] | None = None,
        error_after_round: int = 0,
        shots: int = 50, seed: int = 29,
        noise: NoiseModel | None = None) -> SurfaceCodeResult:
    """Execute syndrome rounds and collect per-round Z syndromes.

    Shots are streamed: each trace is reduced to its per-round
    syndromes as it is produced, so only O(rounds) data per shot is
    retained while the machine replays cached outcome paths.
    """
    setup = ExperimentSetup.create(
        isa=seven_qubit_instantiation(),
        noise=noise if noise is not None else NoiseModel.noiseless(),
        seed=seed)
    circuit = surface_code_circuit(rounds=rounds, error=error,
                                   error_after_round=error_after_round)
    syndromes_per_shot: list[list[Syndrome]] = []
    for trace in setup.run_circuit_iter(circuit, shots):
        results_2 = [r.reported_result for r in trace.results_for(2)]
        results_4 = [r.reported_result for r in trace.results_for(4)]
        if len(results_2) != rounds or len(results_4) != rounds:
            raise ExperimentIntegrityError(
                f"expected {rounds} ancilla results per shot, got "
                f"{len(results_2)}/{len(results_4)}",
                expected=rounds, got=(len(results_2), len(results_4)))
        shot_syndromes = [Syndrome(z_check_2=results_2[i],
                                   z_check_4=results_4[i])
                          for i in range(rounds)]
        syndromes_per_shot.append(shot_syndromes)
    return SurfaceCodeResult(rounds=rounds,
                             syndromes_per_shot=syndromes_per_shot,
                             engine_stats=setup.last_engine_stats)


def run_looped_surface_code_experiment(
        rounds: int = 4,
        shots: int = 200, seed: int = 29,
        noise: NoiseModel | None = None) -> SurfaceCodeResult:
    """Execute the counted-loop syndrome binary and collect syndromes.

    Unlike :func:`run_surface_code_experiment` the rounds are *not*
    unrolled at compile time: the machine genuinely executes the
    backward branch every round, and the static analysis proves the
    trip count so the whole run still replays.  Shots are streamed and
    reduced to per-round Z syndromes exactly like the compiled path.
    """
    setup = ExperimentSetup.create(
        isa=seven_qubit_instantiation(),
        noise=noise if noise is not None else NoiseModel.noiseless(),
        seed=seed)
    assembled = setup.assemble_text(looped_surface_code_program(rounds))
    syndromes_per_shot: list[list[Syndrome]] = []
    for trace in setup.run_iter(assembled, shots):
        results_2 = [r.reported_result for r in trace.results_for(2)]
        results_4 = [r.reported_result for r in trace.results_for(4)]
        if len(results_2) != rounds or len(results_4) != rounds:
            raise ExperimentIntegrityError(
                f"expected {rounds} ancilla results per shot, got "
                f"{len(results_2)}/{len(results_4)}",
                expected=rounds, got=(len(results_2), len(results_4)))
        syndromes_per_shot.append(
            [Syndrome(z_check_2=results_2[i], z_check_4=results_4[i])
             for i in range(rounds)])
    return SurfaceCodeResult(rounds=rounds,
                             syndromes_per_shot=syndromes_per_shot,
                             engine_stats=setup.last_engine_stats)


@dataclass
class Surface17Result:
    """Per-round distance-3 Z syndromes over all shots."""

    rounds: int
    syndromes_per_shot: list[list[Syndrome17]]
    #: Which plant backend held the 17-qubit state ("stabilizer" —
    #: the dense matrix cannot even be allocated at this width).
    plant_backend: str | None = None
    engine_stats: EngineStats = field(default_factory=EngineStats)

    def detection_fraction(self, round_index: int) -> float:
        """Fraction of shots whose syndrome fired in a given round."""
        fired = sum(1 for shot in self.syndromes_per_shot
                    if shot[round_index].fired())
        return fired / len(self.syndromes_per_shot)


def run_surface17_experiment(
        rounds: int = 2,
        error: tuple[str, int] | None = None,
        error_after_round: int = 0,
        shots: int = 50, seed: int = 29,
        noise: NoiseModel | None = None,
        plant_backend: str = "auto") -> Surface17Result:
    """Distance-3 syndrome extraction on the 17-qubit chip.

    This experiment is *only* runnable on the stabilizer-tableau plant
    backend — a 17-qubit density matrix is ~256 GB — so the noise model
    must stay Pauli/readout-only (the default is noiseless); the
    machine's automatic backend selection then picks the tableau, and
    with zero gate error the branch-resolved replay tree compounds on
    top.  Shots are streamed and reduced to per-round Z syndromes
    exactly like the distance-2 experiment.

    ``plant_backend`` is forwarded to the machine.  Pinning ``"dense"``
    does *not* OOM the host: admission control refuses the ~256 GB
    density matrix up front with a structured
    :class:`~repro.core.errors.ResourceError` whose context carries the
    byte estimate, the budget, and the suggestion to use
    ``plant_backend='stabilizer'``.
    """
    setup = ExperimentSetup.create(
        isa=seventeen_qubit_instantiation(),
        noise=noise if noise is not None else NoiseModel.noiseless(),
        seed=seed, plant_backend=plant_backend)
    circuit = surface17_circuit(rounds=rounds, error=error,
                                error_after_round=error_after_round)
    syndromes_per_shot: list[list[Syndrome17]] = []
    for trace in setup.run_circuit_iter(circuit, shots):
        per_ancilla = {
            ancilla: [r.reported_result
                      for r in trace.results_for(ancilla)]
            for ancilla in SURFACE17_Z_ANCILLAS}
        for ancilla, results in per_ancilla.items():
            if len(results) != rounds:
                raise ExperimentIntegrityError(
                    f"expected {rounds} results on ancilla {ancilla} "
                    f"per shot, got {len(results)}",
                    expected=rounds, got=len(results), ancilla=ancilla)
        syndromes_per_shot.append([
            Syndrome17(z_checks=tuple(
                (ancilla, per_ancilla[ancilla][index])
                for ancilla in SURFACE17_Z_ANCILLAS))
            for index in range(rounds)])
    return Surface17Result(rounds=rounds,
                           syndromes_per_shot=syndromes_per_shot,
                           plant_backend=setup.last_plant_backend,
                           engine_stats=setup.last_engine_stats)


@dataclass
class Surface49Result:
    """Per-round distance-5 Z syndromes over all shots."""

    rounds: int
    syndromes_per_shot: list[list[Syndrome49]]
    #: Which plant backend held the 49-qubit state ("stabilizer" —
    #: ~10k bit-packed tableau bits; a dense matrix is unthinkable).
    plant_backend: str | None = None
    engine_stats: EngineStats = field(default_factory=EngineStats)

    def detection_fraction(self, round_index: int) -> float:
        """Fraction of shots whose syndrome fired in a given round."""
        fired = sum(1 for shot in self.syndromes_per_shot
                    if shot[round_index].fired())
        return fired / len(self.syndromes_per_shot)


def run_surface49_experiment(
        rounds: int = 1,
        error: tuple[str, int] | None = None,
        error_after_round: int = 0,
        shots: int = 20, seed: int = 29,
        noise: NoiseModel | None = None,
        plant_backend: str = "auto") -> Surface49Result:
    """Distance-5 syndrome extraction on the 49-qubit chip.

    The full scaling exercise: the 192-bit spec-driven instantiation
    encodes the program, and the plant must be the bit-packed
    stabilizer tableau (a 49-qubit density matrix is ~2^100 bytes —
    pinning ``plant_backend="dense"`` gets a structured
    :class:`~repro.core.errors.ResourceError` with the byte estimate
    and the ``plant_backend='stabilizer'`` suggestion, not an OOM).
    The noise model must stay Pauli/readout-only for tableau
    eligibility; shots are streamed and reduced to the 12 per-round
    Z syndromes exactly like the smaller distances.
    """
    setup = ExperimentSetup.create(
        isa=forty_nine_qubit_instantiation(),
        noise=noise if noise is not None else NoiseModel.noiseless(),
        seed=seed, plant_backend=plant_backend)
    circuit = surface49_circuit(rounds=rounds, error=error,
                                error_after_round=error_after_round)
    syndromes_per_shot: list[list[Syndrome49]] = []
    for trace in setup.run_circuit_iter(circuit, shots):
        per_ancilla = {
            ancilla: [r.reported_result
                      for r in trace.results_for(ancilla)]
            for ancilla in SURFACE49_Z_ANCILLAS}
        for ancilla, results in per_ancilla.items():
            if len(results) != rounds:
                raise ExperimentIntegrityError(
                    f"expected {rounds} results on ancilla {ancilla} "
                    f"per shot, got {len(results)}",
                    expected=rounds, got=len(results), ancilla=ancilla)
        syndromes_per_shot.append([
            Syndrome49(z_checks=tuple(
                (ancilla, per_ancilla[ancilla][index])
                for ancilla in SURFACE49_Z_ANCILLAS))
            for index in range(rounds)])
    return Surface49Result(rounds=rounds,
                           syndromes_per_shot=syndromes_per_shot,
                           plant_backend=setup.last_plant_backend,
                           engine_stats=setup.last_engine_stats)


def format_surface_code_report(clean: SurfaceCodeResult,
                               faulty: SurfaceCodeResult,
                               error: tuple[str, int]) -> str:
    """Render clean-vs-faulty detection fractions per round."""
    lines = ["distance-2 surface code, Z-syndrome detection:"]
    for round_index in range(clean.rounds):
        lines.append(
            f"  round {round_index}: clean "
            f"{clean.detection_fraction(round_index) * 100:5.1f}%   "
            f"with {error[0]} on q{error[1]} "
            f"{faulty.detection_fraction(round_index) * 100:5.1f}%")
    return "\n".join(lines)
