"""Analysis routines: RB decay fits and readout correction.

Implements the data reduction of Section 5:

* RB: "the Clifford fidelity F_Cl can be extracted from the exponential
  decay" of the survival probability ``p(k) = A f^k + B``; the average
  error rate per gate is ``eps = 1 - F_Cl^(1/1.875)`` (each Clifford is
  1.875 primitive pulses on average);
* readout correction: inverting the assignment-error confusion matrix
  on measured populations ("corrected for readout errors", Fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.quantum.noise import ReadoutErrorModel


def _decay_model(k, amplitude, decay, offset):
    return amplitude * decay ** k + offset


@dataclass(frozen=True)
class RBFit:
    """Fitted RB decay parameters and derived error rates."""

    amplitude: float
    decay: float            # f: depolarizing parameter per Clifford
    offset: float
    primitives_per_clifford: float = 1.875

    @property
    def clifford_fidelity(self) -> float:
        """F_Cl = 1 - (1 - f)(d - 1)/d with d = 2."""
        return 1.0 - (1.0 - self.decay) / 2.0

    @property
    def error_per_clifford(self) -> float:
        """1 - F_Cl."""
        return 1.0 - self.clifford_fidelity

    @property
    def error_per_gate(self) -> float:
        """eps = 1 - F_Cl^(1/1.875) (Section 5)."""
        return 1.0 - self.clifford_fidelity ** (
            1.0 / self.primitives_per_clifford)

    def survival(self, k: float) -> float:
        """Model survival probability at sequence length k."""
        return _decay_model(k, self.amplitude, self.decay, self.offset)


def fit_rb_decay(lengths: list[int], survivals: list[float],
                 primitives_per_clifford: float = 1.875) -> RBFit:
    """Least-squares fit of ``p(k) = A f^k + B``.

    ``lengths`` are Clifford counts k, ``survivals`` the measured
    P(|0>) values.  Sensible bounds keep the fit physical (0 < f < 1).
    """
    if len(lengths) != len(survivals):
        raise ValueError("lengths and survivals differ in size")
    if len(lengths) < 3:
        raise ValueError("need at least three points to fit the decay")
    k = np.asarray(lengths, dtype=float)
    p = np.asarray(survivals, dtype=float)
    # Initial guess: full contrast decaying to 0.5.
    guess = (0.5, 0.99, 0.5)
    params, _ = curve_fit(_decay_model, k, p, p0=guess,
                          bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
                          maxfev=20000)
    amplitude, decay, offset = params
    return RBFit(amplitude=float(amplitude), decay=float(decay),
                 offset=float(offset),
                 primitives_per_clifford=primitives_per_clifford)


def correct_population_for_readout(
        excited_fraction: float,
        readout: ReadoutErrorModel) -> float:
    """Invert the confusion matrix on a single-qubit P(1) estimate.

    The corrected value is clipped to [0, 1] (statistical fluctuations
    can push the linear inversion slightly outside).
    """
    measured = np.array([1.0 - excited_fraction, excited_fraction])
    corrected = readout.correct_probabilities(measured)
    return float(min(max(corrected[1], 0.0), 1.0))


def staircase_rms_error(measured: list[float],
                        ideal: list[float]) -> float:
    """RMS deviation of an AllXY staircase from the ideal pattern."""
    if len(measured) != len(ideal):
        raise ValueError("length mismatch")
    diffs = [(m - i) ** 2 for m, i in zip(measured, ideal)]
    return math.sqrt(sum(diffs) / len(diffs))


def logspaced_lengths(maximum: int, count: int,
                      minimum: int = 1) -> list[int]:
    """Distinct, roughly log-spaced RB sequence lengths."""
    if count < 2:
        raise ValueError("need at least two lengths")
    raw = np.unique(np.round(np.logspace(
        math.log10(max(minimum, 1)), math.log10(maximum),
        count)).astype(int))
    return [int(k) for k in raw if k >= minimum]
