"""Quantum operation definitions and the compile-time operation set.

A defining feature of eQASM (Section 3.2): the ISA does *not* fix a set
of quantum operations at design time.  Instead the programmer configures,
at compile time, which operations exist, what their names and opcodes
are, what pulses implement them, and — for conditional operations such
as ``C_X`` — which execution flag gates them.  The assembler, the
microcode unit and the pulse generation must be configured consistently;
in this library all three derive from a single :class:`OperationSet`.

Durations are in cycles of the deterministic timing domain (20 ns for
the target chip): 1 cycle for single-qubit gates, 2 for the CZ, 15 for
measurement (Section 4.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError
from repro.quantum import gates


class OperationKind(enum.Enum):
    """Arity/role of a quantum operation."""

    SINGLE_QUBIT = "single"
    TWO_QUBIT = "two"
    MEASUREMENT = "measurement"
    NOP = "nop"


class ExecutionFlag(enum.IntEnum):
    """Fast-conditional-execution flag types (Section 4.3).

    Each qubit's execution-flag register holds one bit per type, derived
    by fixed combinatorial logic from the last (two) finished
    measurement results of that qubit.
    """

    ALWAYS = 0            # constant '1': unconditional execution
    LAST_ONE = 1          # '1' iff the last finished result was |1>
    LAST_ZERO = 2         # '1' iff the last finished result was |0>
    LAST_TWO_EQUAL = 3    # '1' iff the last two results were equal


@dataclass(frozen=True)
class QuantumOperation:
    """One configured quantum operation.

    ``unitary`` is None for measurements and QNOP.  ``condition`` selects
    the execution flag checked when the triggered micro-operation reaches
    the fast-conditional-execution unit; unconditional operations use
    :attr:`ExecutionFlag.ALWAYS`.
    """

    name: str
    kind: OperationKind
    duration_cycles: int
    unitary: np.ndarray | None = None
    condition: ExecutionFlag = ExecutionFlag.ALWAYS

    def __post_init__(self) -> None:
        if self.duration_cycles < 0:
            raise ConfigurationError(
                f"operation {self.name}: negative duration")
        if self.kind in (OperationKind.SINGLE_QUBIT, OperationKind.TWO_QUBIT):
            if self.unitary is None:
                raise ConfigurationError(
                    f"operation {self.name}: gate operations need a unitary")
            expected_dim = 2 if self.kind is OperationKind.SINGLE_QUBIT else 4
            matrix = np.asarray(self.unitary)
            if matrix.shape != (expected_dim, expected_dim):
                raise ConfigurationError(
                    f"operation {self.name}: unitary shape {matrix.shape} "
                    f"does not match kind {self.kind.value}")
            if not gates.is_unitary(matrix):
                raise ConfigurationError(
                    f"operation {self.name}: matrix is not unitary")
        elif self.unitary is not None:
            raise ConfigurationError(
                f"operation {self.name}: {self.kind.value} operations "
                f"cannot carry a unitary")

    @property
    def is_conditional(self) -> bool:
        """Whether fast conditional execution can cancel this operation."""
        return self.condition is not ExecutionFlag.ALWAYS

    @property
    def uses_two_qubit_target(self) -> bool:
        """Whether the operand is a T register (vs an S register)."""
        return self.kind is OperationKind.TWO_QUBIT


class OperationSet:
    """The compile-time quantum-operation configuration.

    Maps case-insensitive operation names to definitions and assigns each
    a q opcode.  Opcode 0 is always ``QNOP``; other operations receive
    consecutive opcodes in registration order unless explicitly pinned.
    """

    QNOP_NAME = "QNOP"
    QNOP_OPCODE = 0

    def __init__(self, opcode_width: int = 9):
        if opcode_width < 1:
            raise ConfigurationError("opcode width must be positive")
        self.opcode_width = opcode_width
        self._by_name: dict[str, QuantumOperation] = {}
        self._opcode_of: dict[str, int] = {}
        self._name_of: dict[int, str] = {}
        qnop = QuantumOperation(name=self.QNOP_NAME, kind=OperationKind.NOP,
                                duration_cycles=0)
        self._register(qnop, self.QNOP_OPCODE)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, operation: QuantumOperation, opcode: int) -> None:
        key = operation.name.upper()
        if key in self._by_name:
            raise ConfigurationError(f"operation {key} already defined")
        if opcode in self._name_of:
            raise ConfigurationError(
                f"opcode {opcode} already bound to {self._name_of[opcode]}")
        if not 0 <= opcode < (1 << self.opcode_width):
            raise ConfigurationError(
                f"opcode {opcode} does not fit in {self.opcode_width} bits")
        self._by_name[key] = operation
        self._opcode_of[key] = opcode
        self._name_of[opcode] = key

    def add(self, operation: QuantumOperation,
            opcode: int | None = None) -> int:
        """Register an operation; returns the opcode assigned to it."""
        if opcode is None:
            opcode = max(self._name_of) + 1
        self._register(operation, opcode)
        return opcode

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name.upper() in self._by_name

    def get(self, name: str) -> QuantumOperation:
        """Operation definition for a (case-insensitive) name."""
        key = name.upper()
        if key not in self._by_name:
            known = ", ".join(sorted(self._by_name))
            raise ConfigurationError(
                f"unknown quantum operation {name!r}; configured: {known}")
        return self._by_name[key]

    def opcode(self, name: str) -> int:
        """q opcode for an operation name."""
        self.get(name)
        return self._opcode_of[name.upper()]

    def name_for_opcode(self, opcode: int) -> str:
        """Operation name bound to a q opcode."""
        if opcode not in self._name_of:
            raise ConfigurationError(f"no operation bound to opcode {opcode}")
        return self._name_of[opcode]

    def names(self) -> tuple[str, ...]:
        """All configured operation names (including QNOP)."""
        return tuple(sorted(self._by_name))

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def qnop(self) -> QuantumOperation:
        """The quantum no-operation used to fill VLIW slots."""
        return self._by_name[self.QNOP_NAME]


def default_operation_set(
        measurement_cycles: int = 15,
        two_qubit_cycles: int = 2) -> OperationSet:
    """The operation configuration used for the Section 5 experiments.

    Single-qubit set {I, X, Y, X90, Y90, Xm90, Ym90} plus H/Z/S/T for
    compiled algorithms, a CZ and CNOT two-qubit gate, measurement, and
    the conditional gates C_X / C_Y / C0_X (flag types 1, 1 and 2).
    """
    ops = OperationSet()
    single = [
        ("I", gates.I),
        ("X", gates.X),
        ("Y", gates.Y),
        ("X90", gates.X90),
        ("Y90", gates.Y90),
        ("XM90", gates.XM90),
        ("YM90", gates.YM90),
        ("H", gates.H),
        ("Z", gates.Z),
        ("S", gates.S),
        ("SDG", gates.SDG),
        ("T", gates.T),
        ("TDG", gates.TDG),
    ]
    for name, unitary in single:
        ops.add(QuantumOperation(name=name, kind=OperationKind.SINGLE_QUBIT,
                                 duration_cycles=1, unitary=unitary))
    ops.add(QuantumOperation(name="CZ", kind=OperationKind.TWO_QUBIT,
                             duration_cycles=two_qubit_cycles,
                             unitary=gates.CZ))
    ops.add(QuantumOperation(name="CNOT", kind=OperationKind.TWO_QUBIT,
                             duration_cycles=two_qubit_cycles,
                             unitary=gates.CNOT))
    ops.add(QuantumOperation(name="SWAP", kind=OperationKind.TWO_QUBIT,
                             duration_cycles=3 * two_qubit_cycles,
                             unitary=gates.SWAP))
    ops.add(QuantumOperation(name="MEASZ", kind=OperationKind.MEASUREMENT,
                             duration_cycles=measurement_cycles))
    # Conditional gates for fast conditional execution (Sections 3.5/4.3).
    ops.add(QuantumOperation(name="C_X", kind=OperationKind.SINGLE_QUBIT,
                             duration_cycles=1, unitary=gates.X,
                             condition=ExecutionFlag.LAST_ONE))
    ops.add(QuantumOperation(name="C_Y", kind=OperationKind.SINGLE_QUBIT,
                             duration_cycles=1, unitary=gates.Y,
                             condition=ExecutionFlag.LAST_ONE))
    ops.add(QuantumOperation(name="C0_X", kind=OperationKind.SINGLE_QUBIT,
                             duration_cycles=1, unitary=gates.X,
                             condition=ExecutionFlag.LAST_ZERO))
    return ops


def add_rabi_amplitude_operations(ops: OperationSet, num_steps: int,
                                  max_angle: float = 2.0 * math.pi) -> list[str]:
    """Register the uncalibrated ``X_AMP_<i>`` pulses of the Rabi sweep.

    Section 5: "Each pulse in the sequence is uploaded ... and configured
    to be an operation X_Amp_i in eQASM."  Step ``i`` rotates about x by
    ``max_angle * i / (num_steps - 1)``, emulating a fixed-length pulse
    of linearly increasing amplitude.
    """
    if num_steps < 2:
        raise ConfigurationError("a Rabi sweep needs at least two steps")
    names = []
    for step in range(num_steps):
        angle = max_angle * step / (num_steps - 1)
        name = f"X_AMP_{step}"
        ops.add(QuantumOperation(name=name,
                                 kind=OperationKind.SINGLE_QUBIT,
                                 duration_cycles=1,
                                 unitary=gates.rx(angle)))
        names.append(name)
    return names
