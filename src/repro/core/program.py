"""Program container: instruction sequence plus label table.

A :class:`Program` is the semantic form of an eQASM listing: parsed
instructions in order, with labels mapping to instruction indices.
Label references in ``BR`` instructions are resolved to relative
offsets ("jump to PC + Offset", Table 1) by :meth:`Program.resolve_labels`.

Validation against an instantiation (register ranges, known operations,
legal target masks) lives in :mod:`repro.core.assembler`, which also
performs VLIW bundle splitting — splitting changes instruction indices,
so label resolution is deferred until after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AssemblyError
from repro.core.instructions import Br, Instruction
from repro.core.parser import ParsedLine, parse_program_text


@dataclass
class Program:
    """An ordered instruction list with a label table.

    ``labels[name]`` is the index of the instruction the label points
    at; a label at the very end of the listing points one past the last
    instruction (a common jump-to-exit pattern).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parsed_lines(cls, lines: list[ParsedLine]) -> "Program":
        """Build a program from parser output."""
        program = cls()
        pending_labels: list[str] = []
        for line in lines:
            pending_labels.extend(line.labels)
            if line.instruction is None:
                continue
            index = len(program.instructions)
            for label in pending_labels:
                if label in program.labels:
                    raise AssemblyError(f"duplicate label {label!r}")
                program.labels[label] = index
            pending_labels = []
            program.instructions.append(line.instruction)
        # Trailing labels point one past the end.
        for label in pending_labels:
            if label in program.labels:
                raise AssemblyError(f"duplicate label {label!r}")
            program.labels[label] = len(program.instructions)
        return program

    @classmethod
    def from_text(cls, text: str) -> "Program":
        """Parse assembly text into a program."""
        return cls.from_parsed_lines(parse_program_text(text))

    # ------------------------------------------------------------------
    # Label resolution
    # ------------------------------------------------------------------
    def resolve_labels(self) -> "Program":
        """Return a copy with all BR label targets turned into offsets.

        The offset convention matches Table 1: the branch target is
        ``PC + Offset`` where PC is the address of the BR instruction
        itself.
        """
        resolved: list[Instruction] = []
        for index, instruction in enumerate(self.instructions):
            if isinstance(instruction, Br) and isinstance(
                    instruction.target, str):
                label = instruction.target
                if label not in self.labels:
                    raise AssemblyError(f"undefined label {label!r}")
                offset = self.labels[label] - index
                resolved.append(instruction.with_offset(offset))
            else:
                resolved.append(instruction)
        return Program(instructions=resolved, labels=dict(self.labels))

    def has_unresolved_labels(self) -> bool:
        """Whether any BR still carries a symbolic target."""
        return any(isinstance(ins, Br) and isinstance(ins.target, str)
                   for ins in self.instructions)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_assembly(self) -> str:
        """Render the program back to assembly text.

        Labels are printed on their own lines before the instruction
        they reference.
        """
        labels_at: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            labels_at.setdefault(index, []).append(label)
        lines: list[str] = []
        for index, instruction in enumerate(self.instructions):
            for label in sorted(labels_at.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.to_assembly()}")
        for label in sorted(labels_at.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        """Append one instruction."""
        self.instructions.append(instruction)

    def extend(self, instructions) -> None:
        """Append several instructions."""
        self.instructions.extend(instructions)
