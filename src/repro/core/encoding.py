"""Binary instruction encoding/decoding, parameterised by word width.

The binary format is an *instantiation-time* choice (Section 2.4: "the
binary format is defined during the instantiation of eQASM").  The
field layout is derived from :attr:`EQASMInstantiation.instruction_width`
(``W``); for the paper's 32-bit instantiation it reproduces Fig. 8 bit
for bit (bit 31 first):

====================  =================================================
SMIS                  ``0 | opcode(6) | Sd(5) @ W-12 | pad | mask``
SMIT                  ``0 | opcode(6) | Td(5) @ W-12 | pad | mask``
QWAIT                 ``0 | opcode(6) | pad(5) | imm(20)``
QWAITR                ``0 | opcode(6) | pad(5) | Rs(5) | pad(15)``
bundle                ``1 | q_op0(9) | st0(5) | q_op1(9) | st1(5) | PI``
====================  =================================================

With ``W = 32`` the Sd/Td fields land at bit 20 and the bundle slots at
22/17/8/3 — exactly Fig. 8 (``SMIS: pad(13) mask(7)``, ``SMIT: pad(4)
mask(16)``).  Wider instantiations scale the quantum formats up: the
17-qubit surface-code chip needs a 48-bit pair mask, which the 64-bit
instantiation (:func:`repro.core.isa.seventeen_qubit_instantiation`)
fits below its Td field at bit 52.  Classical formats keep their fixed
low-bit positions at every width.

The paper leaves classical formats unspecified ("for brevity, we only
present the format of quantum instructions"); our instantiation uses a
MIPS-like layout inside the bits below the opcode, documented per
opcode in :data:`CLASSICAL_OPCODES` and the field tables below:

* R-type (CMP/AND/OR/XOR/ADD/SUB/NOT): ``rd@24..20 rs@19..15 rt@14..10``
  (CMP leaves rd = 0; NOT leaves rs = 0);
* LDI: ``rd@24..20 imm20@19..0`` (signed);
* LDUI: ``rd@24..20 rs@19..15 imm15@14..0``;
* LD/ST: ``rd|rs@24..20 rt@19..15 imm15@14..0`` (signed);
* BR: ``cond@24..21 offset21@20..0`` (signed, instructions);
* FBR: ``cond@24..21 rd@20..16``;
* FMR: ``rd@24..20 qi@19..15``.

Every encoder validates field ranges and raises
:class:`~repro.core.errors.EncodingError` on overflow; decode is the
exact inverse (round-trip tested property-style in the test suite).
"""

from __future__ import annotations

from repro.core.errors import DecodingError, EncodingError
from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    BundleOperation,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.isa import EQASMInstantiation
from repro.core.operations import OperationKind
from repro.core.registers import ComparisonFlag

#: Single-format opcodes (6-bit field at bits 30..25).
CLASSICAL_OPCODES = {
    "NOP": 0,
    "STOP": 1,
    "CMP": 2,
    "BR": 3,
    "FBR": 4,
    "LDI": 5,
    "LDUI": 6,
    "LD": 7,
    "ST": 8,
    "FMR": 9,
    "AND": 10,
    "OR": 11,
    "XOR": 12,
    "NOT": 13,
    "ADD": 14,
    "SUB": 15,
    "SMIS": 16,
    "SMIT": 17,
    "QWAIT": 18,
    "QWAITR": 19,
}

_OPCODE_TO_MNEMONIC = {value: key for key, value in CLASSICAL_OPCODES.items()}


class _WordLayout:
    """Bit positions of the width-dependent fields for one word size.

    Every shift is expressed relative to the word's top bit so that
    ``width == 32`` reproduces Fig. 8 exactly; see the module
    docstring.  Shared by the encoder and the decoder, which keeps the
    two inverse by construction.
    """

    def __init__(self, width: int):
        if width % 8 or width < 32:
            raise EncodingError(
                f"instruction width {width} must be a multiple of 8 "
                f"bits, at least 32")
        self.width = width
        self.flag_bit = width - 1          # bundle/single discriminator
        self.opcode_shift = width - 7      # 6-bit classical opcode
        self.target_shift = width - 12     # SMIS Sd / SMIT Td (5 bits)
        self.slot0_op_shift = width - 10   # bundle lane 0 q opcode (9)
        self.slot0_reg_shift = width - 15  # bundle lane 0 target (5)
        self.slot1_op_shift = width - 24   # bundle lane 1 q opcode (9)
        self.slot1_reg_shift = width - 29  # bundle lane 1 target (5)


def _check_field(name: str, value: int, width: int) -> int:
    """Validate an unsigned field value against its width."""
    if not 0 <= value < (1 << width):
        raise EncodingError(
            f"{name} value {value} does not fit in {width} bits")
    return value


def _check_signed_field(name: str, value: int, width: int) -> int:
    """Validate and two's-complement encode a signed field value."""
    low = -(1 << (width - 1))
    high = (1 << (width - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{name} value {value} outside signed {width}-bit range "
            f"[{low}, {high}]")
    return value & ((1 << width) - 1)


def _sign_extend(value: int, width: int) -> int:
    """Decode a two's-complement field of the given width."""
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


class InstructionEncoder:
    """Encodes instruction objects into words for an instantiation."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self._layout = _WordLayout(isa.instruction_width)

    # ------------------------------------------------------------------
    # Top-level encode
    # ------------------------------------------------------------------
    def encode(self, instruction: Instruction) -> int:
        """Encode one instruction into an instruction-width word.

        Bundles must already fit the VLIW width (the assembler splits
        longer ones) and BR targets must be resolved offsets.
        """
        if isinstance(instruction, Bundle):
            return self._encode_bundle(instruction)
        return self._encode_single(instruction)

    def _single_word(self, mnemonic: str, body: int) -> int:
        opcode = CLASSICAL_OPCODES[mnemonic]
        shift = self._layout.opcode_shift
        if body >= (1 << shift):
            raise EncodingError(f"{mnemonic} body overflows {shift} bits")
        return (opcode << shift) | body

    def _encode_single(self, ins: Instruction) -> int:
        isa = self.isa
        if isinstance(ins, Nop):
            return self._single_word("NOP", 0)
        if isinstance(ins, Stop):
            return self._single_word("STOP", 0)
        if isinstance(ins, Cmp):
            body = (_check_field("Rs", ins.rs, 5) << 15) | \
                   (_check_field("Rt", ins.rt, 5) << 10)
            return self._single_word("CMP", body)
        if isinstance(ins, Br):
            if isinstance(ins.target, str):
                raise EncodingError(
                    f"BR target label {ins.target!r} not resolved")
            body = (_check_field("cond", int(ins.condition), 4) << 21) | \
                   _check_signed_field("offset", ins.target, 21)
            return self._single_word("BR", body)
        if isinstance(ins, Fbr):
            body = (_check_field("cond", int(ins.condition), 4) << 21) | \
                   (_check_field("Rd", ins.rd, 5) << 16)
            return self._single_word("FBR", body)
        if isinstance(ins, Ldi):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   _check_signed_field("imm", ins.imm, 20)
            return self._single_word("LDI", body)
        if isinstance(ins, Ldui):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Rs", ins.rs, 5) << 15) | \
                   _check_field("imm", ins.imm, 15)
            return self._single_word("LDUI", body)
        if isinstance(ins, Ld):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Rt", ins.rt, 5) << 15) | \
                   _check_signed_field("imm", ins.imm, 15)
            return self._single_word("LD", body)
        if isinstance(ins, St):
            body = (_check_field("Rs", ins.rs, 5) << 20) | \
                   (_check_field("Rt", ins.rt, 5) << 15) | \
                   _check_signed_field("imm", ins.imm, 15)
            return self._single_word("ST", body)
        if isinstance(ins, Fmr):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Qi", ins.qubit, 5) << 15)
            return self._single_word("FMR", body)
        if isinstance(ins, LogicalOp):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Rs", ins.rs, 5) << 15) | \
                   (_check_field("Rt", ins.rt, 5) << 10)
            return self._single_word(ins.mnemonic_name, body)
        if isinstance(ins, Not):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Rt", ins.rt, 5) << 10)
            return self._single_word("NOT", body)
        if isinstance(ins, ArithOp):
            body = (_check_field("Rd", ins.rd, 5) << 20) | \
                   (_check_field("Rs", ins.rs, 5) << 15) | \
                   (_check_field("Rt", ins.rt, 5) << 10)
            return self._single_word(ins.mnemonic_name, body)
        if isinstance(ins, SMIS):
            if ins.sd >= isa.num_single_qubit_target_registers:
                raise EncodingError(f"S{ins.sd} out of range")
            if isa.qubit_mask_field_width > self._layout.target_shift:
                raise EncodingError(
                    f"{isa.qubit_mask_field_width}-bit qubit mask does "
                    f"not fit below the Sd field of a "
                    f"{self._layout.width}-bit word")
            mask = isa.qubit_mask(ins.qubits)
            body = (_check_field("Sd", ins.sd, 5) <<
                    self._layout.target_shift) | \
                _check_field("mask", mask, isa.qubit_mask_field_width)
            return self._single_word("SMIS", body)
        if isinstance(ins, SMIT):
            if ins.td >= isa.num_two_qubit_target_registers:
                raise EncodingError(f"T{ins.td} out of range")
            if isa.pair_mask_field_width > self._layout.target_shift:
                raise EncodingError(
                    f"{isa.pair_mask_field_width}-bit pair mask does "
                    f"not fit below the Td field of a "
                    f"{self._layout.width}-bit word")
            mask = isa.pair_mask(ins.pairs)
            body = (_check_field("Td", ins.td, 5) <<
                    self._layout.target_shift) | \
                _check_field("mask", mask, isa.pair_mask_field_width)
            return self._single_word("SMIT", body)
        if isinstance(ins, QWait):
            body = _check_field("imm", ins.cycles,
                                isa.qwait_immediate_width)
            return self._single_word("QWAIT", body)
        if isinstance(ins, QWaitR):
            body = _check_field("Rs", ins.rs, 5) << 15
            return self._single_word("QWAITR", body)
        raise EncodingError(f"cannot encode {type(ins).__name__}")

    def _encode_bundle(self, bundle: Bundle) -> int:
        isa = self.isa
        layout = self._layout
        if len(bundle.operations) > isa.vliw_width:
            raise EncodingError(
                f"bundle holds {len(bundle.operations)} operations; the "
                f"VLIW width is {isa.vliw_width} (assembler must split)")
        if isa.vliw_width != 2:
            raise EncodingError(
                "the bundle word encodes exactly 2 VLIW slots")
        _check_field("PI", bundle.pi, isa.pi_width)
        slots = list(bundle.operations)
        while len(slots) < isa.vliw_width:
            slots.append(BundleOperation(name=isa.operations.QNOP_NAME,
                                         register=None))
        encoded_slots = [self._encode_slot(slot) for slot in slots]
        word = 1 << layout.flag_bit
        word |= encoded_slots[0][0] << layout.slot0_op_shift
        word |= encoded_slots[0][1] << layout.slot0_reg_shift
        word |= encoded_slots[1][0] << layout.slot1_op_shift
        word |= encoded_slots[1][1] << layout.slot1_reg_shift
        word |= bundle.pi
        return word

    def _encode_slot(self, slot: BundleOperation) -> tuple[int, int]:
        """Encode one VLIW slot to (q_opcode, target_register_index)."""
        isa = self.isa
        operation = isa.operations.get(slot.name)
        opcode = isa.operations.opcode(slot.name)
        _check_field("q opcode", opcode, isa.q_opcode_width)
        if operation.kind is OperationKind.NOP:
            if slot.register is not None:
                raise EncodingError("QNOP takes no target register")
            return opcode, 0
        if slot.register is None:
            raise EncodingError(f"operation {slot.name} needs a target")
        kind, index = slot.register
        expected = "T" if operation.uses_two_qubit_target else "S"
        if kind != expected:
            raise EncodingError(
                f"operation {slot.name} needs a {expected} register, "
                f"got {kind}{index}")
        limit = (isa.num_two_qubit_target_registers if expected == "T"
                 else isa.num_single_qubit_target_registers)
        if index >= limit:
            raise EncodingError(f"{kind}{index} out of range")
        _check_field("target register", index,
                     isa.target_register_address_width)
        return opcode, index


class InstructionDecoder:
    """Decodes instruction-width words back into instruction objects."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self._layout = _WordLayout(isa.instruction_width)

    def decode(self, word: int) -> Instruction:
        """Decode one instruction-width word."""
        layout = self._layout
        if not 0 <= word < (1 << layout.width):
            raise DecodingError(
                f"word {word:#x} is not {layout.width} bits")
        if (word >> layout.flag_bit) & 1:
            return self._decode_bundle(word)
        return self._decode_single(word)

    @staticmethod
    def _decode_condition(word: int) -> ComparisonFlag:
        value = (word >> 21) & 0xF
        try:
            return ComparisonFlag(value)
        except ValueError:
            raise DecodingError(f"invalid comparison-flag encoding {value}")

    def _decode_single(self, word: int) -> Instruction:
        isa = self.isa
        opcode = (word >> self._layout.opcode_shift) & 0x3F
        mnemonic = _OPCODE_TO_MNEMONIC.get(opcode)
        if mnemonic is None:
            raise DecodingError(f"unknown single-format opcode {opcode}")
        rd = (word >> 20) & 0x1F
        rs = (word >> 15) & 0x1F
        rt = (word >> 10) & 0x1F
        if mnemonic == "NOP":
            return Nop()
        if mnemonic == "STOP":
            return Stop()
        if mnemonic == "CMP":
            return Cmp(rs=rs, rt=rt)
        if mnemonic == "BR":
            condition = self._decode_condition(word)
            offset = _sign_extend(word & 0x1FFFFF, 21)
            return Br(condition=condition, target=offset)
        if mnemonic == "FBR":
            condition = self._decode_condition(word)
            return Fbr(condition=condition, rd=(word >> 16) & 0x1F)
        if mnemonic == "LDI":
            return Ldi(rd=rd, imm=_sign_extend(word & 0xFFFFF, 20))
        if mnemonic == "LDUI":
            return Ldui(rd=rd, rs=rs, imm=word & 0x7FFF)
        if mnemonic == "LD":
            return Ld(rd=rd, rt=rs, imm=_sign_extend(word & 0x7FFF, 15))
        if mnemonic == "ST":
            return St(rs=rd, rt=rs, imm=_sign_extend(word & 0x7FFF, 15))
        if mnemonic == "FMR":
            return Fmr(rd=rd, qubit=rs)
        if mnemonic in ("AND", "OR", "XOR"):
            return LogicalOp(mnemonic_name=mnemonic, rd=rd, rs=rs, rt=rt)
        if mnemonic == "NOT":
            return Not(rd=rd, rt=rt)
        if mnemonic in ("ADD", "SUB"):
            return ArithOp(mnemonic_name=mnemonic, rd=rd, rs=rs, rt=rt)
        if mnemonic == "SMIS":
            sd = (word >> self._layout.target_shift) & 0x1F
            mask = word & ((1 << isa.qubit_mask_field_width) - 1)
            qubits = isa.qubits_from_mask(mask)
            if not qubits:
                raise DecodingError("SMIS with empty mask")
            return SMIS(sd=sd, qubits=frozenset(qubits))
        if mnemonic == "SMIT":
            td = (word >> self._layout.target_shift) & 0x1F
            mask = word & ((1 << isa.pair_mask_field_width) - 1)
            pairs = isa.pairs_from_mask(mask)
            if not pairs:
                raise DecodingError("SMIT with empty mask")
            return SMIT(td=td, pairs=frozenset(pairs))
        if mnemonic == "QWAIT":
            return QWait(
                cycles=word & ((1 << isa.qwait_immediate_width) - 1))
        if mnemonic == "QWAITR":
            return QWaitR(rs=rs)
        raise DecodingError(f"unhandled mnemonic {mnemonic}")

    def _decode_bundle(self, word: int) -> Bundle:
        isa = self.isa
        layout = self._layout
        pi = word & ((1 << isa.pi_width) - 1)
        raw_slots = [
            ((word >> layout.slot0_op_shift) & 0x1FF,
             (word >> layout.slot0_reg_shift) & 0x1F),
            ((word >> layout.slot1_op_shift) & 0x1FF,
             (word >> layout.slot1_reg_shift) & 0x1F),
        ]
        operations = []
        for opcode, register_index in raw_slots:
            name = isa.operations.name_for_opcode(opcode)
            operation = isa.operations.get(name)
            if operation.kind is OperationKind.NOP:
                operations.append(BundleOperation(name=name, register=None))
                continue
            kind = "T" if operation.uses_two_qubit_target else "S"
            operations.append(
                BundleOperation(name=name, register=(kind, register_index)))
        # Trailing QNOPs are physical filler; keep them so that
        # encode(decode(w)) == w exactly.
        return Bundle(operations=tuple(operations), pi=pi, explicit_pi=True)
