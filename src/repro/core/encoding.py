"""Binary instruction encoding/decoding, driven by a declarative spec.

The binary format is an *instantiation-time* choice (Section 2.4: "the
binary format is defined during the instantiation of eQASM").  Each
:class:`~repro.core.isa.EQASMInstantiation` carries an
:class:`~repro.core.isaspec.EncodingSpec` — formats, named bit-fields,
opcode assignments, and the bundle slot layout as *data* — and the
encoder/decoder here interpret it generically: encode packs each
format's fields through its codec
(:data:`repro.core.isaspec.bindings.CODECS`) into the word, decode
unpacks the same fields and rebuilds the instruction object through the
format's class binding
(:data:`repro.core.isaspec.bindings.FORMAT_BINDINGS`).  The two
directions share one table, which keeps them inverse by construction;
there is no per-mnemonic code path.

The paper's 32-bit instantiation ships as the registered
``fig8-32bit`` spec and reproduces Fig. 8 bit for bit (bundle flag at
bit 31, 6-bit opcode at 30..25, Sd/Td at bit 20, bundle slots at
22/17/8/3); wider instantiations (``surface17-64bit``,
``surface49-192bit``) are further spec values of the same family — see
:mod:`repro.core.isaspec.build` for the layout rules and
``python -m repro.core.isaspec validate --all --report-dir ...`` for
rendered field tables.

Every field codec validates its domain and raises
:class:`~repro.core.errors.EncodingError` on overflow; decode is the
exact inverse (round-trip tested property-style per registered spec in
the test suite) and raises :class:`~repro.core.errors.DecodingError`
on unrepresentable words.
"""

from __future__ import annotations

from repro.core.errors import DecodingError, EncodingError
from repro.core.instructions import Bundle, BundleOperation, Instruction
from repro.core.isa import EQASMInstantiation
from repro.core.isaspec.bindings import (
    CODECS,
    FORMAT_BINDINGS,
    check_field,
    format_name_for,
)
from repro.core.isaspec.build import FAMILY_OPCODES
from repro.core.isaspec.model import BundleSlotSpec, EncodingSpec
from repro.core.operations import OperationKind

#: Single-format opcodes of the family layout (6-bit field below the
#: flag bit).  Kept as a module-level table for compatibility; the
#: authoritative assignment is the instantiation's spec.
CLASSICAL_OPCODES = dict(FAMILY_OPCODES)


class InstructionEncoder:
    """Encodes instruction objects into words for an instantiation."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self.spec: EncodingSpec = isa.encoding_spec
        self._formats = {fmt.name: fmt for fmt in self.spec.formats}

    # ------------------------------------------------------------------
    # Single-word formats
    # ------------------------------------------------------------------
    def encode(self, instruction: Instruction) -> int:
        """Encode one instruction into an instruction-width word.

        Bundles must already fit the VLIW width (the assembler splits
        longer ones) and BR targets must be resolved offsets.
        """
        if isinstance(instruction, Bundle):
            return self._encode_bundle(instruction)
        name = format_name_for(instruction)
        fmt = self._formats.get(name) if name is not None else None
        if fmt is None:
            raise EncodingError(
                f"cannot encode {type(instruction).__name__}")
        word = fmt.opcode << self.spec.opcode_offset
        for field in fmt.fields:
            encode_value = CODECS[field.codec][0]
            raw = encode_value(self.isa, field,
                               getattr(instruction, field.attr))
            word |= raw << field.offset
        return word

    # ------------------------------------------------------------------
    # Bundle words
    # ------------------------------------------------------------------
    def _encode_bundle(self, bundle: Bundle) -> int:
        isa = self.isa
        spec = self.spec.bundle
        if spec is None:
            raise EncodingError(
                f"spec {self.spec.name} defines no bundle word")
        if len(bundle.operations) > len(spec.slots):
            raise EncodingError(
                f"bundle holds {len(bundle.operations)} operations; the "
                f"VLIW width is {len(spec.slots)} (assembler must split)")
        check_field("PI", bundle.pi, spec.pi_width)
        slots = list(bundle.operations)
        while len(slots) < len(spec.slots):
            slots.append(BundleOperation(name=isa.operations.QNOP_NAME,
                                         register=None))
        word = (1 << spec.flag_bit) | (bundle.pi << spec.pi_offset)
        for slot_spec, slot in zip(spec.slots, slots):
            opcode, register_index = self._encode_slot(slot, slot_spec)
            word |= opcode << slot_spec.op_offset
            word |= register_index << slot_spec.reg_offset
        return word

    def _encode_slot(self, slot: BundleOperation,
                     slot_spec: BundleSlotSpec) -> tuple[int, int]:
        """Encode one VLIW slot to (q_opcode, target_register_index)."""
        isa = self.isa
        operation = isa.operations.get(slot.name)
        opcode = isa.operations.opcode(slot.name)
        check_field("q opcode", opcode, slot_spec.op_width)
        if operation.kind is OperationKind.NOP:
            if slot.register is not None:
                raise EncodingError("QNOP takes no target register")
            return opcode, 0
        if slot.register is None:
            raise EncodingError(f"operation {slot.name} needs a target")
        kind, index = slot.register
        expected = "T" if operation.uses_two_qubit_target else "S"
        if kind != expected:
            raise EncodingError(
                f"operation {slot.name} needs a {expected} register, "
                f"got {kind}{index}")
        limit = (isa.num_two_qubit_target_registers if expected == "T"
                 else isa.num_single_qubit_target_registers)
        if index >= limit:
            raise EncodingError(f"{kind}{index} out of range")
        check_field("target register", index, slot_spec.reg_width)
        return opcode, index


class InstructionDecoder:
    """Decodes instruction-width words back into instruction objects."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self.spec: EncodingSpec = isa.encoding_spec
        self._by_opcode = self.spec.opcode_table()

    def decode(self, word: int) -> Instruction:
        """Decode one instruction-width word."""
        spec = self.spec
        if not 0 <= word < (1 << spec.instruction_width):
            raise DecodingError(
                f"word {word:#x} is not {spec.instruction_width} bits")
        if spec.bundle is not None and (word >> spec.bundle.flag_bit) & 1:
            return self._decode_bundle(word)
        return self._decode_single(word)

    def _decode_single(self, word: int) -> Instruction:
        spec = self.spec
        opcode = (word >> spec.opcode_offset) & \
            ((1 << spec.opcode_width) - 1)
        fmt = self._by_opcode.get(opcode)
        if fmt is None:
            raise DecodingError(f"unknown single-format opcode {opcode}")
        cls, fixed = FORMAT_BINDINGS[fmt.name]
        kwargs = dict(fixed)
        for field in fmt.fields:
            raw = (word >> field.offset) & ((1 << field.width) - 1)
            decode_value = CODECS[field.codec][1]
            kwargs[field.attr] = decode_value(self.isa, field, raw)
        return cls(**kwargs)

    def _decode_bundle(self, word: int) -> Bundle:
        isa = self.isa
        spec = self.spec.bundle
        pi = (word >> spec.pi_offset) & ((1 << spec.pi_width) - 1)
        operations = []
        for slot_spec in spec.slots:
            opcode = (word >> slot_spec.op_offset) & \
                ((1 << slot_spec.op_width) - 1)
            register_index = (word >> slot_spec.reg_offset) & \
                ((1 << slot_spec.reg_width) - 1)
            name = isa.operations.name_for_opcode(opcode)
            operation = isa.operations.get(name)
            if operation.kind is OperationKind.NOP:
                operations.append(BundleOperation(name=name, register=None))
                continue
            kind = "T" if operation.uses_two_qubit_target else "S"
            operations.append(
                BundleOperation(name=name, register=(kind, register_index)))
        # Trailing QNOPs are physical filler; keep them so that
        # encode(decode(w)) == w exactly.
        return Bundle(operations=tuple(operations), pi=pi, explicit_pi=True)
