"""Architectural state of the eQASM processor (Fig. 2).

* 32 general-purpose 32-bit registers (GPRs);
* comparison flags written by ``CMP`` and consumed by ``BR``/``FBR``;
* 32 single-qubit (S) and 32 two-qubit (T) quantum-operation target
  registers holding qubit / qubit-pair masks;
* one 1-bit measurement-result register per qubit, with the validity
  counter ``C_i`` of the CFC mechanism (Section 4.3);
* per-qubit execution-flag registers for fast conditional execution.

All register files bounds-check addresses and raise
:class:`~repro.core.errors.InvalidAddressError` on violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import InvalidAddressError
from repro.core.operations import ExecutionFlag

_MASK32 = 0xFFFFFFFF


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def to_unsigned32(value: int) -> int:
    """Truncate ``value`` to its low 32 bits."""
    return value & _MASK32


class GPRFile:
    """The 32 x 32-bit general-purpose register file.

    Values are stored as unsigned 32-bit integers; ``read_signed``
    reinterprets them for signed arithmetic and comparisons.
    """

    def __init__(self, num_registers: int = 32):
        self.num_registers = num_registers
        self._values = [0] * num_registers

    def _check(self, address: int) -> None:
        if not 0 <= address < self.num_registers:
            raise InvalidAddressError(
                f"GPR R{address} out of range (0..{self.num_registers - 1})")

    def read(self, address: int) -> int:
        """Unsigned 32-bit value of R<address>."""
        self._check(address)
        return self._values[address]

    def read_signed(self, address: int) -> int:
        """Signed interpretation of R<address>."""
        return to_signed32(self.read(address))

    def write(self, address: int, value: int) -> None:
        """Write the low 32 bits of ``value`` into R<address>."""
        self._check(address)
        self._values[address] = to_unsigned32(value)

    def reset(self) -> None:
        """Zero every register."""
        self._values = [0] * self.num_registers


class ComparisonFlag(enum.IntEnum):
    """Flags stored by ``CMP`` and tested by ``BR`` / fetched by ``FBR``.

    ``CMP Rs, Rt`` sets all of them at once; signed flags compare the
    registers as two's-complement, the ``*U`` variants as unsigned.
    """

    ALWAYS = 0
    NEVER = 1
    EQ = 2
    NE = 3
    LTU = 4
    GEU = 5
    LEU = 6
    GTU = 7
    LT = 8
    GE = 9
    LE = 10
    GT = 11


class ComparisonFlags:
    """Holds the result of the most recent ``CMP``."""

    def __init__(self):
        self._flags = {flag: False for flag in ComparisonFlag}
        self._flags[ComparisonFlag.ALWAYS] = True
        # Before any CMP, registers compare as 0 == 0.
        self.update(0, 0)

    def update(self, rs_value: int, rt_value: int) -> None:
        """Set every flag from the unsigned 32-bit operand values."""
        unsigned_s = to_unsigned32(rs_value)
        unsigned_t = to_unsigned32(rt_value)
        signed_s = to_signed32(rs_value)
        signed_t = to_signed32(rt_value)
        flags = self._flags
        flags[ComparisonFlag.ALWAYS] = True
        flags[ComparisonFlag.NEVER] = False
        flags[ComparisonFlag.EQ] = unsigned_s == unsigned_t
        flags[ComparisonFlag.NE] = unsigned_s != unsigned_t
        flags[ComparisonFlag.LTU] = unsigned_s < unsigned_t
        flags[ComparisonFlag.GEU] = unsigned_s >= unsigned_t
        flags[ComparisonFlag.LEU] = unsigned_s <= unsigned_t
        flags[ComparisonFlag.GTU] = unsigned_s > unsigned_t
        flags[ComparisonFlag.LT] = signed_s < signed_t
        flags[ComparisonFlag.GE] = signed_s >= signed_t
        flags[ComparisonFlag.LE] = signed_s <= signed_t
        flags[ComparisonFlag.GT] = signed_s > signed_t

    def test(self, flag: ComparisonFlag) -> bool:
        """Value of one comparison flag."""
        return self._flags[flag]


class TargetRegisterFile:
    """Quantum-operation target registers (S or T) holding masks.

    The register *content* is a bit mask — bit ``i`` selects qubit ``i``
    (S registers) or allowed pair ``i`` (T registers).  The mask format
    is an instantiation choice (Section 3.3.2); this file only stores
    and bounds-checks the values.
    """

    def __init__(self, prefix: str, num_registers: int, mask_width: int):
        self.prefix = prefix
        self.num_registers = num_registers
        self.mask_width = mask_width
        self._values = [0] * num_registers

    def _check(self, address: int) -> None:
        if not 0 <= address < self.num_registers:
            raise InvalidAddressError(
                f"{self.prefix}{address} out of range "
                f"(0..{self.num_registers - 1})")

    def read(self, address: int) -> int:
        """Mask stored in register <prefix><address>."""
        self._check(address)
        return self._values[address]

    def write(self, address: int, mask: int) -> None:
        """Store a mask; must fit in the configured mask width."""
        self._check(address)
        if mask < 0 or mask >= (1 << self.mask_width):
            raise InvalidAddressError(
                f"mask {mask:#x} does not fit in {self.mask_width} bits")
        self._values[address] = mask

    def reset(self) -> None:
        """Zero every target register."""
        self._values = [0] * self.num_registers


@dataclass
class MeasurementRegister:
    """One qubit-measurement result register Q_i with validity counter.

    CFC mechanism (Section 4.3): the counter ``pending`` (the paper's
    ``C_i``) increments when a measurement instruction on the qubit
    issues and decrements when the discrimination unit writes a result
    back.  ``Q_i`` is valid only while ``pending == 0``; ``FMR`` stalls
    otherwise.
    """

    value: int = 0
    pending: int = 0

    @property
    def valid(self) -> bool:
        """Whether FMR may read the register without stalling."""
        return self.pending == 0

    def on_measure_issued(self) -> None:
        """A measurement instruction on this qubit entered the pipeline."""
        self.pending += 1

    def on_result(self, result: int) -> None:
        """The discrimination unit wrote back a result."""
        if self.pending == 0:
            raise InvalidAddressError(
                "measurement result arrived with no pending measurement")
        self.value = result
        self.pending -= 1


class MeasurementResultRegisters:
    """The per-qubit Q registers, addressed by physical qubit address."""

    def __init__(self, qubit_addresses: tuple[int, ...]):
        self._registers = {address: MeasurementRegister()
                           for address in qubit_addresses}

    def register(self, qubit: int) -> MeasurementRegister:
        """The Q register of one qubit."""
        if qubit not in self._registers:
            raise InvalidAddressError(f"no measurement register Q{qubit}")
        return self._registers[qubit]

    def reset(self) -> None:
        """Clear all values and pending counters (new shot)."""
        for register in self._registers.values():
            register.value = 0
            register.pending = 0


class ExecutionFlagsFile:
    """Per-qubit execution flags for fast conditional execution.

    Flags are recomputed by fixed combinatorial logic whenever a
    measurement result *finishes* for the qubit (Section 4.3); they are
    independent of the Q-register validity machinery.
    """

    def __init__(self, qubit_addresses: tuple[int, ...]):
        self._last: dict[int, int | None] = {q: None for q in qubit_addresses}
        self._previous: dict[int, int | None] = {q: None
                                                 for q in qubit_addresses}

    def _check(self, qubit: int) -> None:
        if qubit not in self._last:
            raise InvalidAddressError(f"no execution flags for qubit {qubit}")

    def on_result(self, qubit: int, result: int) -> None:
        """Shift in a newly finished measurement result."""
        self._check(qubit)
        self._previous[qubit] = self._last[qubit]
        self._last[qubit] = result

    def test(self, qubit: int, flag: ExecutionFlag) -> bool:
        """Evaluate one execution flag for a qubit.

        Before any measurement has finished, only ALWAYS is '1' (the
        conditional flags have no result to condition on).
        """
        self._check(qubit)
        last = self._last[qubit]
        previous = self._previous[qubit]
        if flag is ExecutionFlag.ALWAYS:
            return True
        if last is None:
            return False
        if flag is ExecutionFlag.LAST_ONE:
            return last == 1
        if flag is ExecutionFlag.LAST_ZERO:
            return last == 0
        if flag is ExecutionFlag.LAST_TWO_EQUAL:
            return previous is not None and previous == last
        raise InvalidAddressError(f"unknown execution flag {flag}")

    def reset(self) -> None:
        """Forget all measurement history (new shot)."""
        for qubit in self._last:
            self._last[qubit] = None
            self._previous[qubit] = None


class DataMemory:
    """Word-addressed data memory (Fig. 2) for ``LD``/``ST``.

    Addresses are byte addresses as in a classical ISA, but accesses
    must be 4-byte aligned; the memory is sparse (a dict) since programs
    only touch a few locations.
    """

    def __init__(self, size_bytes: int = 1 << 20):
        self.size_bytes = size_bytes
        self._words: dict[int, int] = {}

    def _check(self, address: int) -> None:
        if address % 4 != 0:
            raise InvalidAddressError(
                f"unaligned memory access at {address:#x}")
        if not 0 <= address < self.size_bytes:
            raise InvalidAddressError(f"memory address {address:#x} out of "
                                      f"range (size {self.size_bytes:#x})")

    def load(self, address: int) -> int:
        """32-bit word at a byte address (0 if never written)."""
        self._check(address)
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        """Store the low 32 bits of ``value``."""
        self._check(address)
        self._words[address] = to_unsigned32(value)

    def reset(self) -> None:
        """Clear the memory."""
        self._words = {}
