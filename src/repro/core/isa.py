"""eQASM instantiation: the binding of the assembly framework to a
concrete binary format, chip, and operation configuration.

Section 2.4: "the definition of eQASM focuses on the assembly level ...
The binary format is defined during the instantiation of eQASM targeting
a concrete control electronic setup and quantum chip."  This class holds
every instantiation-time parameter; Section 4.2's 32-bit instantiation
for the seven-qubit chip is :func:`seven_qubit_instantiation`, and the
two-qubit experiment setup of Section 5 is :func:`two_qubit_instantiation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.core.isaspec.build import build_encoding_spec
from repro.core.isaspec.model import EncodingSpec
from repro.core.isaspec.registry import load_registered_spec
from repro.core.isaspec.validate import ensure_valid
from repro.core.operations import OperationSet, default_operation_set
from repro.topology.chip import QuantumChipTopology
from repro.topology.library import surface7, surface17, surface49, two_qubit_chip


@dataclass
class EQASMInstantiation:
    """All parameters fixed when eQASM is instantiated for a platform.

    The defaults implement the paper's chosen configuration
    (Section 4.2): 32-bit words, VLIW width 2, a 3-bit PI field
    (Config 9: ts3, wPI = 3, SOMQ), 32 S and 32 T registers with mask
    encoding, 20-bit QWAIT immediates, 9-bit q opcodes, and a 20 ns
    cycle.
    """

    name: str
    topology: QuantumChipTopology
    operations: OperationSet
    instruction_width: int = 32
    vliw_width: int = 2
    pi_width: int = 3
    num_gprs: int = 32
    num_single_qubit_target_registers: int = 32
    num_two_qubit_target_registers: int = 32
    qubit_mask_field_width: int = 7
    pair_mask_field_width: int = 16
    qwait_immediate_width: int = 20
    q_opcode_width: int = 9
    target_register_address_width: int = 5
    cycle_time_ns: float = 20.0
    measurement_cycles: int = 15
    #: The declarative binary format (see :mod:`repro.core.isaspec`).
    #: ``None`` builds the family layout from the width parameters
    #: above; registered instantiations pass a checked-in spec value.
    encoding_spec: EncodingSpec | None = None

    def __post_init__(self) -> None:
        if self.vliw_width < 1:
            raise ConfigurationError("VLIW width must be at least 1")
        if self.topology.qubit_mask_width > self.qubit_mask_field_width:
            raise ConfigurationError(
                f"chip {self.topology.name} needs a "
                f"{self.topology.qubit_mask_width}-bit qubit mask; the "
                f"instruction format provides {self.qubit_mask_field_width}")
        if self.topology.pair_mask_width > self.pair_mask_field_width:
            raise ConfigurationError(
                f"chip {self.topology.name} needs a "
                f"{self.topology.pair_mask_width}-bit pair mask; the "
                f"instruction format provides {self.pair_mask_field_width}")
        if self.operations.opcode_width != self.q_opcode_width:
            raise ConfigurationError(
                f"operation set assigns {self.operations.opcode_width}-bit "
                f"opcodes; the bundle format provides {self.q_opcode_width}")
        max_register = (1 << self.target_register_address_width)
        if self.num_single_qubit_target_registers > max_register:
            raise ConfigurationError("too many S registers for the field")
        if self.num_two_qubit_target_registers > max_register:
            raise ConfigurationError("too many T registers for the field")
        # The SMIS/SMIT layout places the 5-bit target-register field
        # 12 bits below the word's top; masks live in the bits below it
        # (see repro.core.encoding).
        mask_room = self.instruction_width - 12
        if self.qubit_mask_field_width > mask_room:
            raise ConfigurationError(
                f"{self.qubit_mask_field_width}-bit qubit masks do not "
                f"fit a {self.instruction_width}-bit word (at most "
                f"{mask_room}); widen the instruction format")
        if self.pair_mask_field_width > mask_room:
            raise ConfigurationError(
                f"{self.pair_mask_field_width}-bit pair masks do not "
                f"fit a {self.instruction_width}-bit word (at most "
                f"{mask_room}); widen the instruction format")
        if self.encoding_spec is None:
            self.encoding_spec = build_encoding_spec(
                self.name,
                self.instruction_width,
                qubit_mask_field_width=self.qubit_mask_field_width,
                pair_mask_field_width=self.pair_mask_field_width,
                qwait_immediate_width=self.qwait_immediate_width,
                q_opcode_width=self.q_opcode_width,
                target_register_address_width=(
                    self.target_register_address_width),
                vliw_width=self.vliw_width,
                pi_width=self.pi_width,
            )
        ensure_valid(self.encoding_spec)
        self._cross_validate_spec()

    def _cross_validate_spec(self) -> None:
        """Check the spec agrees with this instantiation's parameters
        and can address its chip."""
        spec = self.encoding_spec

        def mismatch(what: str, spec_value, isa_value) -> None:
            raise ConfigurationError(
                f"encoding spec {spec.name!r} {what} ({spec_value}) does "
                f"not match instantiation {self.name!r} ({isa_value})")

        if spec.instruction_width != self.instruction_width:
            mismatch("instruction width", spec.instruction_width,
                     self.instruction_width)
        field_widths = {
            ("SMIS", "qubits"): self.qubit_mask_field_width,
            ("SMIT", "pairs"): self.pair_mask_field_width,
            ("QWAIT", "cycles"): self.qwait_immediate_width,
        }
        for (format_name, attr), expected in field_widths.items():
            fmt = spec.format_named(format_name)
            for spec_field in fmt.fields if fmt else ():
                if spec_field.attr == attr and \
                        spec_field.width != expected:
                    mismatch(f"{format_name} {spec_field.name} width",
                             spec_field.width, expected)
        fmr = spec.format_named("FMR")
        if fmr is not None and self.topology.qubits:
            max_qubit = max(self.topology.qubits)
            for spec_field in fmr.fields:
                if spec_field.attr == "qubit" and \
                        max_qubit >= (1 << spec_field.width):
                    raise ConfigurationError(
                        f"chip {self.topology.name} has qubit addresses "
                        f"up to {max_qubit}; the spec's {spec_field.width}"
                        f"-bit FMR Qi field cannot address them — widen "
                        f"the field in the encoding spec")
        bundle = spec.bundle
        if bundle is None:
            raise ConfigurationError(
                f"encoding spec {spec.name!r} defines no bundle word; "
                f"quantum instructions cannot be encoded")
        if len(bundle.slots) != self.vliw_width:
            mismatch("VLIW slot count", len(bundle.slots),
                     self.vliw_width)
        if bundle.pi_width != self.pi_width:
            mismatch("PI width", bundle.pi_width, self.pi_width)
        for slot in bundle.slots:
            if slot.op_width != self.q_opcode_width:
                mismatch("bundle q-opcode width", slot.op_width,
                         self.q_opcode_width)
            if slot.reg_width != self.target_register_address_width:
                mismatch("bundle target-register width", slot.reg_width,
                         self.target_register_address_width)

    # ------------------------------------------------------------------
    # Derived limits
    # ------------------------------------------------------------------
    @property
    def max_pi(self) -> int:
        """Largest pre-interval a bundle instruction can encode."""
        return (1 << self.pi_width) - 1

    @property
    def max_qwait(self) -> int:
        """Largest immediate a QWAIT instruction can encode."""
        return (1 << self.qwait_immediate_width) - 1

    def ns_to_cycles(self, duration_ns: float) -> int:
        """Convert nanoseconds to (rounded) timing cycles."""
        return round(duration_ns / self.cycle_time_ns)

    def cycles_to_ns(self, cycles: int) -> float:
        """Convert timing cycles to nanoseconds."""
        return cycles * self.cycle_time_ns

    # ------------------------------------------------------------------
    # Mask helpers (assembly <-> register content translation)
    # ------------------------------------------------------------------
    def qubit_mask(self, qubits) -> int:
        """Encode a qubit list as a single-qubit target mask."""
        mask = 0
        available = set(self.topology.qubits)
        for qubit in qubits:
            if qubit not in available:
                raise ConfigurationError(
                    f"qubit {qubit} not on chip {self.topology.name}")
            mask |= 1 << qubit
        return mask

    def qubits_from_mask(self, mask: int) -> tuple[int, ...]:
        """Decode a single-qubit target mask to sorted qubit addresses."""
        qubits = []
        for qubit in self.topology.qubits:
            if (mask >> qubit) & 1:
                qubits.append(qubit)
        return tuple(sorted(qubits))

    def pair_mask(self, pairs) -> int:
        """Encode directed (source, target) pairs as a two-qubit mask."""
        mask = 0
        for source, target in pairs:
            address = self.topology.pair_address(source, target)
            mask |= 1 << address
        return mask

    def pairs_from_mask(self, mask: int) -> tuple[tuple[int, int], ...]:
        """Decode a two-qubit target mask to sorted (source, target)s."""
        pairs = []
        for pair in self.topology.pairs:
            if (mask >> pair.address) & 1:
                pairs.append(pair.as_tuple())
        return tuple(sorted(pairs))


def seven_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """The paper's 32-bit instantiation for the seven-qubit chip."""
    return EQASMInstantiation(
        name="eqasm-7q-32bit",
        topology=surface7(),
        operations=operations or default_operation_set(),
        encoding_spec=load_registered_spec("fig8-32bit"),
    )


def seventeen_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """A 64-bit instantiation for the distance-3 surface-17 chip.

    The paper's 32-bit format cannot address this chip: 24 couplings x
    2 directions need a 48-bit pair mask, far past the 16 bits of
    Fig. 8 (the paper itself notes the instantiation — word width
    included — is free per platform).  Doubling the word width keeps
    every format rule intact (the field layout scales with the width;
    see :mod:`repro.core.encoding`) while fitting the 17-bit qubit
    mask and the 48-bit pair mask.
    """
    return EQASMInstantiation(
        name="eqasm-17q-64bit",
        topology=surface17(),
        operations=operations or default_operation_set(),
        instruction_width=64,
        qubit_mask_field_width=17,
        pair_mask_field_width=48,
        encoding_spec=load_registered_spec("surface17-64bit"),
    )


def forty_nine_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """A 192-bit instantiation for the distance-5 surface-49 chip.

    The rotated distance-5 code has 25 data + 24 ancilla qubits and 80
    couplings — 160 directed pairs, so SMIT needs a 160-bit pair mask.
    Under the family layout (masks live in the bits below the
    target-register field, 12 bits down from the word top) the smallest
    byte-multiple word with that much room is 192 bits.  The chip also
    has qubit addresses up to 48, past a 5-bit FMR Qi field; the
    registered ``surface49-192bit`` spec widens Qi to 6 bits (moved to
    offset 14 so it stays clear of Rd at bit 20 — the overlap the spec
    validator would otherwise reject).  No hand-written layout exists
    for this width: the format is entirely the spec value.
    """
    return EQASMInstantiation(
        name="eqasm-49q-192bit",
        topology=surface49(),
        operations=operations or default_operation_set(),
        instruction_width=192,
        qubit_mask_field_width=49,
        pair_mask_field_width=160,
        encoding_spec=load_registered_spec("surface49-192bit"),
    )


def two_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """The Section 5 experimental setup: the seven-qubit instantiation
    retargeted (via a configuration file, per the paper) to the
    two-qubit chip with qubits renamed 0 and 2."""
    return EQASMInstantiation(
        name="eqasm-2q-32bit",
        topology=two_qubit_chip(),
        operations=operations or default_operation_set(),
        encoding_spec=load_registered_spec("fig8-32bit"),
    )
