"""eQASM instantiation: the binding of the assembly framework to a
concrete binary format, chip, and operation configuration.

Section 2.4: "the definition of eQASM focuses on the assembly level ...
The binary format is defined during the instantiation of eQASM targeting
a concrete control electronic setup and quantum chip."  This class holds
every instantiation-time parameter; Section 4.2's 32-bit instantiation
for the seven-qubit chip is :func:`seven_qubit_instantiation`, and the
two-qubit experiment setup of Section 5 is :func:`two_qubit_instantiation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.core.operations import OperationSet, default_operation_set
from repro.topology.chip import QuantumChipTopology
from repro.topology.library import surface7, surface17, two_qubit_chip


@dataclass
class EQASMInstantiation:
    """All parameters fixed when eQASM is instantiated for a platform.

    The defaults implement the paper's chosen configuration
    (Section 4.2): 32-bit words, VLIW width 2, a 3-bit PI field
    (Config 9: ts3, wPI = 3, SOMQ), 32 S and 32 T registers with mask
    encoding, 20-bit QWAIT immediates, 9-bit q opcodes, and a 20 ns
    cycle.
    """

    name: str
    topology: QuantumChipTopology
    operations: OperationSet
    instruction_width: int = 32
    vliw_width: int = 2
    pi_width: int = 3
    num_gprs: int = 32
    num_single_qubit_target_registers: int = 32
    num_two_qubit_target_registers: int = 32
    qubit_mask_field_width: int = 7
    pair_mask_field_width: int = 16
    qwait_immediate_width: int = 20
    q_opcode_width: int = 9
    target_register_address_width: int = 5
    cycle_time_ns: float = 20.0
    measurement_cycles: int = 15

    def __post_init__(self) -> None:
        if self.vliw_width < 1:
            raise ConfigurationError("VLIW width must be at least 1")
        if self.topology.qubit_mask_width > self.qubit_mask_field_width:
            raise ConfigurationError(
                f"chip {self.topology.name} needs a "
                f"{self.topology.qubit_mask_width}-bit qubit mask; the "
                f"instruction format provides {self.qubit_mask_field_width}")
        if self.topology.pair_mask_width > self.pair_mask_field_width:
            raise ConfigurationError(
                f"chip {self.topology.name} needs a "
                f"{self.topology.pair_mask_width}-bit pair mask; the "
                f"instruction format provides {self.pair_mask_field_width}")
        if self.operations.opcode_width != self.q_opcode_width:
            raise ConfigurationError(
                f"operation set assigns {self.operations.opcode_width}-bit "
                f"opcodes; the bundle format provides {self.q_opcode_width}")
        max_register = (1 << self.target_register_address_width)
        if self.num_single_qubit_target_registers > max_register:
            raise ConfigurationError("too many S registers for the field")
        if self.num_two_qubit_target_registers > max_register:
            raise ConfigurationError("too many T registers for the field")
        # The SMIS/SMIT layout places the 5-bit target-register field
        # 12 bits below the word's top; masks live in the bits below it
        # (see repro.core.encoding).
        mask_room = self.instruction_width - 12
        if self.qubit_mask_field_width > mask_room:
            raise ConfigurationError(
                f"{self.qubit_mask_field_width}-bit qubit masks do not "
                f"fit a {self.instruction_width}-bit word (at most "
                f"{mask_room}); widen the instruction format")
        if self.pair_mask_field_width > mask_room:
            raise ConfigurationError(
                f"{self.pair_mask_field_width}-bit pair masks do not "
                f"fit a {self.instruction_width}-bit word (at most "
                f"{mask_room}); widen the instruction format")

    # ------------------------------------------------------------------
    # Derived limits
    # ------------------------------------------------------------------
    @property
    def max_pi(self) -> int:
        """Largest pre-interval a bundle instruction can encode."""
        return (1 << self.pi_width) - 1

    @property
    def max_qwait(self) -> int:
        """Largest immediate a QWAIT instruction can encode."""
        return (1 << self.qwait_immediate_width) - 1

    def ns_to_cycles(self, duration_ns: float) -> int:
        """Convert nanoseconds to (rounded) timing cycles."""
        return round(duration_ns / self.cycle_time_ns)

    def cycles_to_ns(self, cycles: int) -> float:
        """Convert timing cycles to nanoseconds."""
        return cycles * self.cycle_time_ns

    # ------------------------------------------------------------------
    # Mask helpers (assembly <-> register content translation)
    # ------------------------------------------------------------------
    def qubit_mask(self, qubits) -> int:
        """Encode a qubit list as a single-qubit target mask."""
        mask = 0
        available = set(self.topology.qubits)
        for qubit in qubits:
            if qubit not in available:
                raise ConfigurationError(
                    f"qubit {qubit} not on chip {self.topology.name}")
            mask |= 1 << qubit
        return mask

    def qubits_from_mask(self, mask: int) -> tuple[int, ...]:
        """Decode a single-qubit target mask to sorted qubit addresses."""
        qubits = []
        for qubit in self.topology.qubits:
            if (mask >> qubit) & 1:
                qubits.append(qubit)
        return tuple(sorted(qubits))

    def pair_mask(self, pairs) -> int:
        """Encode directed (source, target) pairs as a two-qubit mask."""
        mask = 0
        for source, target in pairs:
            address = self.topology.pair_address(source, target)
            mask |= 1 << address
        return mask

    def pairs_from_mask(self, mask: int) -> tuple[tuple[int, int], ...]:
        """Decode a two-qubit target mask to sorted (source, target)s."""
        pairs = []
        for pair in self.topology.pairs:
            if (mask >> pair.address) & 1:
                pairs.append(pair.as_tuple())
        return tuple(sorted(pairs))


def seven_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """The paper's 32-bit instantiation for the seven-qubit chip."""
    return EQASMInstantiation(
        name="eqasm-7q-32bit",
        topology=surface7(),
        operations=operations or default_operation_set(),
    )


def seventeen_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """A 64-bit instantiation for the distance-3 surface-17 chip.

    The paper's 32-bit format cannot address this chip: 24 couplings x
    2 directions need a 48-bit pair mask, far past the 16 bits of
    Fig. 8 (the paper itself notes the instantiation — word width
    included — is free per platform).  Doubling the word width keeps
    every format rule intact (the field layout scales with the width;
    see :mod:`repro.core.encoding`) while fitting the 17-bit qubit
    mask and the 48-bit pair mask.
    """
    return EQASMInstantiation(
        name="eqasm-17q-64bit",
        topology=surface17(),
        operations=operations or default_operation_set(),
        instruction_width=64,
        qubit_mask_field_width=17,
        pair_mask_field_width=48,
    )


def two_qubit_instantiation(
        operations: OperationSet | None = None) -> EQASMInstantiation:
    """The Section 5 experimental setup: the seven-qubit instantiation
    retargeted (via a configuration file, per the paper) to the
    two-qubit chip with qubits renamed 0 and 2."""
    return EQASMInstantiation(
        name="eqasm-2q-32bit",
        topology=two_qubit_chip(),
        operations=operations or default_operation_set(),
    )
