"""eQASM ISA core: operations, instructions, parser, assembler, timeline."""

from repro.core.assembler import AssembledProgram, Assembler, Disassembler
from repro.core.errors import (
    AssemblyError,
    ConfigurationError,
    DecodingError,
    EQASMError,
    EncodingError,
    InvalidAddressError,
    OperationConflictError,
    ParseError,
    PlantError,
    RuntimeFault,
    TimingViolationError,
    TopologyError,
)
from repro.core.isa import (
    EQASMInstantiation,
    seven_qubit_instantiation,
    seventeen_qubit_instantiation,
    two_qubit_instantiation,
)
from repro.core.microcode import (
    DeviceKind,
    MicroOperation,
    MicroOpRole,
    MicrocodeUnit,
)
from repro.core.operations import (
    ExecutionFlag,
    OperationKind,
    OperationSet,
    QuantumOperation,
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.core.program import Program
from repro.core.registers import ComparisonFlag
from repro.core.retarget import extract_semantics, retarget_program
from repro.core.timeline import (
    TimedOperation,
    Timeline,
    TimelineBuilder,
    TimingPoint,
    build_timeline,
)

__all__ = [
    "AssembledProgram",
    "Assembler",
    "AssemblyError",
    "ComparisonFlag",
    "ConfigurationError",
    "DecodingError",
    "DeviceKind",
    "Disassembler",
    "EQASMError",
    "EQASMInstantiation",
    "EncodingError",
    "ExecutionFlag",
    "InvalidAddressError",
    "MicroOperation",
    "MicroOpRole",
    "MicrocodeUnit",
    "OperationConflictError",
    "OperationKind",
    "OperationSet",
    "ParseError",
    "PlantError",
    "Program",
    "QuantumOperation",
    "RuntimeFault",
    "TimedOperation",
    "Timeline",
    "TimelineBuilder",
    "TimingPoint",
    "TimingViolationError",
    "TopologyError",
    "add_rabi_amplitude_operations",
    "extract_semantics",
    "retarget_program",
    "build_timeline",
    "default_operation_set",
    "seven_qubit_instantiation",
    "seventeen_qubit_instantiation",
    "two_qubit_instantiation",
]
