"""Instruction dataclasses for eQASM (Table 1).

The assembly level is the definition level of eQASM; these classes are
the in-memory form of parsed assembly and the input/output of the binary
encoder.  Each class knows how to print itself back to canonical
assembly text (``to_assembly``), which gives us parse/print round-trip
tests for free.

Instruction taxonomy (Table 1):

* auxiliary classical — control (``CMP``, ``BR``), data transfer
  (``FBR``, ``LDI``, ``LDUI``, ``LD``, ``ST``, ``FMR``), logical
  (``AND``/``OR``/``XOR``/``NOT``), arithmetic (``ADD``/``SUB``),
  plus ``NOP``/``STOP`` added by this instantiation;
* waiting — ``QWAIT``, ``QWAITR``;
* target-specify — ``SMIS``, ``SMIT``;
* quantum bundle — ``[PI,] op target (| op target)*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AssemblyError
from repro.core.registers import ComparisonFlag


class Instruction:
    """Base class: every instruction renders to assembly text."""

    def to_assembly(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_assembly()

    @property
    def is_quantum(self) -> bool:
        """Whether the classical pipeline forwards this to the quantum
        pipeline (waiting, target-specify and bundle instructions)."""
        return isinstance(self, (QWait, QWaitR, SMIS, SMIT, Bundle))


# ----------------------------------------------------------------------
# Auxiliary classical instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Nop(Instruction):
    """No operation."""

    def to_assembly(self) -> str:
        return "NOP"


@dataclass(frozen=True)
class Stop(Instruction):
    """End of program (instantiation extension; QuMIS precedent)."""

    def to_assembly(self) -> str:
        return "STOP"


@dataclass(frozen=True)
class Cmp(Instruction):
    """``CMP Rs, Rt`` — set all comparison flags from Rs vs Rt."""

    rs: int
    rt: int

    def to_assembly(self) -> str:
        return f"CMP R{self.rs}, R{self.rt}"


@dataclass(frozen=True)
class Br(Instruction):
    """``BR <flag>, Offset`` — PC += Offset if the flag is '1'.

    ``target`` may be a label (str, resolved by the assembler) or an
    already-resolved integer offset in instructions relative to the
    *next* PC, matching "jump to PC + Offset".
    """

    condition: ComparisonFlag
    target: str | int

    def to_assembly(self) -> str:
        return f"BR {self.condition.name}, {self.target}"

    def with_offset(self, offset: int) -> "Br":
        """A copy with the label replaced by a numeric offset."""
        return Br(condition=self.condition, target=offset)


@dataclass(frozen=True)
class Fbr(Instruction):
    """``FBR <flag>, Rd`` — fetch a comparison flag into a GPR."""

    condition: ComparisonFlag
    rd: int

    def to_assembly(self) -> str:
        return f"FBR {self.condition.name}, R{self.rd}"


@dataclass(frozen=True)
class Ldi(Instruction):
    """``LDI Rd, Imm`` — Rd = sign_ext(Imm[19..0], 32)."""

    rd: int
    imm: int

    def to_assembly(self) -> str:
        return f"LDI R{self.rd}, {self.imm}"


@dataclass(frozen=True)
class Ldui(Instruction):
    """``LDUI Rd, Imm, Rs`` — Rd = Imm[14..0] :: Rs[16..0]."""

    rd: int
    imm: int
    rs: int

    def to_assembly(self) -> str:
        return f"LDUI R{self.rd}, {self.imm}, R{self.rs}"


@dataclass(frozen=True)
class Ld(Instruction):
    """``LD Rd, Rt(Imm)`` — Rd = memory[Rt + Imm]."""

    rd: int
    rt: int
    imm: int

    def to_assembly(self) -> str:
        return f"LD R{self.rd}, R{self.rt}({self.imm})"


@dataclass(frozen=True)
class St(Instruction):
    """``ST Rs, Rt(Imm)`` — memory[Rt + Imm] = Rs."""

    rs: int
    rt: int
    imm: int

    def to_assembly(self) -> str:
        return f"ST R{self.rs}, R{self.rt}({self.imm})"


@dataclass(frozen=True)
class Fmr(Instruction):
    """``FMR Rd, Qi`` — fetch the last measurement result of qubit i.

    Stalls while Q_i is invalid (pending measurements outstanding)."""

    rd: int
    qubit: int

    def to_assembly(self) -> str:
        return f"FMR R{self.rd}, Q{self.qubit}"


@dataclass(frozen=True)
class LogicalOp(Instruction):
    """``AND/OR/XOR Rd, Rs, Rt`` — bitwise logical operations."""

    mnemonic_name: str  # "AND" | "OR" | "XOR"
    rd: int
    rs: int
    rt: int

    def __post_init__(self) -> None:
        if self.mnemonic_name not in ("AND", "OR", "XOR"):
            raise AssemblyError(
                f"invalid logical mnemonic {self.mnemonic_name}")

    def to_assembly(self) -> str:
        return f"{self.mnemonic_name} R{self.rd}, R{self.rs}, R{self.rt}"


@dataclass(frozen=True)
class Not(Instruction):
    """``NOT Rd, Rt`` — bitwise complement."""

    rd: int
    rt: int

    def to_assembly(self) -> str:
        return f"NOT R{self.rd}, R{self.rt}"


@dataclass(frozen=True)
class ArithOp(Instruction):
    """``ADD/SUB Rd, Rs, Rt`` — 32-bit wrap-around arithmetic."""

    mnemonic_name: str  # "ADD" | "SUB"
    rd: int
    rs: int
    rt: int

    def __post_init__(self) -> None:
        if self.mnemonic_name not in ("ADD", "SUB"):
            raise AssemblyError(
                f"invalid arithmetic mnemonic {self.mnemonic_name}")

    def to_assembly(self) -> str:
        return f"{self.mnemonic_name} R{self.rd}, R{self.rs}, R{self.rt}"


# ----------------------------------------------------------------------
# Waiting instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QWait(Instruction):
    """``QWAIT Imm`` — new timing point Imm cycles after the last one."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise AssemblyError("QWAIT duration cannot be negative")

    def to_assembly(self) -> str:
        return f"QWAIT {self.cycles}"


@dataclass(frozen=True)
class QWaitR(Instruction):
    """``QWAITR Rs`` — register-valued waiting."""

    rs: int

    def to_assembly(self) -> str:
        return f"QWAITR R{self.rs}"


# ----------------------------------------------------------------------
# Target-specify instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SMIS(Instruction):
    """``SMIS Sd, {q0, q1, ...}`` — set a single-qubit target register."""

    sd: int
    qubits: frozenset[int]

    def __post_init__(self) -> None:
        if not self.qubits:
            raise AssemblyError(f"SMIS S{self.sd}: empty qubit list")
        if any(q < 0 for q in self.qubits):
            raise AssemblyError(f"SMIS S{self.sd}: negative qubit address")

    def to_assembly(self) -> str:
        body = ", ".join(str(q) for q in sorted(self.qubits))
        return f"SMIS S{self.sd}, {{{body}}}"

    def mask(self) -> int:
        """The register content: one bit per selected qubit address."""
        value = 0
        for qubit in self.qubits:
            value |= 1 << qubit
        return value


@dataclass(frozen=True)
class SMIT(Instruction):
    """``SMIT Td, {(s, t), ...}`` — set a two-qubit target register.

    Pairs are directed (source, target) tuples; the mask encoding maps
    each pair to its edge address on the chip, so building the mask
    needs the topology and happens in the assembler.
    """

    td: int
    pairs: frozenset[tuple[int, int]]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise AssemblyError(f"SMIT T{self.td}: empty pair list")

    def to_assembly(self) -> str:
        body = ", ".join(f"({s}, {t})" for s, t in sorted(self.pairs))
        return f"SMIT T{self.td}, {{{body}}}"


# ----------------------------------------------------------------------
# Quantum bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BundleOperation:
    """One quantum operation inside a bundle: name + target register.

    ``register`` is ``("S", i)`` or ``("T", i)``; QNOP carries None.
    """

    name: str
    register: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if self.register is not None:
            kind, index = self.register
            if kind not in ("S", "T"):
                raise AssemblyError(
                    f"bundle operand register kind {kind!r} invalid")
            if index < 0:
                raise AssemblyError("negative target register index")

    def to_assembly(self) -> str:
        if self.register is None:
            return self.name
        kind, index = self.register
        return f"{self.name} {kind}{index}"


@dataclass(frozen=True)
class Bundle(Instruction):
    """``[PI,] op target (| op target)*`` — parallel quantum operations.

    ``pi`` is the pre-interval: the operations start ``pi`` cycles after
    the previous timing point (default 1, Section 3.1.2).  The assembly
    form allows arbitrarily many operations; the assembler splits the
    bundle into VLIW-width instruction words with PI = 0 continuations
    (Section 3.4.2).
    """

    operations: tuple[BundleOperation, ...]
    pi: int = 1
    explicit_pi: bool = True

    def __post_init__(self) -> None:
        if self.pi < 0:
            raise AssemblyError("PI cannot be negative")
        if not self.operations:
            raise AssemblyError("empty quantum bundle")

    def to_assembly(self) -> str:
        ops = " | ".join(op.to_assembly() for op in self.operations)
        if self.explicit_pi:
            return f"{self.pi}, {ops}"
        return ops


#: Mnemonic -> instruction class, for the parser's classical dispatch.
CLASSICAL_MNEMONICS = {
    "NOP": Nop,
    "STOP": Stop,
    "CMP": Cmp,
    "BR": Br,
    "FBR": Fbr,
    "LDI": Ldi,
    "LDUI": Ldui,
    "LD": Ld,
    "ST": St,
    "FMR": Fmr,
    "AND": LogicalOp,
    "OR": LogicalOp,
    "XOR": LogicalOp,
    "NOT": Not,
    "ADD": ArithOp,
    "SUB": ArithOp,
}

WAITING_MNEMONICS = {"QWAIT": QWait, "QWAITR": QWaitR}
TARGET_MNEMONICS = {"SMIS": SMIS, "SMIT": SMIT}
