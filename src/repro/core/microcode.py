"""Microcode unit: q opcode -> micro-operation translation (Section 4.3).

Inside each VLIW lane the microcode unit translates the 9-bit q opcode
into one micro-operation for a single-qubit operation, or two
(``u_op_src`` and ``u_op_tgt``) for a two-qubit operation.  The
translation table — the *Q control store* — is a lookup table written at
compile time from the same :class:`~repro.core.operations.OperationSet`
that configured the assembler, guaranteeing the consistency the paper
requires between assembler, microcode unit and pulse generation.

A micro-operation carries:

* the parent operation name (which the codeword-triggered pulse
  generation resolves to a pulse/unitary),
* its role (``single`` / ``source`` / ``target`` / ``measure``),
* the device kind it must be routed to (microwave for x/y rotations,
  flux for CZ-style gates, measurement for readout) — used by the
  device event distributor,
* the execution-flag selection for fast conditional execution,
* a numeric codeword (dense index into the pulse tables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.operations import (
    ExecutionFlag,
    OperationKind,
    OperationSet,
    QuantumOperation,
)


class DeviceKind(enum.Enum):
    """The slave-device class a micro-operation is routed to (Fig. 10)."""

    MICROWAVE = "microwave"      # HDAWG + VSM: single-qubit x/y rotations
    FLUX = "flux"                # HDAWG flux lines: CZ, z rotations
    MEASUREMENT = "measurement"  # UHFQC feedlines


class MicroOpRole(enum.Enum):
    """Which endpoint of the operation a micro-operation drives."""

    SINGLE = "single"
    SOURCE = "source"
    TARGET = "target"
    MEASURE = "measure"


@dataclass(frozen=True)
class MicroOperation:
    """One micro-operation emitted by the microcode unit."""

    operation: str
    role: MicroOpRole
    device: DeviceKind
    codeword: int
    condition: ExecutionFlag
    duration_cycles: int

    @property
    def is_measurement(self) -> bool:
        """Whether this micro-operation starts a readout."""
        return self.role is MicroOpRole.MEASURE


def _device_for(operation: QuantumOperation) -> DeviceKind:
    """Default device routing: measurements to the UHFQC, two-qubit
    (flux-pulsed) gates to flux AWGs, everything else to microwave."""
    if operation.kind is OperationKind.MEASUREMENT:
        return DeviceKind.MEASUREMENT
    if operation.kind is OperationKind.TWO_QUBIT:
        return DeviceKind.FLUX
    return DeviceKind.MICROWAVE


class MicrocodeUnit:
    """The Q control store: maps q opcodes to micro-operations."""

    def __init__(self, operations: OperationSet):
        self.operations = operations
        self._store: dict[int, tuple[MicroOperation, ...]] = {}
        next_codeword = 1
        for name in operations.names():
            operation = operations.get(name)
            opcode = operations.opcode(name)
            if operation.kind is OperationKind.NOP:
                self._store[opcode] = ()
                continue
            device = _device_for(operation)
            if operation.kind is OperationKind.TWO_QUBIT:
                source = MicroOperation(
                    operation=name, role=MicroOpRole.SOURCE, device=device,
                    codeword=next_codeword, condition=operation.condition,
                    duration_cycles=operation.duration_cycles)
                target = MicroOperation(
                    operation=name, role=MicroOpRole.TARGET, device=device,
                    codeword=next_codeword + 1,
                    condition=operation.condition,
                    duration_cycles=operation.duration_cycles)
                self._store[opcode] = (source, target)
                next_codeword += 2
            elif operation.kind is OperationKind.MEASUREMENT:
                measure = MicroOperation(
                    operation=name, role=MicroOpRole.MEASURE, device=device,
                    codeword=next_codeword, condition=operation.condition,
                    duration_cycles=operation.duration_cycles)
                self._store[opcode] = (measure,)
                next_codeword += 1
            else:
                single = MicroOperation(
                    operation=name, role=MicroOpRole.SINGLE, device=device,
                    codeword=next_codeword, condition=operation.condition,
                    duration_cycles=operation.duration_cycles)
                self._store[opcode] = (single,)
                next_codeword += 1

    def translate(self, q_opcode: int) -> tuple[MicroOperation, ...]:
        """Micro-operations for a q opcode (empty tuple for QNOP)."""
        if q_opcode not in self._store:
            raise ConfigurationError(
                f"q opcode {q_opcode} not in the Q control store")
        return self._store[q_opcode]

    def translate_name(self, name: str) -> tuple[MicroOperation, ...]:
        """Micro-operations for an operation name."""
        return self.translate(self.operations.opcode(name))

    def __len__(self) -> int:
        return len(self._store)
