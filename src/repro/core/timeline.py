"""Reserve-phase timing semantics (Section 3.1).

eQASM's queue-based timing control splits execution into a *reserve*
phase (non-deterministic timing domain: instructions construct a
timeline of timing points with associated operations) and a *trigger*
phase (deterministic domain: a timer fires each point's operations).

:class:`TimelineBuilder` is the pure architectural model of the reserve
phase.  It is the single source of truth for the timing rules:

* ``QWAIT n`` / ``QWAITR Rs`` — a new timing point ``n`` cycles after
  the *last generated* timing point (``n = 0`` re-generates the same
  point);
* a bundle's PI is exactly ``QWAIT PI`` merged into the bundle
  (default 1 when unspecified);
* all operations of bundles mapping to one timing point start together;
* ``SMIS``/``SMIT`` update target registers, with the register read
  happening when a bundle references it (so later SMIS writes do not
  retroactively change earlier bundles);
* two operations touching the same qubit at one timing point are an
  error — the quantum processor stops (Section 4.3).

The microarchitecture (:mod:`repro.uarch`) implements the same rules
with queues and pipelines; its tests cross-check against this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import AssemblyError, OperationConflictError
from repro.core.instructions import (
    Bundle,
    Instruction,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
)
from repro.core.isa import EQASMInstantiation
from repro.core.operations import OperationKind, QuantumOperation


@dataclass(frozen=True)
class TimedOperation:
    """One quantum operation resolved onto physical qubits at a point."""

    name: str
    operation: QuantumOperation
    qubits: tuple[int, ...] = ()
    pairs: tuple[tuple[int, int], ...] = ()

    def touched_qubits(self) -> tuple[int, ...]:
        """Every physical qubit this operation drives."""
        touched = list(self.qubits)
        for source, target in self.pairs:
            touched.extend((source, target))
        return tuple(touched)


@dataclass
class TimingPoint:
    """A cycle on the timeline with the operations starting there."""

    cycle: int
    operations: list[TimedOperation] = field(default_factory=list)


@dataclass
class Timeline:
    """The constructed timeline: ordered timing points."""

    points: list[TimingPoint] = field(default_factory=list)

    def total_cycles(self) -> int:
        """Cycle at which the last operation finishes."""
        end = 0
        for point in self.points:
            for op in point.operations:
                end = max(end, point.cycle + op.operation.duration_cycles)
        return end

    def operations_at(self, cycle: int) -> list[TimedOperation]:
        """Operations starting at a given cycle (empty if none)."""
        for point in self.points:
            if point.cycle == cycle:
                return list(point.operations)
        return []

    def all_operations(self) -> list[tuple[int, TimedOperation]]:
        """Flat (cycle, operation) list in time order."""
        out = []
        for point in sorted(self.points, key=lambda p: p.cycle):
            for op in point.operations:
                out.append((point.cycle, op))
        return out


class TimelineBuilder:
    """Architectural interpreter of the reserve phase.

    ``gpr_reader`` supplies register values for ``QWAITR`` (the pure
    model has no classical pipeline); it defaults to a reader that
    raises, so programs using QWAITR must provide one.
    """

    def __init__(self, isa: EQASMInstantiation,
                 gpr_reader: Callable[[int], int] | None = None):
        self.isa = isa
        self._gpr_reader = gpr_reader
        self._s_registers: dict[int, int] = {}
        self._t_registers: dict[int, int] = {}
        self._current_cycle = 0
        self._points: dict[int, TimingPoint] = {}
        self._busy_until: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Instruction feed
    # ------------------------------------------------------------------
    def feed(self, instruction: Instruction) -> None:
        """Process one instruction in program order.

        Classical instructions other than QWAITR's register read do not
        interact with the timeline and are ignored here.
        """
        if isinstance(instruction, QWait):
            self._advance(instruction.cycles)
        elif isinstance(instruction, QWaitR):
            if self._gpr_reader is None:
                raise AssemblyError(
                    "QWAITR needs a GPR reader in the timeline model")
            value = self._gpr_reader(instruction.rs)
            if value < 0:
                raise AssemblyError(f"QWAITR read negative value {value}")
            self._advance(value)
        elif isinstance(instruction, SMIS):
            self._s_registers[instruction.sd] = self.isa.qubit_mask(
                instruction.qubits)
        elif isinstance(instruction, SMIT):
            mask = self.isa.pair_mask(instruction.pairs)
            self.isa.topology.validate_pair_mask(mask)
            self._t_registers[instruction.td] = mask
        elif isinstance(instruction, Bundle):
            self._feed_bundle(instruction)

    def feed_program(self, instructions) -> "TimelineBuilder":
        """Feed a sequence of instructions; returns self for chaining."""
        for instruction in instructions:
            self.feed(instruction)
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance(self, cycles: int) -> None:
        if cycles < 0:
            raise AssemblyError("cannot wait a negative number of cycles")
        self._current_cycle += cycles

    def _feed_bundle(self, bundle: Bundle) -> None:
        self._advance(bundle.pi)
        cycle = self._current_cycle
        point = self._points.setdefault(cycle, TimingPoint(cycle=cycle))
        for slot in bundle.operations:
            operation = self.isa.operations.get(slot.name)
            if operation.kind is OperationKind.NOP:
                continue
            timed = self._resolve_slot(slot.name, operation, slot.register)
            self._check_conflicts(point, timed)
            point.operations.append(timed)
            for qubit in timed.touched_qubits():
                busy_until = cycle + operation.duration_cycles
                self._busy_until[qubit] = max(
                    self._busy_until.get(qubit, 0), busy_until)

    def _resolve_slot(self, name: str, operation: QuantumOperation,
                      register: tuple[str, int] | None) -> TimedOperation:
        if register is None:
            raise AssemblyError(f"operation {name} lacks a target register")
        kind, index = register
        if operation.uses_two_qubit_target:
            if kind != "T":
                raise AssemblyError(f"{name} requires a T register")
            mask = self._t_registers.get(index, 0)
            pairs = self.isa.pairs_from_mask(mask)
            if not pairs:
                raise AssemblyError(
                    f"{name} T{index} selects no qubit pairs (register "
                    f"never set?)")
            return TimedOperation(name=name, operation=operation,
                                  pairs=pairs)
        if kind != "S":
            raise AssemblyError(f"{name} requires an S register")
        mask = self._s_registers.get(index, 0)
        qubits = self.isa.qubits_from_mask(mask)
        if not qubits:
            raise AssemblyError(
                f"{name} S{index} selects no qubits (register never set?)")
        return TimedOperation(name=name, operation=operation, qubits=qubits)

    def _check_conflicts(self, point: TimingPoint,
                         new: TimedOperation) -> None:
        new_qubits = set(new.touched_qubits())
        if len(new_qubits) != len(new.touched_qubits()):
            raise OperationConflictError(
                f"operation {new.name} touches a qubit twice at cycle "
                f"{point.cycle}")
        for existing in point.operations:
            overlap = new_qubits.intersection(existing.touched_qubits())
            if overlap:
                raise OperationConflictError(
                    f"operations {existing.name} and {new.name} both touch "
                    f"qubit(s) {sorted(overlap)} at cycle {point.cycle}")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def timeline(self) -> Timeline:
        """The constructed timeline, points in time order."""
        ordered = sorted(self._points.values(), key=lambda p: p.cycle)
        return Timeline(points=[p for p in ordered if p.operations])

    @property
    def current_cycle(self) -> int:
        """The cycle of the last generated timing point."""
        return self._current_cycle


def build_timeline(isa: EQASMInstantiation, instructions,
                   gpr_reader: Callable[[int], int] | None = None) -> Timeline:
    """Convenience: build the timeline of an instruction sequence."""
    builder = TimelineBuilder(isa, gpr_reader=gpr_reader)
    builder.feed_program(instructions)
    return builder.timeline()
