"""Parser for eQASM assembly text.

Accepts the syntax used throughout the paper (Figs. 3, 4, 5 and the
Section 3 listings):

* comments start with ``#`` and run to end of line;
* labels are ``name:`` at the start of a line (may stand alone);
* classical instructions: ``LDI R0, 1``, ``BR EQ, eq_path``,
  ``LD R1, R2(8)``, ``FMR R1, Q1`` ...;
* waiting: ``QWAIT 10000``, ``QWAITR R0``;
* target-specify: ``SMIS S7, {0, 2}``, ``SMIT T3, {(1, 3), (2, 4)}``;
* quantum bundles: ``[PI,] op Sreg [| op Treg]*`` — e.g.
  ``1, X90 S0 | X S2`` or ``Y S7`` (PI defaults to 1) or
  ``0, CNOT T3 | QNOP``.

Mnemonics and register names are case-insensitive; classical mnemonics
are reserved words and may not be used as quantum operation names.

The parser is purely syntactic: it does not need the operation
configuration or chip topology.  Semantic checks (operation known,
masks valid, registers in range) happen in
:mod:`repro.core.program` / :mod:`repro.core.assembler`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ParseError
from repro.core.instructions import (
    ArithOp,
    Br,
    Bundle,
    BundleOperation,
    CLASSICAL_MNEMONICS,
    Cmp,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.registers import ComparisonFlag

_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):")
_GPR_RE = re.compile(r"^[Rr](\d+)$")
_SREG_RE = re.compile(r"^[Ss](\d+)$")
_TREG_RE = re.compile(r"^[Tt](\d+)$")
_QREG_RE = re.compile(r"^[Qq](\d+)$")
_MEM_OPERAND_RE = re.compile(r"^[Rr](\d+)\s*\(\s*(-?(?:0[xX][0-9a-fA-F]+|\d+))\s*\)$")
_BUNDLE_OP_RE = re.compile(r"^([A-Za-z_]\w*)(?:\s+([SsTt]\d+))?$")
_INT_RE = re.compile(r"^-?(?:0[xX][0-9a-fA-F]+|\d+)$")


@dataclass(frozen=True)
class ParsedLine:
    """One source line: labels defined here plus an optional instruction."""

    labels: tuple[str, ...]
    instruction: Instruction | None
    line_number: int
    source: str


def parse_int(token: str) -> int:
    """Parse a decimal or hex (0x) integer literal."""
    token = token.strip()
    if not _INT_RE.match(token):
        raise ValueError(f"not an integer literal: {token!r}")
    return int(token, 0)


def parse_gpr(token: str) -> int:
    """Parse a general-purpose register token like ``R5``."""
    match = _GPR_RE.match(token.strip())
    if not match:
        raise ValueError(f"expected GPR (R<i>), got {token!r}")
    return int(match.group(1))


def parse_comparison_flag(token: str) -> ComparisonFlag:
    """Parse a comparison-flag name like ``EQ`` or ``ALWAYS``."""
    name = token.strip().upper()
    try:
        return ComparisonFlag[name]
    except KeyError:
        known = ", ".join(flag.name for flag in ComparisonFlag)
        raise ValueError(f"unknown comparison flag {token!r}; "
                         f"known flags: {known}")


def _split_operands(text: str) -> list[str]:
    """Split an operand string on top-level commas.

    Commas inside ``{...}`` and ``(...)`` (SMIS/SMIT lists) do not
    separate operands.
    """
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char in "{(":
            depth += 1
        elif char in "})":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Parser:
    """Parses eQASM assembly text into instructions and labels."""

    def parse_text(self, text: str) -> list[ParsedLine]:
        """Parse a complete assembly listing."""
        parsed: list[ParsedLine] = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            parsed_line = self.parse_line(raw, line_number)
            if parsed_line.labels or parsed_line.instruction is not None:
                parsed.append(parsed_line)
        return parsed

    def parse_line(self, raw: str, line_number: int = 0) -> ParsedLine:
        """Parse a single source line."""
        text = raw.split("#", 1)[0].strip()
        labels: list[str] = []
        while True:
            match = _LABEL_RE.match(text)
            if not match:
                break
            labels.append(match.group(1))
            text = text[match.end():].strip()
        if not text:
            return ParsedLine(labels=tuple(labels), instruction=None,
                              line_number=line_number, source=raw)
        try:
            instruction = self._parse_statement(text)
        except ValueError as error:
            raise ParseError(str(error), line_number, raw)
        return ParsedLine(labels=tuple(labels), instruction=instruction,
                          line_number=line_number, source=raw)

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _parse_statement(self, text: str) -> Instruction:
        head = text.split(None, 1)[0].rstrip(",").upper()
        if head in CLASSICAL_MNEMONICS:
            return self._parse_classical(head, text)
        if head == "QWAIT":
            return QWait(cycles=self._sole_int_operand("QWAIT", text))
        if head == "QWAITR":
            operands = self._operands("QWAITR", text, count=1)
            return QWaitR(rs=parse_gpr(operands[0]))
        if head == "SMIS":
            return self._parse_smis(text)
        if head == "SMIT":
            return self._parse_smit(text)
        return self._parse_bundle(text)

    def _operands(self, mnemonic: str, text: str,
                  count: int | None = None) -> list[str]:
        """Split the operand list after a mnemonic, checking arity."""
        rest = text.split(None, 1)
        operand_text = rest[1] if len(rest) > 1 else ""
        operands = _split_operands(operand_text)
        if count is not None and len(operands) != count:
            raise ValueError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}")
        return operands

    def _sole_int_operand(self, mnemonic: str, text: str) -> int:
        operands = self._operands(mnemonic, text, count=1)
        return parse_int(operands[0])

    # ------------------------------------------------------------------
    # Classical instructions
    # ------------------------------------------------------------------
    def _parse_classical(self, mnemonic: str, text: str) -> Instruction:
        if mnemonic == "NOP":
            self._operands("NOP", text, count=0)
            return Nop()
        if mnemonic == "STOP":
            self._operands("STOP", text, count=0)
            return Stop()
        if mnemonic == "CMP":
            operands = self._operands("CMP", text, count=2)
            return Cmp(rs=parse_gpr(operands[0]), rt=parse_gpr(operands[1]))
        if mnemonic == "BR":
            operands = self._operands("BR", text, count=2)
            condition = parse_comparison_flag(operands[0])
            target_token = operands[1]
            target: str | int
            if _INT_RE.match(target_token):
                target = parse_int(target_token)
            else:
                target = target_token
            return Br(condition=condition, target=target)
        if mnemonic == "FBR":
            operands = self._operands("FBR", text, count=2)
            return Fbr(condition=parse_comparison_flag(operands[0]),
                       rd=parse_gpr(operands[1]))
        if mnemonic == "LDI":
            operands = self._operands("LDI", text, count=2)
            return Ldi(rd=parse_gpr(operands[0]), imm=parse_int(operands[1]))
        if mnemonic == "LDUI":
            operands = self._operands("LDUI", text, count=3)
            return Ldui(rd=parse_gpr(operands[0]),
                        imm=parse_int(operands[1]),
                        rs=parse_gpr(operands[2]))
        if mnemonic in ("LD", "ST"):
            operands = self._operands(mnemonic, text, count=2)
            match = _MEM_OPERAND_RE.match(operands[1])
            if not match:
                raise ValueError(
                    f"{mnemonic} memory operand must be Rt(Imm), "
                    f"got {operands[1]!r}")
            rt = int(match.group(1))
            imm = int(match.group(2), 0)
            if mnemonic == "LD":
                return Ld(rd=parse_gpr(operands[0]), rt=rt, imm=imm)
            return St(rs=parse_gpr(operands[0]), rt=rt, imm=imm)
        if mnemonic == "FMR":
            operands = self._operands("FMR", text, count=2)
            qubit_match = _QREG_RE.match(operands[1])
            if not qubit_match:
                raise ValueError(
                    f"FMR second operand must be Q<i>, got {operands[1]!r}")
            return Fmr(rd=parse_gpr(operands[0]),
                       qubit=int(qubit_match.group(1)))
        if mnemonic in ("AND", "OR", "XOR"):
            operands = self._operands(mnemonic, text, count=3)
            return LogicalOp(mnemonic_name=mnemonic,
                             rd=parse_gpr(operands[0]),
                             rs=parse_gpr(operands[1]),
                             rt=parse_gpr(operands[2]))
        if mnemonic == "NOT":
            operands = self._operands("NOT", text, count=2)
            return Not(rd=parse_gpr(operands[0]), rt=parse_gpr(operands[1]))
        if mnemonic in ("ADD", "SUB"):
            operands = self._operands(mnemonic, text, count=3)
            return ArithOp(mnemonic_name=mnemonic,
                           rd=parse_gpr(operands[0]),
                           rs=parse_gpr(operands[1]),
                           rt=parse_gpr(operands[2]))
        raise ValueError(f"unhandled classical mnemonic {mnemonic}")

    # ------------------------------------------------------------------
    # Target-specify instructions
    # ------------------------------------------------------------------
    def _parse_smis(self, text: str) -> SMIS:
        operands = self._operands("SMIS", text, count=2)
        sreg_match = _SREG_RE.match(operands[0])
        if not sreg_match:
            raise ValueError(
                f"SMIS first operand must be S<i>, got {operands[0]!r}")
        body = operands[1].strip()
        if not (body.startswith("{") and body.endswith("}")):
            raise ValueError(f"SMIS qubit list must be {{...}}, got {body!r}")
        inner = body[1:-1].strip()
        if not inner:
            raise ValueError("SMIS qubit list is empty")
        qubits = frozenset(parse_int(tok) for tok in inner.split(","))
        return SMIS(sd=int(sreg_match.group(1)), qubits=qubits)

    def _parse_smit(self, text: str) -> SMIT:
        operands = self._operands("SMIT", text, count=2)
        treg_match = _TREG_RE.match(operands[0])
        if not treg_match:
            raise ValueError(
                f"SMIT first operand must be T<i>, got {operands[0]!r}")
        body = operands[1].strip()
        if not (body.startswith("{") and body.endswith("}")):
            raise ValueError(f"SMIT pair list must be {{...}}, got {body!r}")
        inner = body[1:-1].strip()
        pair_tokens = re.findall(r"\(([^)]*)\)", inner)
        if not pair_tokens:
            raise ValueError("SMIT pair list is empty")
        pairs = set()
        for token in pair_tokens:
            elements = [piece.strip() for piece in token.split(",")]
            if len(elements) != 2:
                raise ValueError(f"pair ({token}) must have two qubits")
            pairs.add((parse_int(elements[0]), parse_int(elements[1])))
        return SMIT(td=int(treg_match.group(1)), pairs=frozenset(pairs))

    # ------------------------------------------------------------------
    # Quantum bundles
    # ------------------------------------------------------------------
    def _parse_bundle(self, text: str) -> Bundle:
        pi = 1
        explicit_pi = False
        body = text
        # Leading "<int>," is the pre-interval.
        first_comma = text.find(",")
        if first_comma > 0:
            head = text[:first_comma].strip()
            if _INT_RE.match(head):
                pi = parse_int(head)
                if pi < 0:
                    raise ValueError("PI cannot be negative")
                explicit_pi = True
                body = text[first_comma + 1:].strip()
        operations = []
        for piece in body.split("|"):
            piece = piece.strip()
            if not piece:
                raise ValueError("empty operation in bundle")
            match = _BUNDLE_OP_RE.match(piece)
            if not match:
                raise ValueError(f"cannot parse quantum operation {piece!r}")
            name = match.group(1).upper()
            register_token = match.group(2)
            if register_token is None:
                operations.append(BundleOperation(name=name, register=None))
            else:
                kind = register_token[0].upper()
                index = int(register_token[1:])
                operations.append(
                    BundleOperation(name=name, register=(kind, index)))
        return Bundle(operations=tuple(operations), pi=pi,
                      explicit_pi=explicit_pi)


def parse_program_text(text: str) -> list[ParsedLine]:
    """Convenience wrapper: parse a listing with a fresh parser."""
    return Parser().parse_text(text)
