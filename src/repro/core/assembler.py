"""The eQASM assembler: text -> validated, encoded binary.

Pipeline (Section 3.4.2 and 4.2):

1. parse the listing into a :class:`~repro.core.program.Program`;
2. semantic validation against the instantiation — operations are
   configured, registers in range, SMIS/SMIT masks legal on the chip
   topology (two selected edges sharing a qubit are rejected, per
   Section 4.3), PI values within the PI field;
3. split bundles wider than the VLIW width into consecutive bundle
   instructions with PI = 0, filling the last word with QNOPs;
4. hoist over-wide PIs into explicit QWAITs (a PI that does not fit the
   3-bit field becomes ``QWAIT pi`` + bundle with PI 0);
5. resolve BR labels to instruction offsets (after splitting, since
   splitting changes addresses);
6. encode each instruction to a 32-bit word.

The inverse direction — :class:`Disassembler` — reconstructs assembly
text from words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.encoding import InstructionDecoder, InstructionEncoder
from repro.core.errors import AssemblyError
from repro.core.instructions import (
    Br,
    Bundle,
    BundleOperation,
    Fbr,
    Fmr,
    Instruction,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    ArithOp,
    Cmp,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
)
from repro.core.isa import EQASMInstantiation
from repro.core.operations import OperationKind
from repro.core.program import Program


@dataclass
class AssembledProgram:
    """Assembler output: the final program and its binary image."""

    program: Program
    words: list[int]
    source: str = ""
    #: Bytes per instruction word (4 for the paper's 32-bit
    #: instantiation, 8 for the 64-bit surface-17 one).
    word_size: int = 4

    def __len__(self) -> int:
        return len(self.words)

    def word_bytes(self) -> bytes:
        """Little-endian byte image of the instruction memory."""
        return b"".join(word.to_bytes(self.word_size, "little")
                        for word in self.words)


class Assembler:
    """Assembles eQASM text or programs for one instantiation."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self._encoder = InstructionEncoder(isa)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def assemble_text(self, text: str) -> AssembledProgram:
        """Assemble a complete listing."""
        program = Program.from_text(text)
        assembled = self.assemble_program(program)
        assembled.source = text
        return assembled

    def assemble_program(self, program: Program) -> AssembledProgram:
        """Assemble an already-parsed program."""
        self.validate(program)
        split = self.split_bundles(program)
        resolved = split.resolve_labels()
        self._validate_branch_offsets(resolved)
        words = [self._encoder.encode(ins) for ins in resolved.instructions]
        return AssembledProgram(program=resolved, words=words,
                                word_size=self.isa.instruction_width // 8)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, program: Program) -> None:
        """Semantic validation of every instruction (pre-splitting)."""
        for index, instruction in enumerate(program.instructions):
            try:
                self._validate_instruction(instruction)
            except AssemblyError as error:
                raise AssemblyError(
                    f"instruction {index} "
                    f"({instruction.to_assembly()}): {error}")
        for label, target in program.labels.items():
            if not 0 <= target <= len(program.instructions):
                raise AssemblyError(f"label {label!r} out of range")

    def _validate_gpr(self, name: str, address: int) -> None:
        if not 0 <= address < self.isa.num_gprs:
            raise AssemblyError(f"{name} R{address} out of range")

    def _validate_instruction(self, ins: Instruction) -> None:
        isa = self.isa
        if isinstance(ins, (Cmp,)):
            self._validate_gpr("Rs", ins.rs)
            self._validate_gpr("Rt", ins.rt)
        elif isinstance(ins, Fbr):
            self._validate_gpr("Rd", ins.rd)
        elif isinstance(ins, Ldi):
            self._validate_gpr("Rd", ins.rd)
            if not -(1 << 19) <= ins.imm < (1 << 19):
                raise AssemblyError(f"LDI immediate {ins.imm} exceeds 20 bits")
        elif isinstance(ins, Ldui):
            self._validate_gpr("Rd", ins.rd)
            self._validate_gpr("Rs", ins.rs)
            if not 0 <= ins.imm < (1 << 15):
                raise AssemblyError(
                    f"LDUI immediate {ins.imm} exceeds 15 bits")
        elif isinstance(ins, Ld):
            self._validate_gpr("Rd", ins.rd)
            self._validate_gpr("Rt", ins.rt)
        elif isinstance(ins, St):
            self._validate_gpr("Rs", ins.rs)
            self._validate_gpr("Rt", ins.rt)
        elif isinstance(ins, Fmr):
            self._validate_gpr("Rd", ins.rd)
            if ins.qubit not in isa.topology.qubits:
                raise AssemblyError(
                    f"FMR references qubit {ins.qubit} not on chip")
        elif isinstance(ins, (LogicalOp, ArithOp)):
            self._validate_gpr("Rd", ins.rd)
            self._validate_gpr("Rs", ins.rs)
            self._validate_gpr("Rt", ins.rt)
        elif isinstance(ins, Not):
            self._validate_gpr("Rd", ins.rd)
            self._validate_gpr("Rt", ins.rt)
        elif isinstance(ins, QWait):
            if ins.cycles > isa.max_qwait:
                raise AssemblyError(
                    f"QWAIT {ins.cycles} exceeds the "
                    f"{isa.qwait_immediate_width}-bit immediate")
        elif isinstance(ins, QWaitR):
            self._validate_gpr("Rs", ins.rs)
        elif isinstance(ins, SMIS):
            if not 0 <= ins.sd < isa.num_single_qubit_target_registers:
                raise AssemblyError(f"S{ins.sd} out of range")
            isa.qubit_mask(ins.qubits)  # raises for off-chip qubits
        elif isinstance(ins, SMIT):
            if not 0 <= ins.td < isa.num_two_qubit_target_registers:
                raise AssemblyError(f"T{ins.td} out of range")
            mask = isa.pair_mask(ins.pairs)  # raises for illegal pairs
            isa.topology.validate_pair_mask(mask)
        elif isinstance(ins, Bundle):
            self._validate_bundle(ins)

    def _validate_bundle(self, bundle: Bundle) -> None:
        isa = self.isa
        for slot in bundle.operations:
            operation = isa.operations.get(slot.name)  # raises if unknown
            if operation.kind is OperationKind.NOP:
                if slot.register is not None:
                    raise AssemblyError("QNOP takes no operand")
                continue
            if slot.register is None:
                raise AssemblyError(
                    f"operation {slot.name} needs a target register")
            kind, index = slot.register
            expected = "T" if operation.uses_two_qubit_target else "S"
            if kind != expected:
                raise AssemblyError(
                    f"operation {slot.name} targets {expected} registers, "
                    f"got {kind}{index}")
            limit = (isa.num_two_qubit_target_registers if expected == "T"
                     else isa.num_single_qubit_target_registers)
            if not 0 <= index < limit:
                raise AssemblyError(f"{kind}{index} out of range")

    def _validate_branch_offsets(self, program: Program) -> None:
        for index, ins in enumerate(program.instructions):
            if isinstance(ins, Br):
                if isinstance(ins.target, str):
                    raise AssemblyError(f"unresolved label {ins.target!r}")
                destination = index + ins.target
                if not 0 <= destination <= len(program.instructions):
                    raise AssemblyError(
                        f"BR at {index} jumps to {destination}, outside "
                        f"the program")

    # ------------------------------------------------------------------
    # Bundle splitting (Section 3.4.2)
    # ------------------------------------------------------------------
    def split_bundles(self, program: Program) -> Program:
        """Break wide bundles into VLIW-width instruction words.

        A bundle of n > w operations becomes ceil(n / w) consecutive
        bundle instructions; the first keeps the PI, continuations use
        PI = 0 so all operations share one timing point.  PIs too large
        for the PI field are hoisted into an explicit QWAIT.
        """
        isa = self.isa
        new_instructions: list[Instruction] = []
        index_map: dict[int, int] = {}
        for old_index, ins in enumerate(program.instructions):
            index_map[old_index] = len(new_instructions)
            if not isinstance(ins, Bundle):
                new_instructions.append(ins)
                continue
            pi = ins.pi
            if pi > isa.max_pi:
                new_instructions.append(QWait(cycles=pi))
                pi = 0
            chunks = [ins.operations[i:i + isa.vliw_width]
                      for i in range(0, len(ins.operations), isa.vliw_width)]
            for chunk_index, chunk in enumerate(chunks):
                chunk_ops = list(chunk)
                while len(chunk_ops) < isa.vliw_width:
                    chunk_ops.append(BundleOperation(
                        name=isa.operations.QNOP_NAME, register=None))
                new_instructions.append(
                    Bundle(operations=tuple(chunk_ops),
                           pi=pi if chunk_index == 0 else 0,
                           explicit_pi=True))
        index_map[len(program.instructions)] = len(new_instructions)
        new_labels = {label: index_map[target]
                      for label, target in program.labels.items()}
        return Program(instructions=new_instructions, labels=new_labels)


class Disassembler:
    """Turns 32-bit words back into a program and assembly text."""

    def __init__(self, isa: EQASMInstantiation):
        self.isa = isa
        self._decoder = InstructionDecoder(isa)

    def disassemble(self, words: list[int]) -> Program:
        """Decode a word list into a program (no label recovery)."""
        instructions = [self._decoder.decode(word) for word in words]
        return Program(instructions=instructions)

    def disassemble_text(self, words: list[int]) -> str:
        """Decode a word list into assembly text."""
        return self.disassemble(words).to_assembly()
