"""Exception hierarchy for the eQASM reproduction.

Every error raised by the library derives from :class:`EQASMError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish assembly-time, encoding-time, and run-time
faults.
"""

from __future__ import annotations


class EQASMError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(EQASMError):
    """Raised when assembly text cannot be parsed.

    Carries the offending line number (1-based) and the raw line so error
    messages can point at the source.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None):
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


class AssemblyError(EQASMError):
    """Raised when a parsed program fails semantic validation.

    Examples: an undefined label, a target register address out of range,
    or a two-qubit target register selecting two edges that share a qubit
    (invalid per Section 4.3 of the paper).
    """


class EncodingError(EQASMError):
    """Raised when an instruction cannot be encoded into the binary format
    of the current instantiation (e.g. an immediate exceeding its field)."""


class DecodingError(EQASMError):
    """Raised when a 32-bit word does not decode to a valid instruction."""


class ConfigurationError(EQASMError):
    """Raised for inconsistent compile-time configuration, e.g. a quantum
    operation name bound to two different opcodes, or a microcode entry
    referencing an unknown micro-operation."""


class SpecError(ConfigurationError):
    """Raised when a declarative encoding spec is malformed or fails
    validation (overlapping fields, opcode collisions, a format whose
    fields do not cover its instruction class — see
    :func:`repro.core.isaspec.validate_spec`)."""


class RuntimeFault(EQASMError):
    """Base class for faults detected while the microarchitecture runs."""


class OperationConflictError(RuntimeFault):
    """Two VLIW lanes (or two bundle instructions at the same timing point)
    emitted a micro-operation for the same qubit — the quantum processor
    stops (Section 4.3)."""


class TimingViolationError(RuntimeFault):
    """The timing controller reached a timing point before the reserve
    phase produced it: the quantum-operation issue rate Rreq exceeded
    Rallowed (Section 1.2)."""


class InvalidAddressError(RuntimeFault):
    """A register / qubit / memory address outside the architectural
    range was accessed at run time."""


class GuardFault(RuntimeFault):
    """Base for runtime guards: faults detected (rather than suffered)
    by the hardening layer.

    Every guard fault carries a machine-readable ``context`` mapping so
    a serving layer can log, aggregate, and act on failures without
    parsing message strings.
    """

    def __init__(self, message: str, **context):
        super().__init__(message)
        self.context = context

    def __getattr__(self, name: str):
        # Convenience: expose context keys as attributes
        # (``error.requested_bytes`` instead of
        # ``error.context["requested_bytes"]``).
        try:
            return self.__dict__["context"][name]
        except KeyError:
            raise AttributeError(name) from None


class ResourceError(GuardFault):
    """Admission control refused a request that would exhaust a machine
    resource (e.g. a dense density matrix past the memory budget).

    Context: ``requested_bytes``, ``limit_bytes``, ``num_qubits``,
    ``suggestion``.
    """


class ShotTimeoutError(GuardFault):
    """The per-shot watchdog stopped a runaway shot (instruction-count
    limit, classical-time budget, or a measurement result that never
    arrives).

    Context: ``reason`` plus reason-specific fields such as
    ``instructions_executed``, ``limit``, ``classical_time_ns``,
    ``budget_ns``, or ``qubit``.
    """


class ReplayDivergenceError(GuardFault):
    """A replay-audit shadow run disagreed with the cached timeline
    tree — the cache was invalidated and the run degraded, and callers
    that asked for strict auditing see this fault.

    Context: ``shot_index``, ``mismatched_fields``, ``tree_evicted``.
    """


class BackendFaultError(GuardFault):
    """A plant backend failed mid-operation (gate application error,
    snapshot integrity violation, injected chaos fault).

    Context: ``backend``, ``operation``, ``qubits``, ``site``.
    """


class QueueOverflowError(GuardFault):
    """A hardware queue exceeded the instantiation's depth — the
    CC-Light per-instantiation limit the runtime must report rather
    than break on.

    Context: ``queue``, ``depth``, ``occupancy``.
    """


class JobDeadlineError(GuardFault):
    """A serving-layer job (a sweep, or one of its shards) exceeded its
    deadline — the work was stopped and accounted for rather than left
    running unbounded.

    Context: ``deadline_s``, ``elapsed_s``, ``completed_points``,
    ``total_points``.
    """


class AdmissionRejectedError(GuardFault):
    """A bounded serving queue refused new work at submission time —
    backpressure instead of unbounded memory growth.

    Context: ``queue``, ``depth``, ``occupancy``.
    """


class WorkerPoolError(GuardFault):
    """The worker-pool supervisor gave up on a sweep: the restart
    budget was exhausted by repeated crashes or hangs, so continuing
    would retry a systematically failing shard forever.

    Context: ``restarts``, ``budget``, ``last_event``.
    """


class InvalidRequestError(EQASMError, ValueError):
    """A caller-supplied argument is outside the valid domain.

    Dual-inherits :class:`ValueError` so existing callers catching the
    bare built-in keep working while new callers can catch the library
    root.
    """


class ExperimentIntegrityError(GuardFault, RuntimeError):
    """Experiment post-conditions were violated (e.g. a shot produced
    fewer measurement records than the circuit requires).

    Dual-inherits :class:`RuntimeError` for backward compatibility with
    callers catching the bare built-in; carries the guard-fault
    ``context`` mapping like every hardening-layer error.
    """


class PlantError(EQASMError):
    """Raised by the quantum plant for physically impossible requests,
    e.g. a two-qubit unitary applied to a single qubit."""


class TopologyError(EQASMError):
    """Raised for inconsistent quantum-chip topology definitions."""
