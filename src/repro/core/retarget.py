"""Retargeting: strip timing from eQASM and port to another platform.

The paper's conclusion: "by removing the timing information in the
eQASM description, the quantum semantics of the program can be kept and
further converted into another executable format targeting another
hardware platform."

This module implements that round trip:

1. :func:`extract_semantics` interprets an eQASM program's quantum
   part through the architectural timeline model and returns a
   hardware-independent :class:`~repro.compiler.ir.Circuit` — timing
   points become bare program order, masks become explicit qubit
   operands;
2. :func:`retarget_program` recompiles that circuit for a different
   instantiation (rescheduling with the new platform's durations and
   re-encoding with its binary formats), optionally relabelling qubits
   for the new chip.

Programs using classical control flow (BR/FMR) are rejected: feedback
is inherently run-time and cannot be flattened to a circuit, which is
exactly the boundary the paper draws between the two feedback
mechanisms and the static circuit model.
"""

from __future__ import annotations

from repro.compiler.codegen import EQASMCodeGenerator
from repro.compiler.ir import Circuit
from repro.compiler.scheduler import schedule_asap
from repro.core.errors import AssemblyError
from repro.core.instructions import Br, Fmr, QWaitR
from repro.core.isa import EQASMInstantiation
from repro.core.program import Program
from repro.core.timeline import build_timeline


def extract_semantics(program: Program, isa: EQASMInstantiation,
                      qubit_map: dict[int, int] | None = None) -> Circuit:
    """Strip timing: eQASM program -> hardware-independent circuit.

    ``qubit_map`` optionally renames physical addresses to logical
    indices (e.g. the two-qubit chip's {0, 2} onto {0, 1}).
    """
    for instruction in program.instructions:
        if isinstance(instruction, (Br, Fmr)):
            raise AssemblyError(
                f"{instruction.to_assembly()}: programs with run-time "
                f"feedback cannot be flattened to a circuit")
        if isinstance(instruction, QWaitR):
            raise AssemblyError(
                "QWAITR depends on run-time register state; only "
                "immediate timing can be stripped")
    timeline = build_timeline(isa, program.instructions)
    if qubit_map is None:
        qubit_map = {address: address for address in isa.topology.qubits}
    num_qubits = max(qubit_map.values()) + 1 if qubit_map else 1
    circuit = Circuit(name="retargeted", num_qubits=num_qubits)
    for _, timed in timeline.all_operations():
        if timed.pairs:
            for source, target in timed.pairs:
                circuit.add(timed.name, qubit_map[source],
                            qubit_map[target])
        else:
            for qubit in timed.qubits:
                circuit.add(timed.name, qubit_map[qubit])
    return circuit


def retarget_program(program: Program, source_isa: EQASMInstantiation,
                     target_isa: EQASMInstantiation,
                     qubit_map: dict[int, int] | None = None,
                     initialize_cycles: int = 10000) -> Program:
    """Port a timing-stripped program to another instantiation.

    The circuit is rescheduled ASAP with the *target's* operation
    durations and re-emitted with the target's codegen (its PI width,
    VLIW width, and mask encodings), so the output is executable on the
    new platform while preserving the quantum semantics.
    """
    circuit = extract_semantics(program, source_isa, qubit_map=qubit_map)
    for op in circuit.operations:
        if op.name not in target_isa.operations:
            raise AssemblyError(
                f"operation {op.name} is not configured on "
                f"{target_isa.name}; extend its operation set first")
        for qubit in op.qubits:
            if qubit not in target_isa.topology.qubits:
                raise AssemblyError(
                    f"qubit {qubit} does not exist on "
                    f"{target_isa.topology.name}; provide a qubit_map")
        if op.is_two_qubit:
            source, target = op.qubits
            if not target_isa.topology.is_allowed_pair(source, target):
                raise AssemblyError(
                    f"({source}, {target}) is not an allowed pair on "
                    f"{target_isa.topology.name}")
    schedule = schedule_asap(circuit, target_isa.operations)
    generator = EQASMCodeGenerator(target_isa)
    return generator.generate(schedule,
                              initialize_cycles=initialize_cycles,
                              final_wait_cycles=50)
