"""Bindings from spec data to the instruction taxonomy.

The spec model (:mod:`.model`) is pure data; this module supplies the
two code-side tables the generic encoder/decoder interprets it with:

* :data:`FORMAT_BINDINGS` — format name -> (instruction class, fixed
  constructor kwargs).  Formats sharing a class (AND/OR/XOR on
  ``LogicalOp``, ADD/SUB on ``ArithOp``) differ only in the fixed
  ``mnemonic_name`` kwarg, which is also how the encoder picks the
  format for an instruction object (:func:`format_name_for`).
* :data:`CODECS` — codec name -> (encode, decode) pair translating an
  instruction attribute value to/from the raw unsigned field value.
  Codecs receive the instantiation so mask codecs can consult the
  topology and register codecs the register-file sizes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.core.errors import DecodingError, EncodingError
from repro.core.instructions import (
    ArithOp,
    Br,
    Cmp,
    Fbr,
    Fmr,
    Ld,
    Ldi,
    Ldui,
    LogicalOp,
    Nop,
    Not,
    QWait,
    QWaitR,
    SMIS,
    SMIT,
    St,
    Stop,
)
from repro.core.isaspec.model import FieldSpec
from repro.core.registers import ComparisonFlag

#: Format name -> (instruction class, fixed constructor kwargs).  One
#: entry per single-word format of the eQASM taxonomy; a spec is
#: *exhaustive* when its format names equal this table's keys (checked
#: by :func:`repro.core.isaspec.validate_spec`).
FORMAT_BINDINGS: dict[str, tuple[type, dict[str, object]]] = {
    "NOP": (Nop, {}),
    "STOP": (Stop, {}),
    "CMP": (Cmp, {}),
    "BR": (Br, {}),
    "FBR": (Fbr, {}),
    "LDI": (Ldi, {}),
    "LDUI": (Ldui, {}),
    "LD": (Ld, {}),
    "ST": (St, {}),
    "FMR": (Fmr, {}),
    "AND": (LogicalOp, {"mnemonic_name": "AND"}),
    "OR": (LogicalOp, {"mnemonic_name": "OR"}),
    "XOR": (LogicalOp, {"mnemonic_name": "XOR"}),
    "NOT": (Not, {}),
    "ADD": (ArithOp, {"mnemonic_name": "ADD"}),
    "SUB": (ArithOp, {"mnemonic_name": "SUB"}),
    "SMIS": (SMIS, {}),
    "SMIT": (SMIT, {}),
    "QWAIT": (QWait, {}),
    "QWAITR": (QWaitR, {}),
}

_ENCODE_KEY_TO_FORMAT: dict[tuple[type, str | None], str] = {
    (cls, fixed.get("mnemonic_name")): name
    for name, (cls, fixed) in FORMAT_BINDINGS.items()
}


def format_name_for(instruction) -> str | None:
    """Resolve the format name an instruction object encodes under."""
    key = (type(instruction), getattr(instruction, "mnemonic_name", None))
    return _ENCODE_KEY_TO_FORMAT.get(key)


def required_attrs(format_name: str) -> frozenset[str]:
    """Constructor attributes the format's fields must supply: the
    bound class's no-default dataclass fields minus the fixed kwargs."""
    cls, fixed = FORMAT_BINDINGS[format_name]
    required = set()
    for f in dataclasses.fields(cls):
        if f.default is dataclasses.MISSING and \
                f.default_factory is dataclasses.MISSING:
            required.add(f.name)
    return frozenset(required - set(fixed))


# ----------------------------------------------------------------------
# Field codecs
# ----------------------------------------------------------------------
def check_field(name: str, value: int, width: int) -> int:
    """Validate an unsigned field value against its width."""
    if not isinstance(value, int) or not 0 <= value < (1 << width):
        raise EncodingError(
            f"{name} value {value} does not fit in {width} bits")
    return value


def check_signed_field(name: str, value: int, width: int) -> int:
    """Validate and two's-complement encode a signed field value."""
    low = -(1 << (width - 1))
    high = (1 << (width - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{name} value {value} outside signed {width}-bit range "
            f"[{low}, {high}]")
    return value & ((1 << width) - 1)


def sign_extend(value: int, width: int) -> int:
    """Decode a two's-complement field of the given width."""
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def _encode_uint(isa, field: FieldSpec, value):
    return check_field(field.name, value, field.width)


def _decode_uint(isa, field: FieldSpec, raw: int):
    return raw


def _encode_int(isa, field: FieldSpec, value):
    return check_signed_field(field.name, value, field.width)


def _decode_int(isa, field: FieldSpec, raw: int):
    return sign_extend(raw, field.width)


def _encode_branch_offset(isa, field: FieldSpec, value):
    if isinstance(value, str):
        raise EncodingError(f"BR target label {value!r} not resolved")
    return check_signed_field(field.name, value, field.width)


def _encode_condition(isa, field: FieldSpec, value):
    return check_field(field.name, int(value), field.width)


def _decode_condition(isa, field: FieldSpec, raw: int):
    try:
        return ComparisonFlag(raw)
    except ValueError:
        raise DecodingError(f"invalid comparison-flag encoding {raw}")


def _encode_qubit_mask(isa, field: FieldSpec, value):
    return check_field(field.name, isa.qubit_mask(value), field.width)


def _decode_qubit_mask(isa, field: FieldSpec, raw: int):
    qubits = isa.qubits_from_mask(raw)
    if not qubits:
        raise DecodingError("SMIS with empty mask")
    return frozenset(qubits)


def _encode_pair_mask(isa, field: FieldSpec, value):
    return check_field(field.name, isa.pair_mask(value), field.width)


def _decode_pair_mask(isa, field: FieldSpec, raw: int):
    pairs = isa.pairs_from_mask(raw)
    if not pairs:
        raise DecodingError("SMIT with empty mask")
    return frozenset(pairs)


def _encode_sreg(isa, field: FieldSpec, value):
    if not isinstance(value, int) or not 0 <= value < \
            isa.num_single_qubit_target_registers:
        raise EncodingError(f"S{value} out of range")
    return check_field(field.name, value, field.width)


def _encode_treg(isa, field: FieldSpec, value):
    if not isinstance(value, int) or not 0 <= value < \
            isa.num_two_qubit_target_registers:
        raise EncodingError(f"T{value} out of range")
    return check_field(field.name, value, field.width)


#: Codec name -> (encode, decode).  encode(isa, field, attribute_value)
#: returns the raw unsigned field value (raising
#: :class:`~repro.core.errors.EncodingError` on domain violations);
#: decode(isa, field, raw) is its inverse (raising
#: :class:`~repro.core.errors.DecodingError` on unrepresentable words).
CODECS: dict[str, tuple[Callable, Callable]] = {
    "uint": (_encode_uint, _decode_uint),
    "int": (_encode_int, _decode_int),
    "branch_offset": (_encode_branch_offset, _decode_int),
    "condition": (_encode_condition, _decode_condition),
    "qubit_mask": (_encode_qubit_mask, _decode_qubit_mask),
    "pair_mask": (_encode_pair_mask, _decode_pair_mask),
    "sreg": (_encode_sreg, _decode_uint),
    "treg": (_encode_treg, _decode_uint),
}
