"""Render an encoding spec as a human-reviewable markdown report.

The report is the document-shaped view of the spec — one field table
per format plus the bundle-word layout — mirroring how the CC-Light
eQASM Architecture Specification presents its encoding.  The CI step
(`python -m repro.core.isaspec validate --all --report-dir ...`)
publishes one report per registered instantiation as a build artifact.
"""

from __future__ import annotations

from repro.core.isaspec.model import EncodingSpec, FormatSpec


def _format_table(spec: EncodingSpec, fmt: FormatSpec) -> list[str]:
    lines = [
        f"### `{fmt.name}` (opcode {fmt.opcode})",
        "",
        "| field | bits | width | codec | binds |",
        "|---|---|---|---|---|",
        f"| opcode | {spec.opcode_offset + spec.opcode_width - 1}.."
        f"{spec.opcode_offset} | {spec.opcode_width} | uint |"
        f" = {fmt.opcode} |",
    ]
    for field in sorted(fmt.fields, key=lambda f: -f.offset):
        lines.append(
            f"| {field.name} | {field.bit_range()} | {field.width} "
            f"| {field.codec} | `{field.attr}` |")
    lines.append("")
    return lines


def render_report(spec: EncodingSpec) -> str:
    """Render the full markdown encoding report for one spec."""
    width = spec.instruction_width
    lines = [
        f"# Encoding report: `{spec.name}`",
        "",
        f"- instruction width: **{width} bits**",
        f"- opcode field: bits {spec.opcode_offset + spec.opcode_width - 1}"
        f"..{spec.opcode_offset} ({spec.opcode_width} bits)",
        f"- single-word formats: {len(spec.formats)}",
    ]
    if spec.bundle is not None:
        lines.append(
            f"- bundle word: flag bit {spec.bundle.flag_bit}, "
            f"{len(spec.bundle.slots)} VLIW slots, "
            f"PI bits {spec.bundle.pi_offset + spec.bundle.pi_width - 1}"
            f"..{spec.bundle.pi_offset}")
    lines.append("")
    lines.append("## Single-word formats")
    lines.append("")
    for fmt in sorted(spec.formats, key=lambda f: f.opcode):
        lines.extend(_format_table(spec, fmt))
    if spec.bundle is not None:
        bundle = spec.bundle
        lines.extend([
            "## Bundle word",
            "",
            "| field | bits | width |",
            "|---|---|---|",
            f"| flag (=1) | {bundle.flag_bit} | 1 |",
        ])
        for index, slot in enumerate(bundle.slots):
            op_msb = slot.op_offset + slot.op_width - 1
            reg_msb = slot.reg_offset + slot.reg_width - 1
            lines.append(
                f"| slot {index} q opcode | {op_msb}..{slot.op_offset} "
                f"| {slot.op_width} |")
            lines.append(
                f"| slot {index} target reg | {reg_msb}.."
                f"{slot.reg_offset} | {slot.reg_width} |")
        pi_msb = bundle.pi_offset + bundle.pi_width - 1
        lines.append(
            f"| PI | {pi_msb}..{bundle.pi_offset} | {bundle.pi_width} |")
        lines.append("")
    return "\n".join(lines)
