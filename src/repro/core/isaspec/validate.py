"""Spec validation: the invariants every registered spec must satisfy.

:func:`validate_spec` checks a pure-data :class:`~.model.EncodingSpec`
against the structural invariants listed in the package docstring —
field overlap (including the opcode field and bundle flag bit), width
coverage, opcode collisions and range, signed-field sanity, codec-name
validity, and per-format exhaustiveness against the instruction
taxonomy (:data:`~.bindings.FORMAT_BINDINGS`).  It returns a list of
problem strings (empty = valid) so the CLI can print them all;
:func:`ensure_valid` wraps it into a raising form for programmatic use.
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import SpecError
from repro.core.isaspec.bindings import (
    CODECS,
    FORMAT_BINDINGS,
    required_attrs,
)
from repro.core.isaspec.model import EncodingSpec, FormatSpec

_SIGNED_CODECS = {"int", "branch_offset"}


def _field_regions(spec: EncodingSpec, fmt: FormatSpec):
    """(label, offset, width) occupancy of one single-word format,
    including the regions every format shares."""
    regions = [("opcode", spec.opcode_offset, spec.opcode_width)]
    if spec.bundle is not None:
        regions.append(("bundle flag bit", spec.bundle.flag_bit, 1))
    for field in fmt.fields:
        regions.append((f"field {field.name}", field.offset, field.width))
    return regions


def _overlaps(regions, width: int, context: str, problems: list[str]):
    """Report out-of-word regions and pairwise overlaps."""
    claimed: dict[int, str] = {}
    for label, offset, region_width in regions:
        if offset < 0 or region_width < 1:
            problems.append(
                f"{context}: {label} has invalid extent "
                f"(offset {offset}, width {region_width})")
            continue
        if offset + region_width > width:
            problems.append(
                f"{context}: {label} (bits {offset}..."
                f"{offset + region_width - 1}) exceeds the "
                f"{width}-bit word")
            continue
        for bit in range(offset, offset + region_width):
            if bit in claimed:
                problems.append(
                    f"{context}: {label} overlaps {claimed[bit]} "
                    f"at bit {bit}")
                break
            claimed[bit] = label


def validate_spec(spec: EncodingSpec) -> list[str]:
    """Validate one spec; returns problem descriptions (empty = valid)."""
    problems: list[str] = []
    width = spec.instruction_width

    if width % 8 or width < 32:
        problems.append(
            f"instruction width {width} must be a multiple of 8 bits, "
            f"at least 32")

    # Opcode numbering: in range, collision-free.
    seen_opcodes: dict[int, str] = {}
    seen_names: set[str] = set()
    for fmt in spec.formats:
        if fmt.name in seen_names:
            problems.append(f"format {fmt.name} defined twice")
        seen_names.add(fmt.name)
        if not 0 <= fmt.opcode < (1 << spec.opcode_width):
            problems.append(
                f"format {fmt.name}: opcode {fmt.opcode} does not fit "
                f"the {spec.opcode_width}-bit opcode field")
        elif fmt.opcode in seen_opcodes:
            problems.append(
                f"opcode collision: {fmt.name} and "
                f"{seen_opcodes[fmt.opcode]} both use {fmt.opcode}")
        else:
            seen_opcodes[fmt.opcode] = fmt.name

    # Exhaustiveness against the instruction taxonomy, both directions.
    for missing in sorted(FORMAT_BINDINGS.keys() - seen_names):
        problems.append(
            f"spec does not cover instruction format {missing}")
    for unknown in sorted(seen_names - FORMAT_BINDINGS.keys()):
        problems.append(
            f"format {unknown} has no instruction-class binding")

    # Per-format field checks.
    for fmt in spec.formats:
        _overlaps(_field_regions(spec, fmt), width,
                  f"format {fmt.name}", problems)
        attrs: set[str] = set()
        for field in fmt.fields:
            if field.codec not in CODECS:
                problems.append(
                    f"format {fmt.name}: field {field.name} uses "
                    f"unknown codec {field.codec!r}")
            if field.codec in _SIGNED_CODECS and field.width < 2:
                problems.append(
                    f"format {fmt.name}: signed field {field.name} "
                    f"needs at least 2 bits, has {field.width}")
            if field.attr in attrs:
                problems.append(
                    f"format {fmt.name}: attribute {field.attr} bound "
                    f"by two fields")
            attrs.add(field.attr)
        if fmt.name in FORMAT_BINDINGS:
            needed = required_attrs(fmt.name)
            for attr in sorted(needed - attrs):
                problems.append(
                    f"format {fmt.name}: no field binds required "
                    f"attribute {attr}")
            for attr in sorted(attrs - needed):
                cls, fixed = FORMAT_BINDINGS[fmt.name]
                if attr not in {f.name for f in dataclasses.fields(cls)}:
                    problems.append(
                        f"format {fmt.name}: field binds unknown "
                        f"attribute {attr} of {cls.__name__}")

    # Bundle layout.
    if spec.bundle is not None:
        bundle = spec.bundle
        if bundle.flag_bit != width - 1:
            problems.append(
                f"bundle flag bit {bundle.flag_bit} must be the word's "
                f"top bit ({width - 1}) to discriminate formats")
        if not bundle.slots:
            problems.append("bundle has no VLIW slots")
        regions = [("PI", bundle.pi_offset, bundle.pi_width)]
        for index, slot in enumerate(bundle.slots):
            regions.append(
                (f"slot {index} opcode", slot.op_offset, slot.op_width))
            regions.append(
                (f"slot {index} register", slot.reg_offset,
                 slot.reg_width))
        # The flag bit itself is part of the bundle word.
        _overlaps(regions + [("flag bit", bundle.flag_bit, 1)], width,
                  "bundle", problems)

    return problems


def ensure_valid(spec: EncodingSpec) -> EncodingSpec:
    """Raise :class:`~repro.core.errors.SpecError` on an invalid spec."""
    problems = validate_spec(spec)
    if problems:
        raise SpecError(
            f"encoding spec {spec.name!r} failed validation:\n  " +
            "\n  ".join(problems))
    return spec
