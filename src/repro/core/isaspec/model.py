"""Pure-data model of an eQASM binary-encoding specification.

Everything in this module is deliberately *inert*: frozen dataclasses
holding names, bit offsets, widths, opcode numbers, and codec names as
strings.  Nothing here imports the instruction taxonomy, a topology, or
an operation set — that binding happens in :mod:`.bindings`, and the
behavioural interpretation (packing bits into words) happens in
:mod:`repro.core.encoding`.  The payoff is that a spec round-trips
losslessly through JSON (:meth:`EncodingSpec.to_json` /
:meth:`EncodingSpec.from_json`), so an instantiation's binary format is
a reviewable artifact instead of a branch ladder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.errors import SpecError

#: Codec names a :class:`FieldSpec` may carry.  The codec decides how an
#: instruction attribute maps to the raw unsigned field value (and
#: back); the implementations live in :mod:`repro.core.isaspec.bindings`.
FIELD_CODECS = (
    "uint",           # plain unsigned integer
    "int",            # two's-complement signed integer
    "branch_offset",  # signed instruction offset; rejects unresolved labels
    "condition",      # repro.core.registers.ComparisonFlag
    "qubit_mask",     # frozenset of qubit addresses <-> SOMQ mask bits
    "pair_mask",      # frozenset of directed pairs <-> pair-address mask
    "sreg",           # S-register index, checked against the register file
    "treg",           # T-register index, checked against the register file
)


@dataclass(frozen=True)
class FieldSpec:
    """One named bit-field of a single-word instruction format.

    ``name`` is the architectural field name used in encoding reports
    and error messages (``Rd``, ``imm``, ``mask`` ...); ``attr`` is the
    instruction-object attribute the field binds (``rd``, ``imm``,
    ``qubits`` ...).  ``offset`` is the LSB position within the word.
    """

    name: str
    attr: str
    offset: int
    width: int
    codec: str = "uint"

    @property
    def msb(self) -> int:
        return self.offset + self.width - 1

    def bit_range(self) -> str:
        """Render as ``msb..lsb`` (or a single bit number)."""
        if self.width == 1:
            return str(self.offset)
        return f"{self.msb}..{self.offset}"

    def to_dict(self) -> dict:
        return {"name": self.name, "attr": self.attr,
                "offset": self.offset, "width": self.width,
                "codec": self.codec}

    @classmethod
    def from_dict(cls, data: dict) -> FieldSpec:
        return cls(name=data["name"], attr=data["attr"],
                   offset=data["offset"], width=data["width"],
                   codec=data.get("codec", "uint"))


@dataclass(frozen=True)
class FormatSpec:
    """One single-word instruction format: an opcode plus its fields.

    The format ``name`` doubles as the binding key into
    :data:`repro.core.isaspec.bindings.FORMAT_BINDINGS`, which maps it
    to the instruction class (and fixed constructor arguments, for
    classes like ``LogicalOp`` that serve several formats).
    """

    name: str
    opcode: int
    fields: tuple[FieldSpec, ...] = ()

    def to_dict(self) -> dict:
        return {"name": self.name, "opcode": self.opcode,
                "fields": [f.to_dict() for f in self.fields]}

    @classmethod
    def from_dict(cls, data: dict) -> FormatSpec:
        return cls(name=data["name"], opcode=data["opcode"],
                   fields=tuple(FieldSpec.from_dict(f)
                                for f in data.get("fields", ())))


@dataclass(frozen=True)
class BundleSlotSpec:
    """Bit positions of one VLIW lane inside a bundle word."""

    op_offset: int
    op_width: int
    reg_offset: int
    reg_width: int

    def to_dict(self) -> dict:
        return {"op_offset": self.op_offset, "op_width": self.op_width,
                "reg_offset": self.reg_offset, "reg_width": self.reg_width}

    @classmethod
    def from_dict(cls, data: dict) -> BundleSlotSpec:
        return cls(op_offset=data["op_offset"], op_width=data["op_width"],
                   reg_offset=data["reg_offset"], reg_width=data["reg_width"])


@dataclass(frozen=True)
class BundleSpec:
    """Layout of the quantum-bundle word: the format-discriminator flag
    bit, the pre-interval field, and one slot layout per VLIW lane."""

    flag_bit: int
    pi_offset: int
    pi_width: int
    slots: tuple[BundleSlotSpec, ...]

    def to_dict(self) -> dict:
        return {"flag_bit": self.flag_bit, "pi_offset": self.pi_offset,
                "pi_width": self.pi_width,
                "slots": [s.to_dict() for s in self.slots]}

    @classmethod
    def from_dict(cls, data: dict) -> BundleSpec:
        return cls(flag_bit=data["flag_bit"], pi_offset=data["pi_offset"],
                   pi_width=data["pi_width"],
                   slots=tuple(BundleSlotSpec.from_dict(s)
                               for s in data["slots"]))


@dataclass(frozen=True)
class EncodingSpec:
    """A complete binary-format specification for one instantiation.

    ``opcode_offset``/``opcode_width`` locate the classical opcode field
    shared by every single-word format; ``formats`` enumerates those
    formats; ``bundle`` describes the quantum-bundle word (selected by
    ``bundle.flag_bit``; single-word formats keep that bit clear).
    """

    name: str
    instruction_width: int
    opcode_offset: int
    opcode_width: int
    formats: tuple[FormatSpec, ...]
    bundle: BundleSpec | None = None

    def format_named(self, name: str) -> FormatSpec | None:
        for fmt in self.formats:
            if fmt.name == name:
                return fmt
        return None

    def opcode_table(self) -> dict[int, FormatSpec]:
        return {fmt.opcode: fmt for fmt in self.formats}

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "instruction_width": self.instruction_width,
            "opcode_offset": self.opcode_offset,
            "opcode_width": self.opcode_width,
            "formats": [fmt.to_dict() for fmt in self.formats],
        }
        if self.bundle is not None:
            data["bundle"] = self.bundle.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> EncodingSpec:
        try:
            bundle = data.get("bundle")
            return cls(
                name=data["name"],
                instruction_width=data["instruction_width"],
                opcode_offset=data["opcode_offset"],
                opcode_width=data["opcode_width"],
                formats=tuple(FormatSpec.from_dict(fmt)
                              for fmt in data["formats"]),
                bundle=BundleSpec.from_dict(bundle) if bundle else None,
            )
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed encoding spec: {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> EncodingSpec:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"encoding spec is not valid JSON: {exc}") \
                from exc
        if not isinstance(data, dict):
            raise SpecError("encoding spec JSON must be an object")
        return cls.from_dict(data)
