"""Generate the paper's field-layout family at any word width.

:func:`build_encoding_spec` emits the layout rule set that Fig. 8 of
the paper is the 32-bit member of: classical formats keep fixed low-bit
positions, the 6-bit opcode sits just below the bundle flag bit, the
SMIS/SMIT target-register fields sit 12 bits below the word top with
their masks in the bits underneath, and bundle slots pack downward from
the flag bit.  Registered instantiations ship as checked-in JSON dumps
of this builder's output (see :mod:`.registry`); the builder itself is
what parameter-only :class:`~repro.core.isa.EQASMInstantiation` values
use, keeping ad-hoc widths (tests, experiments) spec-driven too.
"""

from __future__ import annotations

from repro.core.errors import SpecError
from repro.core.isaspec.model import (
    BundleSlotSpec,
    BundleSpec,
    EncodingSpec,
    FieldSpec,
    FormatSpec,
)

#: Single-format opcode assignments shared by the whole family (the
#: paper's Fig. 8 plus our MIPS-like classical layout).
FAMILY_OPCODES = {
    "NOP": 0,
    "STOP": 1,
    "CMP": 2,
    "BR": 3,
    "FBR": 4,
    "LDI": 5,
    "LDUI": 6,
    "LD": 7,
    "ST": 8,
    "FMR": 9,
    "AND": 10,
    "OR": 11,
    "XOR": 12,
    "NOT": 13,
    "ADD": 14,
    "SUB": 15,
    "SMIS": 16,
    "SMIT": 17,
    "QWAIT": 18,
    "QWAITR": 19,
}


def build_encoding_spec(
        name: str,
        instruction_width: int,
        *,
        qubit_mask_field_width: int = 7,
        pair_mask_field_width: int = 16,
        qwait_immediate_width: int = 20,
        q_opcode_width: int = 9,
        target_register_address_width: int = 5,
        vliw_width: int = 2,
        pi_width: int = 3,
        fmr_qubit_offset: int = 15,
        fmr_qubit_width: int = 5,
) -> EncodingSpec:
    """Build the family layout for one instantiation's parameters.

    ``fmr_qubit_offset``/``fmr_qubit_width`` size the FMR Qi field —
    chips with more than 32 qubits need a wider field (the surface-49
    spec uses 6 bits at offset 14 so Qi stays clear of Rd at bit 20).
    """
    width = instruction_width
    if width % 8 or width < 32:
        raise SpecError(
            f"instruction width {width} must be a multiple of 8 bits, "
            f"at least 32")
    target_shift = width - 12  # SMIS Sd / SMIT Td live here (Fig. 8)
    treg = target_register_address_width

    def fmt(name: str, *fields: FieldSpec) -> FormatSpec:
        return FormatSpec(name=name, opcode=FAMILY_OPCODES[name],
                          fields=fields)

    formats = (
        fmt("NOP"),
        fmt("STOP"),
        fmt("CMP",
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("BR",
            FieldSpec("cond", "condition", 21, 4, "condition"),
            FieldSpec("offset", "target", 0, 21, "branch_offset")),
        fmt("FBR",
            FieldSpec("cond", "condition", 21, 4, "condition"),
            FieldSpec("Rd", "rd", 16, 5)),
        fmt("LDI",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("imm", "imm", 0, 20, "int")),
        fmt("LDUI",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("imm", "imm", 0, 15)),
        fmt("LD",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rt", "rt", 15, 5),
            FieldSpec("imm", "imm", 0, 15, "int")),
        fmt("ST",
            FieldSpec("Rs", "rs", 20, 5),
            FieldSpec("Rt", "rt", 15, 5),
            FieldSpec("imm", "imm", 0, 15, "int")),
        fmt("FMR",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Qi", "qubit", fmr_qubit_offset, fmr_qubit_width)),
        fmt("AND",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("OR",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("XOR",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("NOT",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("ADD",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("SUB",
            FieldSpec("Rd", "rd", 20, 5),
            FieldSpec("Rs", "rs", 15, 5),
            FieldSpec("Rt", "rt", 10, 5)),
        fmt("SMIS",
            FieldSpec("Sd", "sd", target_shift, treg, "sreg"),
            FieldSpec("mask", "qubits", 0, qubit_mask_field_width,
                      "qubit_mask")),
        fmt("SMIT",
            FieldSpec("Td", "td", target_shift, treg, "treg"),
            FieldSpec("mask", "pairs", 0, pair_mask_field_width,
                      "pair_mask")),
        fmt("QWAIT",
            FieldSpec("imm", "cycles", 0, qwait_immediate_width)),
        fmt("QWAITR",
            FieldSpec("Rs", "rs", 15, 5)),
    )

    # Bundle slots pack downward from the flag bit: per lane, first the
    # q opcode, then the target-register index.  At width 32 this lands
    # the lane-0/1 fields at 22/17/8/3 — exactly Fig. 8.
    slots = []
    cursor = width - 1
    for _ in range(vliw_width):
        cursor -= q_opcode_width
        op_offset = cursor
        cursor -= target_register_address_width
        slots.append(BundleSlotSpec(
            op_offset=op_offset, op_width=q_opcode_width,
            reg_offset=cursor, reg_width=target_register_address_width))
    bundle = BundleSpec(flag_bit=width - 1, pi_offset=0,
                        pi_width=pi_width, slots=tuple(slots))

    return EncodingSpec(
        name=name,
        instruction_width=width,
        opcode_offset=width - 7,
        opcode_width=6,
        formats=formats,
        bundle=bundle,
    )
