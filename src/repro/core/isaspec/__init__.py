"""Declarative ISA/encoding specifications.

eQASM's binary format is an *instantiation-time* choice (paper §III:
"the binary format is defined during the instantiation of eQASM").
This package makes that literal: an instantiation's format is a value —
an :class:`EncodingSpec` — instead of code, and the generic
encoder/decoder in :mod:`repro.core.encoding` interprets it with
table-driven field packing.

Spec format contract
--------------------
An :class:`EncodingSpec` consists of:

* ``instruction_width`` — word width ``W`` in bits, a multiple of 8,
  at least 32;
* a shared classical **opcode field** (``opcode_offset`` /
  ``opcode_width``) present in every single-word format;
* ``formats`` — one :class:`FormatSpec` per single-word instruction
  format: a unique name (the binding key into
  :data:`~repro.core.isaspec.bindings.FORMAT_BINDINGS`), a unique
  opcode, and named :class:`FieldSpec` bit-fields.  Each field carries
  the LSB ``offset``, ``width``, the instruction ``attr`` it binds, and
  a ``codec`` name (one of :data:`~repro.core.isaspec.model.FIELD_CODECS`)
  that translates attribute values to raw field bits and back;
* optionally a ``bundle`` :class:`BundleSpec` — the quantum-bundle
  word: a flag bit (the word's top bit; set = bundle, clear = single
  format), a PI (pre-interval) field, and per-VLIW-lane
  :class:`BundleSlotSpec` (q opcode + target-register index) layouts.

Specs serialize losslessly to JSON; registered instantiations ship as
checked-in files under ``specs/`` (see :mod:`.registry`).

Validation invariants
---------------------
:func:`validate_spec` enforces, for every spec before it is used:

1. **No field overlap** — within each format, fields (plus the shared
   opcode field and the bundle flag bit) claim disjoint bits; likewise
   for the bundle word's flag/PI/slot regions.
2. **Width coverage** — every field lies inside ``[0, W)``; the word
   width is a multiple of 8 and at least 32.
3. **Opcode sanity** — opcodes are unique and fit ``opcode_width``.
4. **Signed-range sanity** — signed codecs get at least 2 bits.
5. **Exhaustiveness** — format names and the instruction taxonomy
   match in both directions, and each format's fields bind exactly the
   required constructor attributes of its instruction class.
6. **Known codecs** — every field codec has an implementation.

Invalid specs raise :class:`repro.core.errors.SpecError` at load time.
Use ``python -m repro.core.isaspec validate`` to check spec files and
render markdown encoding reports.
"""

from repro.core.isaspec.bindings import CODECS, FORMAT_BINDINGS, format_name_for
from repro.core.isaspec.build import FAMILY_OPCODES, build_encoding_spec
from repro.core.isaspec.model import (
    FIELD_CODECS,
    BundleSlotSpec,
    BundleSpec,
    EncodingSpec,
    FieldSpec,
    FormatSpec,
)
from repro.core.isaspec.registry import (
    REGISTERED_SPECS,
    load_registered_spec,
    registered_spec_names,
)
from repro.core.isaspec.report import render_report
from repro.core.isaspec.validate import ensure_valid, validate_spec

__all__ = [
    "BundleSlotSpec",
    "BundleSpec",
    "CODECS",
    "EncodingSpec",
    "FAMILY_OPCODES",
    "FIELD_CODECS",
    "FORMAT_BINDINGS",
    "FieldSpec",
    "FormatSpec",
    "REGISTERED_SPECS",
    "build_encoding_spec",
    "ensure_valid",
    "format_name_for",
    "load_registered_spec",
    "registered_spec_names",
    "render_report",
    "validate_spec",
]
