"""Registered encoding specs: the checked-in JSON spec files.

Each registered instantiation's binary format lives as a JSON dump
under ``specs/`` next to this module; the factories in
:mod:`repro.core.isa` load them from here.  Loaded specs are validated
(:func:`~.validate.ensure_valid`) before use, so a hand-edited spec
file that breaks an invariant fails at load time, not at encode time.

Regenerate the files after changing :mod:`.build` with::

    PYTHONPATH=src python -m repro.core.isaspec regenerate
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.core.errors import SpecError
from repro.core.isaspec.build import build_encoding_spec
from repro.core.isaspec.model import EncodingSpec
from repro.core.isaspec.validate import ensure_valid

SPEC_DIR = Path(__file__).parent / "specs"

#: Registered spec name -> builder parameters.  The JSON files under
#: ``specs/`` are dumps of ``build_encoding_spec(name, **params)``;
#: ``regenerate`` rewrites them and the load path cross-checks against
#: the file, so drift between builder and file is loud.
REGISTERED_SPECS: dict[str, dict] = {
    "fig8-32bit": dict(
        instruction_width=32,
        qubit_mask_field_width=7,
        pair_mask_field_width=16,
    ),
    "surface17-64bit": dict(
        instruction_width=64,
        qubit_mask_field_width=17,
        pair_mask_field_width=48,
    ),
    "surface49-192bit": dict(
        instruction_width=192,
        qubit_mask_field_width=49,
        pair_mask_field_width=160,
        fmr_qubit_offset=14,
        fmr_qubit_width=6,
    ),
}


def spec_path(name: str) -> Path:
    return SPEC_DIR / f"{name}.json"


def registered_spec_names() -> tuple[str, ...]:
    return tuple(REGISTERED_SPECS)


@lru_cache(maxsize=None)
def load_registered_spec(name: str) -> EncodingSpec:
    """Load, validate, and cache one registered spec from its file."""
    if name not in REGISTERED_SPECS:
        raise SpecError(
            f"no registered encoding spec named {name!r}; "
            f"registered: {', '.join(REGISTERED_SPECS)}")
    path = spec_path(name)
    if not path.exists():
        raise SpecError(
            f"registered spec file {path} is missing; run "
            f"`python -m repro.core.isaspec regenerate`")
    spec = EncodingSpec.from_json(path.read_text())
    if spec.name != name:
        raise SpecError(
            f"spec file {path} names itself {spec.name!r}, "
            f"expected {name!r}")
    return ensure_valid(spec)


def built_spec(name: str) -> EncodingSpec:
    """Build the registered spec from its parameters (not the file)."""
    return build_encoding_spec(name, **REGISTERED_SPECS[name])


def regenerate(spec_dir: Path | None = None) -> list[Path]:
    """Rewrite every registered spec file from the builder."""
    directory = spec_dir or SPEC_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in REGISTERED_SPECS:
        spec = ensure_valid(built_spec(name))
        path = directory / f"{name}.json"
        path.write_text(spec.to_json())
        written.append(path)
    return written
