"""CLI for encoding specs: validate spec files, render reports.

Usage::

    python -m repro.core.isaspec validate <spec.json> [...]
    python -m repro.core.isaspec validate --all [--report-dir DIR]
    python -m repro.core.isaspec regenerate

``validate --all`` checks every registered spec: the file loads, passes
:func:`~repro.core.isaspec.validate_spec`, and matches what the builder
produces from the registered parameters (so builder and checked-in file
cannot drift silently).  With ``--report-dir`` it also renders one
markdown encoding report per spec — the CI tier-1 job publishes these
as artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.errors import SpecError
from repro.core.isaspec.model import EncodingSpec
from repro.core.isaspec.registry import (
    REGISTERED_SPECS,
    built_spec,
    load_registered_spec,
    regenerate,
    spec_path,
)
from repro.core.isaspec.report import render_report
from repro.core.isaspec.validate import validate_spec


def _emit_report(spec: EncodingSpec, report_dir: Path) -> Path:
    report_dir.mkdir(parents=True, exist_ok=True)
    path = report_dir / f"{spec.name}.md"
    path.write_text(render_report(spec))
    return path


def _validate_one(spec: EncodingSpec, source: str,
                  report_dir: Path | None) -> bool:
    problems = validate_spec(spec)
    if problems:
        print(f"FAIL {source}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return False
    suffix = ""
    if report_dir is not None:
        suffix = f" -> {_emit_report(spec, report_dir)}"
    print(f"OK   {source}: {len(spec.formats)} formats, "
          f"{spec.instruction_width}-bit words{suffix}")
    return True


def _cmd_validate(args: argparse.Namespace) -> int:
    ok = True
    if args.all:
        for name in REGISTERED_SPECS:
            source = str(spec_path(name))
            try:
                spec = load_registered_spec(name)
            except SpecError as exc:
                print(f"FAIL {source}: {exc}")
                ok = False
                continue
            if spec != built_spec(name):
                print(f"FAIL {source}: file drifted from the builder "
                      f"output; run `python -m repro.core.isaspec "
                      f"regenerate`")
                ok = False
                continue
            ok &= _validate_one(spec, source, args.report_dir)
    for path in args.specs:
        try:
            spec = EncodingSpec.from_json(Path(path).read_text())
        except (OSError, SpecError) as exc:
            print(f"FAIL {path}: {exc}")
            ok = False
            continue
        ok &= _validate_one(spec, str(path), args.report_dir)
    if not args.all and not args.specs:
        print("nothing to validate: pass spec files or --all",
              file=sys.stderr)
        return 2
    return 0 if ok else 1


def _cmd_regenerate(args: argparse.Namespace) -> int:
    for path in regenerate():
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.isaspec",
        description="Validate declarative eQASM encoding specs.")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="validate spec files and render reports")
    validate.add_argument("specs", nargs="*", metavar="spec.json",
                          help="spec files to validate")
    validate.add_argument("--all", action="store_true",
                          help="validate every registered spec")
    validate.add_argument("--report-dir", type=Path, default=None,
                          help="render a markdown encoding report per "
                               "valid spec into this directory")
    validate.set_defaults(func=_cmd_validate)

    regen = sub.add_parser(
        "regenerate", help="rewrite registered spec files from the "
                           "builder parameters")
    regen.set_defaults(func=_cmd_regenerate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
