"""Sweep specifications and the deterministic per-point contract.

A *sweep* is the serving layer's unit of work: one experiment skeleton
executed over many parameter points (a Rabi amplitude scan, an RB
length scan, a DSE configuration grid), each point for ``shots`` shots.
The crash-safety story of :mod:`repro.serving` rests on one invariant
defined here:

**Per-point purity.**  :func:`execute_point` makes a point's
:class:`~repro.uarch.trace.ShotCounts` a pure function of
``(spec, point.seed)``: the plant RNG is re-seeded from the point's
deterministic seed, the machine's derived caches (cross-run replay
trees *and* dataflow reports) are dropped, and data memory — the host
channel that deliberately persists across runs — is reset.  A point
therefore produces bit-identical counts no matter which worker runs
it, how many times it is retried after a crash, or in what order the
sweep is sharded.  Everything above (journal resume, shard re-dispatch
after a kill, duplicate-result deduplication) reduces to this
invariant.

Per-point seeds are derived by hashing ``(sweep seed, point index)``
(:func:`derive_point_seed`), so they are stable across processes and
sessions without any shared RNG stream.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.assembler import AssembledProgram
from repro.core.errors import InvalidRequestError
from repro.experiments.runner import ExperimentSetup
from repro.uarch.replay import EngineStats
from repro.uarch.trace import ShotCounts


def derive_point_seed(sweep_seed: int, index: int) -> int:
    """Deterministic 63-bit seed for one sweep point.

    A pure hash of ``(sweep_seed, index)`` — stable across processes,
    platforms, and re-dispatches, and decorrelated between points (two
    adjacent indices share no RNG stream structure).
    """
    digest = hashlib.sha256(
        f"eqasm-sweep-point:{sweep_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: its index, parameters, and derived seed."""

    index: int
    params: tuple[tuple[str, object], ...]
    seed: int

    def params_dict(self) -> dict:
        return dict(self.params)


@dataclass(frozen=True)
class SweepSpec:
    """A complete, self-describing sweep request.

    ``setup_factory`` builds a fresh :class:`ExperimentSetup` (called
    once per worker process); ``program_factory`` maps
    ``(setup, params)`` to the point's :class:`AssembledProgram`.
    Both must be importable module-level callables or otherwise survive
    a process fork — they are inherited by worker processes, never
    pickled over the wire.  Parameter values must be JSON-serializable
    (they feed the journal's integrity fingerprint).

    ``observe`` turns on worker-side observability: each point runs
    with a :class:`repro.obs.Observability` attached to the worker's
    machine, and the exported spans/metrics ride back to the service
    on the result message (see :meth:`SweepService.observability`).
    Off by default; it never affects the computed counts (span
    sampling is accumulator-based, not RNG-based) and is deliberately
    excluded from :meth:`fingerprint` so journals resume either way.
    """

    name: str
    shots: int
    seed: int
    point_params: tuple[tuple[tuple[str, object], ...], ...]
    setup_factory: Callable[[], ExperimentSetup]
    program_factory: Callable[[ExperimentSetup, Mapping],
                              AssembledProgram]
    observe: bool = False

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise InvalidRequestError(
                f"a sweep needs at least one shot per point, "
                f"got {self.shots}")
        if not self.point_params:
            raise InvalidRequestError("a sweep needs at least one point")

    @classmethod
    def from_params(cls, name: str, shots: int, seed: int,
                    params: Sequence[Mapping] | Iterable[Mapping],
                    setup_factory: Callable[[], ExperimentSetup],
                    program_factory: Callable[[ExperimentSetup, Mapping],
                                              AssembledProgram],
                    observe: bool = False) -> "SweepSpec":
        """Build a spec from per-point parameter mappings."""
        normalized = tuple(tuple(sorted(mapping.items()))
                           for mapping in params)
        return cls(name=name, shots=shots, seed=seed,
                   point_params=normalized,
                   setup_factory=setup_factory,
                   program_factory=program_factory,
                   observe=observe)

    @property
    def num_points(self) -> int:
        return len(self.point_params)

    def point(self, index: int) -> SweepPoint:
        """The fully derived point at ``index``."""
        if not 0 <= index < self.num_points:
            raise InvalidRequestError(
                f"point index {index} outside sweep of "
                f"{self.num_points} points")
        return SweepPoint(index=index, params=self.point_params[index],
                          seed=derive_point_seed(self.seed, index))

    def points(self) -> tuple[SweepPoint, ...]:
        return tuple(self.point(index)
                     for index in range(self.num_points))

    def fingerprint(self) -> str:
        """Integrity fingerprint of everything the journal must match.

        Covers the name, shot count, master seed, and every point's
        parameters — *not* the factory callables (code identity cannot
        be hashed reliably; resuming a journal against changed factory
        semantics is the caller's contract to keep, exactly like
        re-running any experiment against edited code).
        """
        body = json.dumps(
            {"name": self.name, "shots": self.shots, "seed": self.seed,
             "points": self.point_params},
            sort_keys=True, separators=(",", ":"), default=repr)
        return hashlib.sha256(body.encode()).hexdigest()


@dataclass(frozen=True)
class PointResult:
    """One completed sweep point, with its execution telemetry.

    ``resumed`` marks results served from the checkpoint journal
    rather than executed this run; ``worker`` is the worker slot that
    produced a live result (None for resumed ones).
    """

    sweep: str
    index: int
    seed: int
    params: tuple[tuple[str, object], ...]
    counts: ShotCounts
    engine: str | None
    plant_backend: str | None
    interpreter_shots: int
    replay_shots: int
    latency_s: float
    #: Shots the Pauli-frame batched engine delivered (the PR-8
    #: counter — without it a frame-engine point would report zero
    #: shots through every serving telemetry surface).
    frame_batched: int = 0
    #: Degradation-ladder steps the point's run took, in order.
    degradations: tuple[str, ...] = ()
    worker: int | None = None
    resumed: bool = False

    def params_dict(self) -> dict:
        return dict(self.params)

    def payload(self) -> dict:
        """The JSON-ready journal/queue representation."""
        return {
            "index": self.index,
            "seed": self.seed,
            "counts": self.counts.as_dict(),
            "engine": self.engine,
            "plant_backend": self.plant_backend,
            "interpreter_shots": self.interpreter_shots,
            "replay_shots": self.replay_shots,
            "frame_batched": self.frame_batched,
            "degradations": list(self.degradations),
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_payload(cls, spec: SweepSpec, payload: Mapping,
                     worker: int | None = None,
                     resumed: bool = False) -> "PointResult":
        index = int(payload["index"])
        point = spec.point(index)
        return cls(
            sweep=spec.name,
            index=index,
            seed=int(payload["seed"]),
            params=point.params,
            counts=ShotCounts.from_dict(payload["counts"]),
            engine=payload.get("engine"),
            plant_backend=payload.get("plant_backend"),
            interpreter_shots=int(payload.get("interpreter_shots", 0)),
            replay_shots=int(payload.get("replay_shots", 0)),
            frame_batched=int(payload.get("frame_batched", 0)),
            degradations=tuple(payload.get("degradations", ())),
            latency_s=float(payload.get("latency_s", 0.0)),
            worker=worker,
            resumed=resumed,
        )


def execute_point(setup: ExperimentSetup, spec: SweepSpec,
                  point: SweepPoint
                  ) -> tuple[ShotCounts, EngineStats, float]:
    """Run one sweep point under the per-point purity contract.

    Resets every piece of machine state that could couple this point
    to earlier ones — the plant RNG (re-seeded from the point's
    deterministic seed), the cross-run replay-tree and dataflow-report
    caches, and data memory — then compiles, loads, and streams the
    point's shots.  Replay still accelerates *within* the point (the
    timeline tree grows over its shots); only cross-point reuse is
    sacrificed, because a warm tree changes how much plant randomness
    each shot consumes and would make the counts depend on execution
    history.
    """
    machine = setup.machine
    machine.clear_replay_cache()
    machine.memory.reset()
    machine.plant.rng = np.random.default_rng(point.seed)
    assembled = spec.program_factory(setup, point.params_dict())
    machine.load(assembled)
    start = time.perf_counter()
    counts = machine.run_counts(spec.shots)
    latency_s = time.perf_counter() - start
    return counts, machine.engine_stats_snapshot(), latency_s


def execution_payload(spec: SweepSpec, point: SweepPoint,
                      counts: ShotCounts, stats: EngineStats,
                      latency_s: float) -> dict:
    """The queue/journal payload for a just-executed point."""
    return {
        "index": point.index,
        "seed": point.seed,
        "counts": counts.as_dict(),
        "engine": stats.engine,
        "plant_backend": stats.plant_backend,
        "interpreter_shots": stats.interpreter_shots,
        "replay_shots": stats.replay_shots,
        "frame_batched": stats.frame_batched,
        "degradations": list(stats.degradations),
        "latency_s": latency_s,
    }
