"""Worker-process main loop of the sweep service.

Each worker owns one :class:`~repro.experiments.runner.ExperimentSetup`
(and hence one :class:`~repro.uarch.machine.QuMAv2`), built by the
sweep's ``setup_factory`` inside the child process.  Workers receive
:class:`Shard` messages on a private task queue, execute each point
under the per-point purity contract
(:func:`repro.serving.sweep.execute_point`), heartbeat into a shared
array before every point, and report results on the shared result
queue.  Workers hold **no durable state**: the journal lives with the
supervisor, so a worker can die at any instruction without losing more
than its in-flight shard's recomputation.

Chaos directives (``worker_crash`` / ``worker_hang`` /
``result_drop``) ride inside the shard message — decided
deterministically by the supervisor's armed
:class:`~repro.uarch.faults.FaultPlan` at dispatch time — so the
worker code paths that die are exactly the production code paths, just
truncated at the injected instant.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.serving.sweep import (
    SweepSpec,
    execute_point,
    execution_payload,
)

#: Exit code of a chaos-crashed worker (mirrors SIGKILL's 128+9 so
#: supervision treats injected and real kills identically).
CRASH_EXIT_CODE = 137


@dataclass(frozen=True)
class Shard:
    """A contiguous batch of point indices dispatched to one worker.

    ``chaos`` maps point indices to an injection directive for that
    point ("worker_crash" | "worker_hang" | "result_drop").
    """

    indices: tuple[int, ...]
    chaos: tuple[tuple[int, str], ...] = ()


def worker_main(worker_id: int, generation: int, spec: SweepSpec,
                task_queue, result_queue, heartbeats,
                hang_sleep_s: float = 3600.0) -> None:
    """Entry point of one worker process.

    Protocol: ``None`` on the task queue is the graceful-drain
    sentinel — the worker finishes nothing further, acknowledges with
    a ``worker_exit`` message, and returns.  Every other message is a
    :class:`Shard`.
    """
    heartbeats[worker_id] = time.monotonic()
    try:
        setup = spec.setup_factory()
    except Exception as error:  # noqa: BLE001 — reported, not raised
        result_queue.put({"kind": "worker_error", "worker": worker_id,
                          "generation": generation,
                          "error": repr(error)})
        return
    observability = None
    if spec.observe:
        # Worker-side telemetry: one Observability for the worker's
        # lifetime; after each point the fresh spans/metrics are
        # exported onto the result message and the local state cleared,
        # so every "point" message carries exactly its own telemetry.
        from repro.obs import Observability
        observability = Observability()
        setup.machine.observability = observability
    while True:
        shard = task_queue.get()
        if shard is None:
            result_queue.put({"kind": "worker_exit",
                              "worker": worker_id,
                              "generation": generation})
            return
        chaos = dict(shard.chaos)
        for index in shard.indices:
            heartbeats[worker_id] = time.monotonic()
            directive = chaos.get(index)
            if directive == "worker_hang":
                # Stop heartbeating and go dark: the supervisor's
                # watchdog must SIGKILL us.  (The sleep is bounded
                # only so an unsupervised test cannot wedge forever.)
                time.sleep(hang_sleep_s)
                os._exit(CRASH_EXIT_CODE)
            point = spec.point(index)
            try:
                counts, stats, latency_s = execute_point(
                    setup, spec, point)
            except Exception as error:  # noqa: BLE001
                result_queue.put({
                    "kind": "point_error", "worker": worker_id,
                    "generation": generation, "index": index,
                    "error": repr(error),
                    "error_type": type(error).__name__})
                continue
            if directive == "worker_crash":
                # Die after computing but before reporting: the point
                # is lost with the process and must be re-dispatched.
                os._exit(CRASH_EXIT_CODE)
            if directive == "result_drop":
                # The result message is lost in transit; the worker
                # itself stays healthy and keeps serving the shard.
                continue
            payload = execution_payload(spec, point, counts, stats,
                                        latency_s)
            if observability is not None:
                payload["obs"] = {
                    "chrome": observability.tracer.chrome_trace_events(),
                    "metrics": observability.metrics.snapshot(),
                }
                observability.tracer.clear()
                observability.metrics.clear()
            result_queue.put({
                "kind": "point", "worker": worker_id,
                "generation": generation, "index": index,
                "payload": payload})
