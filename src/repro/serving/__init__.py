"""Crash-safe sweep serving for the eQASM reproduction.

The paper's toolflow exists to drive real experiments at production
cadence; this package is the layer that keeps that promise when
processes die.  A :class:`SweepService` executes parameter sweeps over
a supervised pool of worker processes (each owning one
:class:`~repro.uarch.machine.QuMAv2`), streaming per-point results and
structured supervision telemetry.

The durability contract
-----------------------

1. **Per-point purity.**  A sweep point's
   :class:`~repro.uarch.trace.ShotCounts` is a pure function of
   ``(spec, point seed)``: seeds derive deterministically from
   ``(sweep seed, point index)``, and
   :func:`~repro.serving.sweep.execute_point` resets the plant RNG,
   the machine's derived caches, and data memory before each point.
   Re-running a point — on any worker, after any crash, in any order —
   is bit-identical.

2. **Durable before observable.**  Every completed point is appended
   to the checkpoint journal (JSONL, one record per line, SHA-256
   integrity digest per record) and flushed *before* it is yielded to
   the caller.  A journal is resumable from an arbitrary crash: the
   loader accepts the longest valid record prefix, detects and drops
   mid-record torn writes, and refuses journals whose header
   fingerprint does not match the sweep.

3. **Exactly-once accounting.**  The supervisor detects worker death
   (process exit), hangs (heartbeat timeout), and silent result loss
   (per-point progress deadline); it re-dispatches exactly the
   un-journaled indices of the affected shard.  Duplicate results —
   a re-dispatched point whose first result surfaced after all — are
   deduplicated, and the two copies are *compared*: a mismatch is an
   :class:`~repro.core.errors.ExperimentIntegrityError`, because it
   means contract (1) broke and no recovery guarantee survives it.
   A resumed-then-finished sweep therefore reports each point exactly
   once, bit-identical to an uninterrupted run.

4. **Bounded everything.**  Admission is refused past the pending
   queue bound (:class:`~repro.core.errors.AdmissionRejectedError`),
   sweeps abort past their wall-clock budget
   (:class:`~repro.core.errors.JobDeadlineError`, completed work kept
   journaled), and supervision gives up past its restart budget
   (:class:`~repro.core.errors.WorkerPoolError`) instead of retrying a
   crashing workload forever.  Shutdown drains gracefully: workers get
   a sentinel, finish their shard, and only stragglers are killed.

Chaos coverage: the process-level fault sites
(:data:`~repro.uarch.faults.PROCESS_FAULT_SITES` — ``worker_crash``,
``worker_hang``, ``result_drop``) are armed on the *service* via the
same deterministic :class:`~repro.uarch.faults.FaultPlan` machinery as
the in-process sites, and the chaos suite asserts the recovered
distribution equals the fault-free one bit for bit.
"""

from repro.serving.journal import CheckpointJournal, record_digest
from repro.serving.service import (
    ServiceConfig,
    ServiceStats,
    SupervisionEvent,
    SweepResult,
    SweepService,
)
from repro.serving.supervisor import WorkerHandle, WorkerPool
from repro.serving.sweep import (
    PointResult,
    SweepPoint,
    SweepSpec,
    derive_point_seed,
    execute_point,
)
from repro.serving.worker import Shard, worker_main

__all__ = [
    "CheckpointJournal",
    "PointResult",
    "ServiceConfig",
    "ServiceStats",
    "Shard",
    "SupervisionEvent",
    "SweepPoint",
    "SweepResult",
    "SweepService",
    "SweepSpec",
    "WorkerHandle",
    "WorkerPool",
    "derive_point_seed",
    "execute_point",
    "record_digest",
    "worker_main",
]
