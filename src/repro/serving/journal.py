"""Append-only checkpoint journal for crash-safe sweeps.

One JSON record per line; every record carries a SHA-256 ``digest`` of
its canonical serialization, so corruption — a torn write from a
killed process, a truncated disk flush, a flipped bit — is *detected*,
never silently replayed.  The first record is a header binding the
journal to a :class:`~repro.serving.sweep.SweepSpec` fingerprint;
resuming a journal against a different sweep is an integrity error,
not a garbage result.

Recovery contract (pinned by the truncation property test):

* the loader accepts exactly the longest valid prefix of records — it
  stops at the first unparsable line, digest mismatch, or newline-less
  tail, drops everything from there on
  (:attr:`CheckpointJournal.torn_records_dropped` counts them), and
  truncates the file back to the end of the valid prefix so appended
  records never hide behind garbage;
* duplicate point records (a re-dispatched point whose first result
  arrived after all) must agree bit-for-bit with the first — exactly
  the per-point purity invariant — or the journal refuses to load;
* a record for a point the spec does not have, or with a seed the spec
  would not derive, is an integrity error (the journal belongs to a
  different sweep).

Durability: records are flushed to the OS on every append (surviving
process crashes, including SIGKILL); ``fsync=True`` additionally syncs
to stable storage per record for machine-crash durability at a
throughput cost.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Mapping

from repro.core.errors import ExperimentIntegrityError
from repro.serving.sweep import SweepSpec

JOURNAL_VERSION = 1


def record_digest(record: Mapping) -> str:
    """SHA-256 of the canonical JSON of ``record`` (sans ``digest``)."""
    body = {key: value for key, value in record.items()
            if key != "digest"}
    canonical = json.dumps(body, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class CheckpointJournal:
    """Single-writer append-only journal of completed sweep points.

    The service owns the writer end (one process, append-only); any
    number of readers may :meth:`load` a journal that belongs to a
    finished or crashed service.
    """

    def __init__(self, path, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self._file = None
        #: Records dropped by the last :meth:`load` because of a torn
        #: or corrupt suffix.
        self.torn_records_dropped = 0
        #: Duplicate point records ignored by the last :meth:`load`.
        self.duplicates_ignored = 0

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[dict], int, int]:
        """Parse the longest valid record prefix.

        Returns ``(records, valid_end_byte, dropped)`` — the loader
        stops at the first invalid line; everything after it is
        untrusted (records are appended in order, so a corrupt record
        means the suffix postdates the corruption event).
        """
        if not self.path.exists():
            return [], 0, 0
        data = self.path.read_bytes()
        records: list[dict] = []
        valid_end = 0
        position = 0
        dropped = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            if newline == -1:
                dropped += 1  # torn tail: no terminating newline
                break
            line = data[position:newline]
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                if record.get("digest") != record_digest(record):
                    raise ValueError("digest mismatch")
            except (ValueError, UnicodeDecodeError):
                # This record and everything after it is untrusted.
                dropped += 1 + data.count(b"\n", newline + 1)
                if not data.endswith(b"\n"):
                    dropped += 1
                break
            records.append(record)
            valid_end = newline + 1
            position = newline + 1
        return records, valid_end, dropped

    def load(self, spec: SweepSpec) -> dict[int, dict]:
        """Validate the journal against ``spec`` and open for append.

        Returns the completed point payloads keyed by index (empty for
        a fresh journal).  The file is truncated back to its valid
        prefix, the header written if absent, and the append handle
        left open for :meth:`append_point`.
        """
        records, valid_end, dropped = self._scan()
        self.torn_records_dropped = dropped
        self.duplicates_ignored = 0

        completed: dict[int, dict] = {}
        if records:
            header = records[0]
            if header.get("kind") != "header":
                raise ExperimentIntegrityError(
                    f"journal {self.path} does not start with a header "
                    f"record",
                    path=str(self.path), first_kind=header.get("kind"))
            if header.get("version") != JOURNAL_VERSION:
                raise ExperimentIntegrityError(
                    f"journal {self.path} has version "
                    f"{header.get('version')}, expected "
                    f"{JOURNAL_VERSION}",
                    path=str(self.path), version=header.get("version"))
            if header.get("fingerprint") != spec.fingerprint():
                raise ExperimentIntegrityError(
                    f"journal {self.path} belongs to a different sweep "
                    f"(fingerprint mismatch — same name is not enough: "
                    f"points, shots, and seed must all agree)",
                    path=str(self.path), sweep=spec.name,
                    journal_sweep=header.get("sweep"))
            for record in records[1:]:
                if record.get("kind") != "point":
                    raise ExperimentIntegrityError(
                        f"journal {self.path} holds an unknown record "
                        f"kind {record.get('kind')!r}",
                        path=str(self.path), kind=record.get("kind"))
                index = int(record["index"])
                if not 0 <= index < spec.num_points:
                    raise ExperimentIntegrityError(
                        f"journal {self.path} records point {index} "
                        f"outside the sweep's {spec.num_points} points",
                        path=str(self.path), index=index,
                        total_points=spec.num_points)
                if int(record["seed"]) != spec.point(index).seed:
                    raise ExperimentIntegrityError(
                        f"journal {self.path} point {index} has a seed "
                        f"the sweep would not derive — wrong journal "
                        f"for this sweep",
                        path=str(self.path), index=index)
                if index in completed:
                    if record["counts"] != completed[index]["counts"]:
                        raise ExperimentIntegrityError(
                            f"journal {self.path} holds two conflicting "
                            f"results for point {index} — per-point "
                            f"determinism was violated",
                            path=str(self.path), index=index)
                    self.duplicates_ignored += 1
                    continue
                completed[index] = dict(record)

        # Truncate away any torn/corrupt suffix so appended records
        # never sit behind garbage the next loader would stop at.
        if self.path.exists() and valid_end < self.path.stat().st_size:
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_end)

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        if not records:
            self._append({
                "kind": "header",
                "version": JOURNAL_VERSION,
                "sweep": spec.name,
                "fingerprint": spec.fingerprint(),
                "total_points": spec.num_points,
                "shots": spec.shots,
                "seed": spec.seed,
            })
        return completed

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._file is None:
            raise ExperimentIntegrityError(
                "journal is not open for append — call load() first",
                path=str(self.path))
        record = dict(record)
        record["digest"] = record_digest(record)
        self._file.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def append_point(self, payload: Mapping) -> None:
        """Journal one completed point (flushed before returning, so a
        crash immediately after cannot lose it)."""
        record = {"kind": "point"}
        record.update(payload)
        self._append(record)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
