"""Worker-pool supervision: spawn, watch, kill, respawn.

The pool is built per sweep (workers inherit the
:class:`~repro.serving.sweep.SweepSpec` — including its factory
callables — through a ``fork`` at spawn time, so nothing is pickled).
Each worker slot is a :class:`WorkerHandle` owning the live process,
its private task queue, and the supervision bookkeeping:

* ``generation`` increments on every respawn, and every message a
  worker sends carries its generation, so a straggler message from a
  killed process can never be mistaken for the replacement's;
* ``assignment`` is the dispatched shard's outstanding index set —
  what must be re-dispatched if the process dies;
* ``dispatched_at`` / ``progress_at`` drive the per-point progress
  deadline, ``heartbeats[worker_id]`` the hang watchdog.

The pool never interprets results — that (and the journal) is the
:class:`~repro.serving.service.SweepService`'s job; the split keeps
process lifecycle management testable on its own.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.serving.sweep import SweepSpec
from repro.serving.worker import Shard, worker_main


class WorkerHandle:
    """One worker slot: the live process plus supervision state."""

    def __init__(self, worker_id: int, spec: SweepSpec, context,
                 result_queue, heartbeats, hang_sleep_s: float):
        self.worker_id = worker_id
        self.spec = spec
        self._context = context
        self._result_queue = result_queue
        self._heartbeats = heartbeats
        self._hang_sleep_s = hang_sleep_s
        self.generation = 0
        self.process = None
        self.task_queue = None
        #: Outstanding point indices of the dispatched shard (empty
        #: set means idle).
        self.assignment: set[int] = set()
        self.dispatched_at: float | None = None
        self.progress_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Start a fresh process for this slot (a new generation).

        A respawn always gets a new task queue: a killed worker may
        have died holding its queue's read end mid-message, and a
        stale shard or sentinel left in the old queue must not leak
        into the replacement.
        """
        self.generation += 1
        self.task_queue = self._context.Queue()
        self._heartbeats[self.worker_id] = time.monotonic()
        self.process = self._context.Process(
            target=worker_main,
            args=(self.worker_id, self.generation, self.spec,
                  self.task_queue, self._result_queue,
                  self._heartbeats, self._hang_sleep_s),
            daemon=True,
            name=f"sweep-worker-{self.worker_id}.{self.generation}")
        self.process.start()
        self.assignment = set()
        self.dispatched_at = None
        self.progress_at = None

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the process (used for hangs — a hung worker by
        definition does not respond to anything gentler)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def request_exit(self) -> None:
        """Send the graceful-drain sentinel."""
        if self.task_queue is not None and self.is_alive():
            self.task_queue.put(None)

    def join(self, timeout: float) -> bool:
        """Join the process; True when it exited within the timeout."""
        if self.process is None:
            return True
        self.process.join(timeout=timeout)
        return not self.process.is_alive()

    # ------------------------------------------------------------------
    # Dispatch / progress bookkeeping
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return not self.assignment

    def dispatch(self, shard: Shard) -> None:
        now = time.monotonic()
        self.assignment = set(shard.indices)
        self.dispatched_at = now
        self.progress_at = now
        # A worker blocked on an empty queue does not beat; restart its
        # hang clock at dispatch so a long-idle (healthy) worker is not
        # instantly mistaken for a hung one.
        self._heartbeats[self.worker_id] = now
        self.task_queue.put(shard)

    def mark_progress(self, index: int) -> None:
        self.assignment.discard(index)
        self.progress_at = time.monotonic()
        if not self.assignment:
            self.dispatched_at = None
            self.progress_at = None

    def heartbeat_age(self) -> float:
        return time.monotonic() - self._heartbeats[self.worker_id]

    def progress_age(self) -> float | None:
        if self.progress_at is None:
            return None
        return time.monotonic() - self.progress_at


class WorkerPool:
    """The fixed-size pool of worker slots for one sweep."""

    def __init__(self, spec: SweepSpec, num_workers: int,
                 hang_sleep_s: float = 3600.0):
        self._context = multiprocessing.get_context("fork")
        self.result_queue = self._context.Queue()
        self.heartbeats = self._context.Array(
            "d", num_workers, lock=False)
        self.handles = [
            WorkerHandle(worker_id, spec, self._context,
                         self.result_queue, self.heartbeats,
                         hang_sleep_s)
            for worker_id in range(num_workers)
        ]

    def start(self) -> None:
        for handle in self.handles:
            handle.spawn()

    def handle_for(self, worker_id: int,
                   generation: int) -> WorkerHandle | None:
        """The live handle a message belongs to, or None when the
        message is a straggler from a dead generation."""
        handle = self.handles[worker_id]
        if handle.generation != generation:
            return None
        return handle

    def stop(self, graceful: bool, timeout: float = 5.0) -> None:
        """Shut the pool down.

        Graceful drain sends every live worker the exit sentinel and
        joins; anything still alive after the timeout — and everything
        when ``graceful`` is False — is SIGKILLed.  Queues are closed
        so their feeder threads do not outlive the pool.
        """
        if graceful:
            for handle in self.handles:
                handle.request_exit()
            deadline = time.monotonic() + timeout
            for handle in self.handles:
                remaining = max(0.0, deadline - time.monotonic())
                handle.join(remaining)
        for handle in self.handles:
            handle.kill()
        for handle in self.handles:
            if handle.task_queue is not None:
                handle.task_queue.close()
                handle.task_queue.cancel_join_thread()
        self.result_queue.close()
        self.result_queue.cancel_join_thread()
