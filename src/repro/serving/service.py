"""The crash-safe sweep execution service.

:class:`SweepService` is the front end of :mod:`repro.serving`: submit
a :class:`~repro.serving.sweep.SweepSpec`, stream back one
:class:`~repro.serving.sweep.PointResult` per point, with every
supervision decision — restarts, re-dispatches, deadline hits, chaos
directives, torn journal records — recorded as structured telemetry on
:class:`ServiceStats` (never only in logs).

The service owns the control plane; the data plane is the supervised
worker pool of :mod:`repro.serving.supervisor`.  One single-threaded
drive loop per sweep interleaves four duties:

1. **dispatch** — shard pending points onto idle workers (one
   outstanding shard per worker: the natural backpressure bound);
2. **collect** — drain the result queue, deduplicate, journal each
   new point *before* yielding it (a result is durable before it is
   observable);
3. **supervise** — respawn dead workers, SIGKILL hung ones (stale
   heartbeat) and stalled ones (per-point progress deadline), and
   re-dispatch exactly the un-journaled indices of their shards;
4. **deadline** — abort the sweep with a structured
   :class:`~repro.core.errors.JobDeadlineError` when its wall-clock
   budget expires (completed points stay journaled, so a resubmission
   with the same journal resumes instead of restarting).

Admission control is up front: :meth:`SweepService.submit` refuses
work beyond the bounded pending queue with
:class:`~repro.core.errors.AdmissionRejectedError`, and a sweep whose
points keep crashing workers exhausts the restart budget and aborts
with :class:`~repro.core.errors.WorkerPoolError` rather than retrying
forever.
"""

from __future__ import annotations

import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.core.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    ExperimentIntegrityError,
    JobDeadlineError,
    WorkerPoolError,
)
from repro.obs import LATENCY_S_BOUNDS, Histogram
from repro.serving.journal import CheckpointJournal
from repro.serving.supervisor import WorkerPool
from repro.serving.sweep import PointResult, SweepSpec
from repro.serving.worker import Shard
from repro.uarch.faults import PROCESS_FAULT_SITES, FaultPlan
from repro.uarch.trace import ShotCounts


@dataclass(frozen=True)
class ServiceConfig:
    """Supervision and admission policy of a :class:`SweepService`."""

    #: Worker processes per sweep (each owns one machine).
    num_workers: int = 2
    #: Points per dispatched shard.
    shard_size: int = 4
    #: A worker with outstanding work whose last heartbeat is older
    #: than this is declared hung and SIGKILLed.  Workers beat once
    #: per point, so the timeout must exceed the slowest single point.
    heartbeat_timeout_s: float = 30.0
    #: Drive-loop result-poll granularity.
    poll_interval_s: float = 0.02
    #: A dispatched shard must complete *some* point this often, or
    #: the worker is restarted and the leftovers re-dispatched (this
    #: is what catches dropped result messages).  None disables.
    point_deadline_s: float | None = None
    #: Wall-clock budget for a whole sweep; exceeding it raises
    #: :class:`JobDeadlineError`.  None disables.
    sweep_deadline_s: float | None = None
    #: Worker restarts (death + hang + stall combined) a single sweep
    #: may consume before the supervisor gives up.
    max_restarts: int = 8
    #: Times one point may report an execution error before the sweep
    #: aborts (failures are deterministic more often than not).
    max_point_failures: int = 2
    #: Bounded admission queue: sweeps submitted but not yet served.
    max_pending_sweeps: int = 2
    #: fsync the journal per record (machine-crash durability) instead
    #: of only flushing (process-crash durability).
    journal_fsync: bool = False
    #: Graceful-drain budget at sweep end before stragglers are killed.
    drain_timeout_s: float = 5.0
    #: How long an injected ``worker_hang`` sleeps (test hook — bounds
    #: a wedge if the hang watchdog itself is broken).
    hang_sleep_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be at least 1")
        if self.heartbeat_timeout_s <= 0:
            raise ConfigurationError(
                "heartbeat_timeout_s must be positive")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        if self.max_pending_sweeps < 1:
            raise ConfigurationError(
                "max_pending_sweeps must be at least 1")


@dataclass(frozen=True)
class SupervisionEvent:
    """One structured supervision decision (telemetry, not logging)."""

    kind: str
    worker: int | None = None
    generation: int | None = None
    indices: tuple[int, ...] = ()
    detail: str = ""

    def describe(self) -> str:
        parts = [self.kind]
        if self.worker is not None:
            parts.append(f"worker={self.worker}.{self.generation}")
        if self.indices:
            parts.append(f"points={list(self.indices)}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class ServiceStats:
    """Aggregated serving telemetry, updated live while sweeps run.

    ``points_completed`` counts points *executed* this run;
    ``points_resumed`` counts points served straight from the journal.
    Their sum over a finished sweep equals the sweep's point count
    exactly once — the exactly-once accounting the chaos suite pins.
    """

    sweeps_submitted: int = 0
    sweeps_completed: int = 0
    points_total: int = 0
    points_completed: int = 0
    points_resumed: int = 0
    points_redispatched: int = 0
    points_failed: int = 0
    duplicate_results: int = 0
    worker_restarts: int = 0
    worker_deaths: int = 0
    heartbeat_timeouts: int = 0
    shard_deadline_hits: int = 0
    sweep_deadline_hits: int = 0
    admission_rejections: int = 0
    journal_torn_records: int = 0
    interpreter_shots: int = 0
    replay_shots: int = 0
    frame_batched_shots: int = 0
    #: Latency of every point *executed* this run (resumed points cost
    #: no execution), on the shared fixed-bound histogram — the one
    #: percentile implementation serving and the bench both use.
    point_latency: Histogram = field(
        default_factory=lambda: Histogram(LATENCY_S_BOUNDS))
    #: Chaos directives issued at dispatch ("site@pointN").
    chaos_directives: list[str] = field(default_factory=list)
    #: Every supervision decision, in order.
    events: list[SupervisionEvent] = field(default_factory=list)

    #: Scalar counter -> hierarchical metric name (``service.*``).
    _METRIC_NAMES = (
        ("sweeps_submitted", "service.sweeps.submitted"),
        ("sweeps_completed", "service.sweeps.completed"),
        ("points_total", "service.points.total"),
        ("points_completed", "service.points.completed"),
        ("points_resumed", "service.points.resumed"),
        ("points_redispatched", "service.points.redispatched"),
        ("points_failed", "service.points.failed"),
        ("duplicate_results", "service.points.duplicates"),
        ("worker_restarts", "service.workers.restarts"),
        ("worker_deaths", "service.workers.deaths"),
        ("heartbeat_timeouts", "service.workers.heartbeat_timeouts"),
        ("shard_deadline_hits", "service.deadlines.shard_hits"),
        ("sweep_deadline_hits", "service.deadlines.sweep_hits"),
        ("admission_rejections", "service.admission.rejections"),
        ("journal_torn_records", "service.journal.torn_records"),
        ("interpreter_shots", "service.shots.interpreter"),
        ("replay_shots", "service.shots.replay"),
        ("frame_batched_shots", "service.shots.frame_batched"),
    )

    def snapshot(self) -> "ServiceStats":
        copy = replace(self)
        copy.point_latency = self.point_latency.copy()
        copy.chaos_directives = list(self.chaos_directives)
        copy.events = list(self.events)
        return copy

    def as_dict(self) -> dict:
        """JSON-ready summary (used by the service benchmark)."""
        payload = {name: getattr(self, name)
                   for name, _ in self._METRIC_NAMES}
        latency = self.point_latency
        payload["point_latency"] = {
            "count": latency.count,
            "p50_ms": latency.percentile(0.50) * 1e3,
            "p90_ms": latency.percentile(0.90) * 1e3,
            "p99_ms": latency.percentile(0.99) * 1e3,
        }
        payload["chaos_directives"] = list(self.chaos_directives)
        payload["events"] = [event.describe() for event in self.events]
        return payload

    def publish_metrics(self, registry) -> None:
        """Publish the current totals into ``registry`` under the
        ``service.*`` namespace.  Values are *assigned*, not
        incremented — the stats object is cumulative, so republishing
        after every sweep keeps the registry equal to the live totals
        instead of double-counting them."""
        for attr, name in self._METRIC_NAMES:
            registry.counter(name).value = int(getattr(self, attr))
        registry.counter("service.chaos_directives").value = \
            len(self.chaos_directives)
        registry.counter("service.supervision_events").value = \
            len(self.events)
        mirror = registry.histogram("service.point.latency_s",
                                    bounds=self.point_latency.bounds)
        source = self.point_latency
        mirror.bucket_counts[:] = source.bucket_counts
        mirror.count = source.count
        mirror.total = source.total
        mirror.min_value = source.min_value
        mirror.max_value = source.max_value


@dataclass
class SweepResult:
    """A fully collected sweep: per-point results plus telemetry."""

    sweep: str
    results: dict[int, PointResult]
    stats: ServiceStats

    def counts_by_index(self) -> dict[int, ShotCounts]:
        return {index: result.counts
                for index, result in sorted(self.results.items())}

    @property
    def resumed_points(self) -> int:
        return sum(1 for result in self.results.values()
                   if result.resumed)


@dataclass(frozen=True)
class _Job:
    spec: SweepSpec
    journal_path: object | None


class SweepService:
    """Submit sweeps; stream crash-safe, exactly-once point results."""

    def __init__(self, config: ServiceConfig | None = None,
                 fault_plan: FaultPlan | None = None,
                 observability=None):
        self.config = config or ServiceConfig()
        self.fault_plan = fault_plan
        self.stats = ServiceStats()
        self._pending: deque[_Job] = deque()
        #: Optional :class:`repro.obs.Observability`.  When set, the
        #: drive loop records per-point dispatch-to-journal spans,
        #: mirrors every supervision decision as an instant trace
        #: event, and — for sweeps whose spec enables ``observe`` —
        #: ingests the worker-side spans/metrics that ride back on
        #: each result message.
        self.observability = observability
        #: Dispatch timestamp (monotonic ns) of every in-flight point,
        #: opening edge of its ``service.point`` span.
        self._dispatch_ns: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------
    def arm_faults(self, plan: FaultPlan | None) -> None:
        """Arm a process-level chaos plan (None disarms).  Only the
        :data:`~repro.uarch.faults.PROCESS_FAULT_SITES` fire here; the
        plan's shot index means *sweep point index*."""
        self.fault_plan = plan

    def disarm_faults(self) -> None:
        self.arm_faults(None)

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, spec: SweepSpec, journal_path=None) -> None:
        """Queue a sweep for serving.

        Raises :class:`AdmissionRejectedError` when the bounded
        pending queue is full — backpressure at the front door instead
        of unbounded growth behind it.
        """
        if len(self._pending) >= self.config.max_pending_sweeps:
            self.stats.admission_rejections += 1
            raise AdmissionRejectedError(
                f"sweep {spec.name!r} rejected: {len(self._pending)} "
                f"sweeps already pending (limit "
                f"{self.config.max_pending_sweeps}) — drain via "
                f"serve() or raise max_pending_sweeps",
                queue="sweep-admission",
                depth=self.config.max_pending_sweeps,
                occupancy=len(self._pending))
        self.stats.sweeps_submitted += 1
        self._pending.append(_Job(spec=spec, journal_path=journal_path))

    def serve(self) -> Iterator[PointResult]:
        """Drive every pending sweep, streaming results as they
        complete (journal-resumed points first, in index order; live
        points in completion order)."""
        while self._pending:
            job = self._pending.popleft()
            yield from self._drive(job)

    def run_sweep(self, spec: SweepSpec,
                  journal_path=None) -> SweepResult:
        """Submit one sweep and collect it to completion."""
        self.submit(spec, journal_path=journal_path)
        results: dict[int, PointResult] = {}
        for result in self.serve():
            if result.sweep == spec.name:
                results[result.index] = result
        return SweepResult(sweep=spec.name, results=results,
                           stats=self.stats_snapshot())

    def stats_snapshot(self) -> ServiceStats:
        """A stable copy of the live serving telemetry."""
        return self.stats.snapshot()

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------
    def _event(self, kind: str, worker=None, generation=None,
               indices=(), detail="") -> None:
        self.stats.events.append(SupervisionEvent(
            kind=kind, worker=worker, generation=generation,
            indices=tuple(indices), detail=detail))
        obs = self.observability
        if obs is not None:
            obs.event(f"service.{kind}", worker=worker,
                      generation=generation, indices=list(indices),
                      detail=detail)

    def _drive(self, job: _Job) -> Iterator[PointResult]:
        obs = self.observability
        if obs is None:
            yield from self._drive_impl(job)
            return
        span = obs.begin("service.sweep", sweep=job.spec.name,
                         points=job.spec.num_points,
                         shots=job.spec.shots)
        try:
            yield from self._drive_impl(job)
        finally:
            obs.end(span)
            self.stats.publish_metrics(obs.metrics)

    def _drive_impl(self, job: _Job) -> Iterator[PointResult]:
        spec = job.spec
        config = self.config
        stats = self.stats
        total = spec.num_points
        stats.points_total += total
        self._dispatch_ns.clear()

        journal = None
        completed: dict[int, PointResult] = {}
        if job.journal_path is not None:
            journal = CheckpointJournal(job.journal_path,
                                        fsync=config.journal_fsync)
            payloads = journal.load(spec)
            if journal.torn_records_dropped:
                stats.journal_torn_records += \
                    journal.torn_records_dropped
                self._event(
                    "journal_torn",
                    detail=f"dropped {journal.torn_records_dropped} "
                           f"torn/corrupt record(s)")
            for index in sorted(payloads):
                result = PointResult.from_payload(
                    spec, payloads[index], resumed=True)
                completed[index] = result
                stats.points_resumed += 1
                yield result

        pending: deque[int] = deque(index for index in range(total)
                                    if index not in completed)
        if not pending:
            if journal is not None:
                journal.close()
            stats.sweeps_completed += 1
            return

        pool = WorkerPool(spec, config.num_workers,
                          hang_sleep_s=config.hang_sleep_s)
        pool.start()
        started = time.monotonic()
        restarts = 0
        failures: dict[int, int] = {}
        graceful = False
        try:
            while len(completed) < total:
                self._check_sweep_deadline(spec, started, completed,
                                           total)
                self._dispatch(pool, pending)
                for message in self._drain_messages(pool):
                    kind = message.get("kind")
                    if kind == "point":
                        result = self._accept_point(
                            spec, message, completed, journal, pool)
                        if result is not None:
                            yield result
                    elif kind == "point_error":
                        self._handle_point_error(
                            spec, message, failures, pending, pool)
                    elif kind == "worker_error":
                        raise WorkerPoolError(
                            f"worker {message['worker']} could not "
                            f"build its experiment setup: "
                            f"{message['error']} — a setup factory "
                            f"failure is deterministic, restarting "
                            f"would loop",
                            restarts=restarts,
                            budget=config.max_restarts,
                            last_event=message["error"])
                    # worker_exit: graceful-drain ack, nothing to do
                restarts = self._supervise(pool, pending, completed,
                                           restarts)
            graceful = True
        finally:
            pool.stop(graceful=graceful,
                      timeout=config.drain_timeout_s)
            if journal is not None:
                journal.close()
        stats.sweeps_completed += 1

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, pool: WorkerPool, pending: deque) -> None:
        config = self.config
        obs = self.observability
        for handle in pool.handles:
            if not pending:
                break
            if not handle.idle or not handle.is_alive():
                continue
            indices = tuple(pending.popleft()
                            for _ in range(min(config.shard_size,
                                               len(pending))))
            chaos = self._chaos_directives(indices, handle)
            handle.dispatch(Shard(indices=indices,
                                  chaos=tuple(sorted(chaos.items()))))
            if obs is not None:
                now = obs.clock()
                for index in indices:
                    self._dispatch_ns[index] = now
                obs.event("service.dispatch",
                          worker=handle.worker_id,
                          generation=handle.generation,
                          indices=list(indices))
        if obs is not None:
            obs.metrics.set_gauge("service.queue.pending",
                                  float(len(pending)))
            obs.metrics.set_gauge(
                "service.workers.idle",
                float(sum(1 for handle in pool.handles
                          if handle.idle and handle.is_alive())))

    def _chaos_directives(self, indices, handle) -> dict[int, str]:
        plan = self.fault_plan
        if plan is None:
            return {}
        directives: dict[int, str] = {}
        for index in indices:
            plan.begin_shot(index)
            for site in PROCESS_FAULT_SITES:
                if plan.fire(site, point=index,
                             worker=handle.worker_id):
                    directives[index] = site
                    self.stats.chaos_directives.append(
                        f"{site}@point{index}")
                    self._event("chaos", worker=handle.worker_id,
                                generation=handle.generation + 0,
                                indices=(index,), detail=site)
                    break
        return directives

    # -- collection ----------------------------------------------------
    def _drain_messages(self, pool: WorkerPool) -> list[dict]:
        messages: list[dict] = []
        try:
            messages.append(pool.result_queue.get(
                timeout=self.config.poll_interval_s))
        except queue_module.Empty:
            return messages
        while True:
            try:
                messages.append(pool.result_queue.get_nowait())
            except queue_module.Empty:
                return messages

    def _accept_point(self, spec: SweepSpec, message: dict,
                      completed: dict, journal, pool: WorkerPool
                      ) -> PointResult | None:
        stats = self.stats
        obs = self.observability
        index = message["index"]
        worker_id = message["worker"]
        generation = message["generation"]
        handle = pool.handle_for(worker_id, generation)
        payload = message["payload"]
        # Worker-side telemetry rides *beside* the result and is
        # detached here: the journal stores only the replayable point
        # payload, so traces never perturb resume fingerprints.
        worker_obs = payload.pop("obs", None)
        if index in completed:
            # A re-dispatched point finished twice (or a straggler
            # from a killed generation surfaced).  Exactly-once
            # accounting: ignore the copy — but both executions must
            # agree bit for bit, or per-point determinism is broken
            # and every crash-recovery guarantee with it.
            duplicate = PointResult.from_payload(spec, payload,
                                                 worker=worker_id)
            if duplicate.counts != completed[index].counts:
                raise ExperimentIntegrityError(
                    f"point {index} produced two different results "
                    f"on re-execution — per-point determinism "
                    f"violated",
                    index=index, sweep=spec.name)
            stats.duplicate_results += 1
            self._event("duplicate_result", worker=worker_id,
                        generation=generation, indices=(index,))
            if handle is not None:
                handle.mark_progress(index)
            return None
        result = PointResult.from_payload(spec, payload,
                                          worker=worker_id)
        if journal is not None:
            # Durability before observability: the point is journaled
            # (and flushed) before anyone sees it, so a crash between
            # journal and yield re-serves it from the journal rather
            # than losing it.
            if obs is None:
                journal.append_point(payload)
            else:
                journal_start = obs.clock()
                journal.append_point(payload)
                journal_end = obs.clock()
                obs.metrics.observe("service.journal.append.time_ns",
                                    journal_end - journal_start)
                obs.tracer.record_span(
                    "service.point.journal", journal_start,
                    journal_end, tid=index + 1,
                    parent="service.point", index=index)
        completed[index] = result
        stats.points_completed += 1
        stats.interpreter_shots += result.interpreter_shots
        stats.replay_shots += result.replay_shots
        stats.frame_batched_shots += result.frame_batched
        stats.point_latency.record(result.latency_s)
        if obs is not None:
            accepted = obs.clock()
            dispatched = self._dispatch_ns.pop(index, None)
            if dispatched is not None:
                # One track (tid) per point: the dispatch-to-accept
                # span contains the ingested worker-side execution
                # spans and the journal span by time containment,
                # which is exactly the nesting Perfetto renders.
                obs.tracer.record_span(
                    "service.point", dispatched, accepted,
                    tid=index + 1, parent="service.sweep",
                    index=index, worker=worker_id,
                    engine=result.engine)
            if worker_obs is not None:
                obs.tracer.ingest_chrome_events(
                    worker_obs["chrome"], pid=0, tid=index + 1)
                obs.metrics.merge_snapshot(worker_obs["metrics"])
        if handle is not None:
            handle.mark_progress(index)
        else:
            self._event("straggler_result", worker=worker_id,
                        generation=generation, indices=(index,),
                        detail="accepted from a retired generation")
        return result

    def _handle_point_error(self, spec: SweepSpec, message: dict,
                            failures: dict, pending: deque,
                            pool: WorkerPool) -> None:
        stats = self.stats
        index = message["index"]
        failures[index] = failures.get(index, 0) + 1
        stats.points_failed += 1
        self._event("point_error", worker=message["worker"],
                    generation=message["generation"],
                    indices=(index,), detail=message["error"])
        if failures[index] >= self.config.max_point_failures:
            raise WorkerPoolError(
                f"point {index} of sweep {spec.name!r} failed "
                f"{failures[index]} times "
                f"({message['error_type']}: {message['error']}) — "
                f"giving up rather than retrying a deterministic "
                f"failure forever",
                restarts=stats.worker_restarts,
                budget=self.config.max_point_failures,
                last_event=message["error"])
        handle = pool.handle_for(message["worker"],
                                 message["generation"])
        if handle is not None:
            handle.mark_progress(index)
        pending.append(index)

    # -- supervision ---------------------------------------------------
    def _supervise(self, pool: WorkerPool, pending: deque,
                   completed: dict, restarts: int) -> int:
        config = self.config
        stats = self.stats
        for handle in pool.handles:
            reason = None
            if not handle.is_alive():
                if not handle.assignment and not pending:
                    continue  # dead but idle at the very end: harmless
                reason = "worker_death"
                stats.worker_deaths += 1
            elif handle.assignment:
                if handle.heartbeat_age() > config.heartbeat_timeout_s:
                    reason = "heartbeat_timeout"
                    stats.heartbeat_timeouts += 1
                elif (config.point_deadline_s is not None
                      and handle.progress_age() is not None
                      and handle.progress_age()
                      > config.point_deadline_s):
                    reason = "shard_deadline"
                    stats.shard_deadline_hits += 1
            if reason is None:
                continue
            handle.kill()
            unfinished = tuple(sorted(
                index for index in handle.assignment
                if index not in completed))
            self._event(reason, worker=handle.worker_id,
                        generation=handle.generation,
                        indices=unfinished,
                        detail=f"restart {restarts + 1}/"
                               f"{config.max_restarts}")
            if unfinished:
                stats.points_redispatched += len(unfinished)
                self._event("redispatch", worker=handle.worker_id,
                            generation=handle.generation,
                            indices=unfinished)
                pending.extendleft(reversed(unfinished))
            restarts += 1
            if restarts > config.max_restarts:
                raise WorkerPoolError(
                    f"worker restart budget exhausted "
                    f"({restarts - 1} restarts, budget "
                    f"{config.max_restarts}) — the workload is "
                    f"killing workers faster than supervision can "
                    f"recover",
                    restarts=restarts - 1,
                    budget=config.max_restarts,
                    last_event=reason)
            handle.spawn()
            stats.worker_restarts += 1
            self._event("worker_restart", worker=handle.worker_id,
                        generation=handle.generation)
        return restarts

    def _check_sweep_deadline(self, spec: SweepSpec, started: float,
                              completed: dict, total: int) -> None:
        deadline = self.config.sweep_deadline_s
        if deadline is None:
            return
        elapsed = time.monotonic() - started
        if elapsed <= deadline:
            return
        self.stats.sweep_deadline_hits += 1
        self._event("sweep_deadline",
                    detail=f"{len(completed)}/{total} points after "
                           f"{elapsed:.2f}s")
        raise JobDeadlineError(
            f"sweep {spec.name!r} exceeded its {deadline:.2f}s "
            f"deadline with {len(completed)}/{total} points complete "
            f"— completed points are journaled; resubmit with the "
            f"same journal to resume",
            deadline_s=deadline, elapsed_s=elapsed,
            completed_points=len(completed), total_points=total)
