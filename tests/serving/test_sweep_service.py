"""SweepService behavior: happy path, journal resume, deadlines,
admission backpressure, failure budgets, and structured telemetry."""

import pytest

from repro.core.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    ExperimentIntegrityError,
    GuardFault,
    InvalidRequestError,
    JobDeadlineError,
    WorkerPoolError,
)
from repro.serving import (
    CheckpointJournal,
    ServiceConfig,
    SweepService,
    SweepSpec,
    derive_point_seed,
)

from serving_workload import (
    build_failing_program,
    build_program,
    build_setup,
    make_spec,
    run_points_inline,
)

FAST = dict(num_workers=2, shard_size=2, poll_interval_s=0.01,
            drain_timeout_s=10.0)


class TestSweepSpec:
    def test_point_seeds_are_deterministic_and_distinct(self):
        spec = make_spec("seeds", num_points=6)
        seeds = [point.seed for point in spec.points()]
        assert seeds == [derive_point_seed(spec.seed, index)
                         for index in range(6)]
        assert len(set(seeds)) == 6

    def test_fingerprint_covers_points_shots_seed(self):
        base = make_spec("fp", num_points=3, shots=10, seed=1)
        assert base.fingerprint() == make_spec(
            "fp", num_points=3, shots=10, seed=1).fingerprint()
        for other in (make_spec("fp", num_points=2, shots=10, seed=1),
                      make_spec("fp", num_points=3, shots=11, seed=1),
                      make_spec("fp", num_points=3, shots=10, seed=2),
                      make_spec("fp2", num_points=3, shots=10,
                                seed=1)):
            assert other.fingerprint() != base.fingerprint()

    def test_fingerprint_ignores_factory_identity(self):
        with_a = make_spec("fp", program_factory=build_program)
        with_b = make_spec("fp",
                           program_factory=build_failing_program)
        assert with_a.fingerprint() == with_b.fingerprint()

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(InvalidRequestError):
            make_spec("bad", shots=0)
        with pytest.raises(InvalidRequestError):
            SweepSpec.from_params(name="empty", shots=1, seed=0,
                                  params=[],
                                  setup_factory=build_setup,
                                  program_factory=build_program)
        with pytest.raises(InvalidRequestError):
            make_spec("bounds", num_points=2).point(2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(shard_size=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(heartbeat_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_pending_sweeps=0)


class TestHappyPath:
    def test_sweep_matches_inline_execution(self, inline_setup):
        spec = make_spec("happy", num_points=4, shots=12)
        expected = run_points_inline(inline_setup, spec)
        service = SweepService(ServiceConfig(**FAST))
        result = service.run_sweep(spec)
        assert result.counts_by_index() == expected
        stats = result.stats
        assert stats.points_completed == 4
        assert stats.points_resumed == 0
        assert stats.points_total == 4
        assert stats.sweeps_completed == 1
        assert stats.worker_deaths == 0
        assert stats.worker_restarts == 0
        # Engine telemetry surfaces from inside the workers.
        assert stats.interpreter_shots + stats.replay_shots == 4 * 12
        workers = {r.worker for r in result.results.values()}
        assert workers <= {0, 1}

    def test_results_carry_engine_telemetry(self):
        spec = make_spec("telemetry", num_points=2, shots=8)
        result = SweepService(ServiceConfig(**FAST)).run_sweep(spec)
        for point in result.results.values():
            assert point.engine in ("interpreter", "replay")
            assert point.plant_backend in ("dense", "stabilizer")
            assert (point.interpreter_shots + point.replay_shots
                    == 8)
            assert point.latency_s > 0.0
            assert not point.resumed

    def test_stats_snapshot_is_isolated(self):
        spec = make_spec("snapshot", num_points=2, shots=6)
        service = SweepService(ServiceConfig(**FAST))
        service.run_sweep(spec)
        snapshot = service.stats_snapshot()
        snapshot.events.append("poison")
        snapshot.chaos_directives.append("poison")
        assert "poison" not in service.stats.events
        assert "poison" not in service.stats.chaos_directives


class TestJournalResume:
    def test_completed_journal_serves_without_workers(self,
                                                     tmp_path,
                                                     inline_setup):
        spec = make_spec("resume-full", num_points=3, shots=10)
        path = tmp_path / "sweep.jsonl"
        expected = run_points_inline(inline_setup, spec)
        first = SweepService(ServiceConfig(**FAST)).run_sweep(
            spec, journal_path=path)
        assert first.counts_by_index() == expected

        second = SweepService(ServiceConfig(**FAST)).run_sweep(
            spec, journal_path=path)
        assert second.counts_by_index() == expected
        assert all(r.resumed for r in second.results.values())
        stats = second.stats
        assert stats.points_resumed == 3
        assert stats.points_completed == 0
        assert stats.sweeps_completed == 1

    def test_partial_journal_resumes_only_missing_points(
            self, tmp_path, inline_setup):
        spec = make_spec("resume-part", num_points=4, shots=10)
        path = tmp_path / "sweep.jsonl"
        expected = run_points_inline(inline_setup, spec)
        SweepService(ServiceConfig(**FAST)).run_sweep(
            spec, journal_path=path)

        # Keep header + 2 point records and tear the third mid-write,
        # as a crash would.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3]) + lines[3][:20])

        service = SweepService(ServiceConfig(**FAST))
        result = service.run_sweep(spec, journal_path=path)
        assert result.counts_by_index() == expected
        stats = result.stats
        assert stats.points_resumed == 2
        assert stats.points_completed == 2
        assert stats.journal_torn_records == 1
        assert any(event.kind == "journal_torn"
                   for event in stats.events)
        # Exactly-once accounting: resumed + executed == total.
        assert (stats.points_resumed + stats.points_completed
                == spec.num_points)

    def test_journal_for_other_sweep_is_refused(self, tmp_path):
        spec = make_spec("journal-a", num_points=2, seed=1)
        other = make_spec("journal-a", num_points=2, seed=2)
        path = tmp_path / "sweep.jsonl"
        with CheckpointJournal(path) as journal:
            journal.load(spec)
        service = SweepService(ServiceConfig(**FAST))
        with pytest.raises(ExperimentIntegrityError,
                           match="fingerprint"):
            service.run_sweep(other, journal_path=path)


class TestAdmissionAndDeadlines:
    def test_admission_rejects_past_bound(self):
        service = SweepService(ServiceConfig(max_pending_sweeps=1,
                                             **FAST))
        service.submit(make_spec("adm-0", num_points=2))
        with pytest.raises(AdmissionRejectedError) as info:
            service.submit(make_spec("adm-1", num_points=2))
        assert info.value.context["queue"] == "sweep-admission"
        assert info.value.context["depth"] == 1
        assert service.stats.admission_rejections == 1
        # The rejected sweep never entered the queue; the first still
        # serves to completion.
        results = list(service.serve())
        assert {r.sweep for r in results} == {"adm-0"}

    def test_sweep_deadline_raises_structured_guard_fault(self):
        service = SweepService(ServiceConfig(sweep_deadline_s=0.0,
                                             **FAST))
        with pytest.raises(JobDeadlineError) as info:
            service.run_sweep(make_spec("deadline", num_points=2))
        context = info.value.context
        assert context["deadline_s"] == 0.0
        assert context["completed_points"] == 0
        assert context["total_points"] == 2
        assert isinstance(info.value, GuardFault)
        assert service.stats.sweep_deadline_hits == 1
        assert any(event.kind == "sweep_deadline"
                   for event in service.stats.events)

    def test_deadline_hit_leaves_journal_resumable(self, tmp_path,
                                                   inline_setup):
        spec = make_spec("deadline-resume", num_points=3, shots=10)
        path = tmp_path / "sweep.jsonl"
        expected = run_points_inline(inline_setup, spec)
        strict = SweepService(ServiceConfig(sweep_deadline_s=0.0,
                                            **FAST))
        with pytest.raises(JobDeadlineError):
            strict.run_sweep(spec, journal_path=path)
        # Whatever did not complete in time is simply re-run; the
        # journal (header at minimum) is intact and the final counts
        # are bit-identical.
        relaxed = SweepService(ServiceConfig(**FAST))
        result = relaxed.run_sweep(spec, journal_path=path)
        assert result.counts_by_index() == expected

    def test_deterministic_point_failure_exhausts_budget(self):
        poisoned = SweepSpec.from_params(
            name="poisoned", shots=10, seed=7,
            params=[{"step": -1}, {"step": 1}, {"step": 2}],
            setup_factory=build_setup,
            program_factory=build_failing_program)
        service = SweepService(ServiceConfig(max_point_failures=2,
                                             **FAST))
        with pytest.raises(WorkerPoolError, match="giving up"):
            service.run_sweep(poisoned)
        assert service.stats.points_failed >= 2
        assert any(event.kind == "point_error"
                   for event in service.stats.events)
