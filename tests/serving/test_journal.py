"""Checkpoint-journal integrity and crash-recovery properties.

The property test is the heart of the PR's durability claim: resuming
from *any* byte-truncation prefix of the journal — including torn
mid-record writes and trailing garbage — must reproduce the
uninterrupted sweep's :class:`ShotCounts` bit for bit.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import ExperimentIntegrityError
from repro.serving import CheckpointJournal, record_digest
from repro.serving.sweep import execution_payload
from repro.uarch.trace import ShotCounts

from serving_workload import make_spec, run_points_inline
from repro.serving import execute_point


@pytest.fixture(scope="session")
def reference_journal(inline_setup, tmp_path_factory):
    """A complete journal for a 4-point sweep, plus the expected
    counts it encodes (computed in-process, no worker pool)."""
    spec = make_spec("journal-prop", num_points=4, shots=12, seed=3)
    path = tmp_path_factory.mktemp("journal") / "reference.jsonl"
    expected = {}
    with CheckpointJournal(path) as journal:
        journal.load(spec)
        for index in range(spec.num_points):
            point = spec.point(index)
            counts, stats, latency_s = execute_point(
                inline_setup, spec, point)
            journal.append_point(execution_payload(
                spec, point, counts, stats, latency_s))
            expected[index] = counts
    return spec, path.read_bytes(), expected


class TestRecordDigest:
    def test_digest_ignores_its_own_field(self):
        record = {"kind": "point", "index": 3, "seed": 9}
        digest = record_digest(record)
        assert record_digest({**record, "digest": digest}) == digest

    def test_digest_changes_with_content(self):
        assert (record_digest({"index": 1})
                != record_digest({"index": 2}))


class TestJournalBasics:
    def test_fresh_journal_writes_header(self, tmp_path):
        spec = make_spec("fresh", num_points=2)
        path = tmp_path / "fresh.jsonl"
        with CheckpointJournal(path) as journal:
            assert journal.load(spec) == {}
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["fingerprint"] == spec.fingerprint()
        assert header["digest"] == record_digest(header)

    def test_append_then_reload_roundtrips(self, tmp_path,
                                           inline_setup):
        spec = make_spec("roundtrip", num_points=2)
        path = tmp_path / "roundtrip.jsonl"
        counts = run_points_inline(inline_setup, spec, [0])
        point = spec.point(0)
        payload = {"index": 0, "seed": point.seed,
                   "counts": counts[0].as_dict(), "engine": "replay",
                   "plant_backend": "dense", "interpreter_shots": 3,
                   "replay_shots": 9, "latency_s": 0.01}
        with CheckpointJournal(path) as journal:
            journal.load(spec)
            journal.append_point(payload)
        with CheckpointJournal(path) as journal:
            completed = journal.load(spec)
        assert set(completed) == {0}
        assert (ShotCounts.from_dict(completed[0]["counts"])
                == counts[0])

    def test_agreeing_duplicates_are_ignored(self, tmp_path,
                                             inline_setup):
        spec = make_spec("dupes", num_points=2)
        path = tmp_path / "dupes.jsonl"
        counts = run_points_inline(inline_setup, spec, [0])
        payload = {"index": 0, "seed": spec.point(0).seed,
                   "counts": counts[0].as_dict()}
        with CheckpointJournal(path) as journal:
            journal.load(spec)
            journal.append_point(payload)
            journal.append_point(payload)
        with CheckpointJournal(path) as journal:
            assert set(journal.load(spec)) == {0}
            assert journal.duplicates_ignored == 1

    def test_conflicting_duplicates_refuse_to_load(self, tmp_path,
                                                   inline_setup):
        spec = make_spec("conflict", num_points=2)
        path = tmp_path / "conflict.jsonl"
        counts = run_points_inline(inline_setup, spec, [0])
        good = counts[0].as_dict()
        bad = dict(good)
        bad["shots"] = good["shots"] + 1
        with CheckpointJournal(path) as journal:
            journal.load(spec)
            journal.append_point({"index": 0,
                                  "seed": spec.point(0).seed,
                                  "counts": good})
            journal.append_point({"index": 0,
                                  "seed": spec.point(0).seed,
                                  "counts": bad})
        with pytest.raises(ExperimentIntegrityError,
                           match="conflicting"):
            CheckpointJournal(path).load(spec)

    def test_fingerprint_mismatch_refuses_to_load(self, tmp_path):
        spec = make_spec("mine", num_points=2, seed=1)
        other = make_spec("mine", num_points=2, seed=2)
        path = tmp_path / "mine.jsonl"
        with CheckpointJournal(path) as journal:
            journal.load(spec)
        with pytest.raises(ExperimentIntegrityError,
                           match="fingerprint") as info:
            CheckpointJournal(path).load(other)
        assert info.value.context["sweep"] == "mine"

    def test_wrong_seed_refuses_to_load(self, tmp_path):
        spec = make_spec("seeded", num_points=2)
        path = tmp_path / "seeded.jsonl"
        with CheckpointJournal(path) as journal:
            journal.load(spec)
            journal.append_point({"index": 0, "seed": 12345,
                                  "counts": {}})
        with pytest.raises(ExperimentIntegrityError, match="seed"):
            CheckpointJournal(path).load(spec)

    def test_out_of_range_index_refuses_to_load(self, tmp_path):
        spec = make_spec("bounds", num_points=2)
        path = tmp_path / "bounds.jsonl"
        with CheckpointJournal(path) as journal:
            journal.load(spec)
            journal.append_point({"index": 99,
                                  "seed": 0, "counts": {}})
        with pytest.raises(ExperimentIntegrityError, match="outside"):
            CheckpointJournal(path).load(spec)

    def test_append_before_load_is_an_error(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "closed.jsonl")
        with pytest.raises(ExperimentIntegrityError, match="load"):
            journal.append_point({"index": 0})

    def test_bitflip_in_record_drops_suffix(self, tmp_path,
                                            reference_journal):
        spec, data, expected = reference_journal
        lines = data.splitlines(keepends=True)
        # Flip one byte inside the point-1 record (header is line 0):
        # it and both records after it become untrusted; point 0
        # survives.
        corrupt = bytearray(lines[2])
        corrupt[len(corrupt) // 2] ^= 0x01
        path = tmp_path / "bitflip.jsonl"
        path.write_bytes(b"".join(lines[:2]) + bytes(corrupt)
                         + b"".join(lines[3:]))
        journal = CheckpointJournal(path)
        completed = journal.load(spec)
        journal.close()
        assert set(completed) == {0}
        assert journal.torn_records_dropped == 3


class TestTruncationResumeProperty:
    """ISSUE 7 satellite: resume from ANY truncation prefix of the
    journal — torn mid-record writes included — yields final counts
    identical to the uninterrupted sweep."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_any_prefix_resumes_bit_identical(self, data, tmp_path,
                                              reference_journal,
                                              inline_setup):
        spec, journal_bytes, expected = reference_journal
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(journal_bytes)),
                        label="truncation byte offset")
        garbage = data.draw(st.binary(max_size=24),
                            label="trailing garbage")
        path = tmp_path / f"truncated-{cut}.jsonl"
        path.write_bytes(journal_bytes[:cut] + garbage)

        journal = CheckpointJournal(path)
        completed = journal.load(spec)

        # Every record the loader accepted is bit-identical to the
        # uninterrupted run's counts for that point.
        for index, payload in completed.items():
            assert (ShotCounts.from_dict(payload["counts"])
                    == expected[index])

        # Re-executing exactly the missing points (what the service
        # does on resume) reproduces the full sweep bit for bit, and
        # the re-opened journal accepts the appends — the torn suffix
        # was truncated away, not left to shadow them.
        remaining = [index for index in range(spec.num_points)
                     if index not in completed]
        recomputed = run_points_inline(inline_setup, spec, remaining)
        for index in remaining:
            point = spec.point(index)
            journal.append_point({"index": index, "seed": point.seed,
                                  "counts": recomputed[index].as_dict()})
        journal.close()

        final = dict(completed)
        with CheckpointJournal(path) as reopened:
            reloaded = reopened.load(spec)
        assert set(reloaded) == set(range(spec.num_points))
        for index in range(spec.num_points):
            merged = (recomputed[index] if index in recomputed
                      else ShotCounts.from_dict(
                          final[index]["counts"]))
            assert merged == expected[index]
            assert (ShotCounts.from_dict(reloaded[index]["counts"])
                    == expected[index])

    def test_full_journal_resumes_everything(self, tmp_path,
                                             reference_journal):
        spec, journal_bytes, expected = reference_journal
        path = tmp_path / "full.jsonl"
        path.write_bytes(journal_bytes)
        with CheckpointJournal(path) as journal:
            completed = journal.load(spec)
        assert set(completed) == set(range(spec.num_points))
