"""Chaos-recovery identity: the acceptance gate of the serving layer.

With process-level faults armed — workers killed mid-shard, hung past
the heartbeat watchdog, results dropped in transit — a sharded sweep
must complete with :class:`ShotCounts` bit-identical to the fault-free
run, and a kill-9-then-resume-from-journal sweep must equal the
uninterrupted one.  Every supervision decision must be visible in
structured telemetry (:class:`ServiceStats.events`), never only in
logs.

The nightly CI job widens the sweep via environment knobs:

``EQASM_SERVICE_POINTS``  sweep points (default 6, max 16)
``EQASM_SERVICE_SHARD``   points per dispatched shard (default 2)
``EQASM_SERVICE_FAULTS``  chaos budget — fault specs cycled over the
                          three process sites (default 3)
"""

import os

import pytest

from repro.serving import ServiceConfig, SweepService
from repro.uarch.faults import PROCESS_FAULT_SITES, FaultPlan, FaultSpec

from serving_workload import MAX_STEPS, make_spec, run_points_inline

NUM_POINTS = min(int(os.environ.get("EQASM_SERVICE_POINTS", "6")),
                 MAX_STEPS)
SHARD_SIZE = int(os.environ.get("EQASM_SERVICE_SHARD", "2"))
# One fault per point at most: each spec pins a distinct point, so
# every planned fault actually fires.
NUM_FAULTS = min(int(os.environ.get("EQASM_SERVICE_FAULTS", "3")),
                 NUM_POINTS)
SHOTS = 12


def chaos_config(**overrides) -> ServiceConfig:
    """Tight supervision so injected hangs recover in ~a second."""
    base = dict(num_workers=2, shard_size=SHARD_SIZE,
                poll_interval_s=0.01, heartbeat_timeout_s=1.0,
                point_deadline_s=1.0, hang_sleep_s=30.0,
                max_restarts=4 + 2 * NUM_FAULTS,
                drain_timeout_s=10.0)
    base.update(overrides)
    return ServiceConfig(**base)


def chaos_plan(seed: int = 0) -> FaultPlan:
    """``NUM_FAULTS`` faults cycled over the three process sites, each
    pinned to a distinct sweep point."""
    specs = []
    for fault in range(NUM_FAULTS):
        site = PROCESS_FAULT_SITES[fault % len(PROCESS_FAULT_SITES)]
        point = (fault * NUM_POINTS) // max(NUM_FAULTS, 1)
        specs.append(FaultSpec(site, shot=point))
    return FaultPlan(specs, seed=seed)


@pytest.fixture(scope="module")
def reference(inline_setup):
    """Fault-free counts for the chaos sweep, computed in-process."""
    spec = make_spec("chaos", num_points=NUM_POINTS, shots=SHOTS,
                     seed=23)
    return spec, run_points_inline(inline_setup, spec)


class TestChaosIdentity:
    def test_crash_hang_drop_recovery_is_bit_identical(self,
                                                       reference):
        spec, expected = reference
        service = SweepService(chaos_config(),
                               fault_plan=chaos_plan())
        result = service.run_sweep(spec)

        assert result.counts_by_index() == expected
        stats = result.stats
        # Every planned fault was actually injected...
        assert len(stats.chaos_directives) == NUM_FAULTS
        sites = {directive.split("@")[0]
                 for directive in stats.chaos_directives}
        assert sites == set(PROCESS_FAULT_SITES[:NUM_FAULTS])
        # ...and supervision recovered from each: a crash shows up as
        # a worker death, a hang or a dropped result as a watchdog
        # kill (which of the two watchdogs fires first is timing).
        if "worker_crash" in sites:
            assert stats.worker_deaths >= 1
        if {"worker_hang", "result_drop"} & sites:
            assert (stats.heartbeat_timeouts
                    + stats.shard_deadline_hits) >= 1
        assert stats.worker_restarts >= 1
        assert stats.points_redispatched >= 1
        # Exactly-once accounting survives the chaos.
        assert stats.points_completed == NUM_POINTS
        assert stats.points_resumed == 0

    def test_supervision_is_structured_telemetry(self, reference):
        spec, expected = reference
        service = SweepService(chaos_config(),
                               fault_plan=chaos_plan(seed=1))
        result = service.run_sweep(spec)
        assert result.counts_by_index() == expected

        events = result.stats.events
        kinds = {event.kind for event in events}
        assert "chaos" in kinds
        assert "redispatch" in kinds
        assert "worker_restart" in kinds
        assert kinds & {"worker_death", "heartbeat_timeout",
                        "shard_deadline"}
        for event in events:
            if event.kind == "redispatch":
                # Re-dispatches name the exact un-journaled points.
                assert event.indices
                assert all(0 <= index < NUM_POINTS
                           for index in event.indices)
            if event.kind in ("worker_death", "heartbeat_timeout",
                              "shard_deadline", "worker_restart"):
                assert event.worker is not None
            assert event.describe()

    def test_chaos_with_journal_still_identical(self, tmp_path,
                                                reference):
        spec, expected = reference
        path = tmp_path / "chaos.jsonl"
        service = SweepService(chaos_config(),
                               fault_plan=chaos_plan(seed=2))
        result = service.run_sweep(spec, journal_path=path)
        assert result.counts_by_index() == expected
        # The journal now holds the full sweep: a resume-only service
        # serves every point without starting a single worker.
        resumed = SweepService(chaos_config()).run_sweep(
            spec, journal_path=path)
        assert resumed.counts_by_index() == expected
        assert resumed.stats.points_resumed == NUM_POINTS


class TestKillNineResume:
    def test_abandoned_service_resumes_bit_identical(self, tmp_path,
                                                     reference):
        """Simulate the service process dying mid-sweep: take a few
        results from the stream, then drop the generator — its worker
        processes are SIGKILLed with shards in flight.  A fresh
        service resuming from the journal must reproduce the
        uninterrupted sweep bit for bit, serving each point exactly
        once."""
        spec, expected = reference
        path = tmp_path / "killed.jsonl"
        service = SweepService(chaos_config())
        service.submit(spec, journal_path=path)
        stream = service.serve()
        observed = [next(stream) for _ in range(2)]
        stream.close()  # the "kill -9": workers die un-drained

        for result in observed:
            assert result.counts == expected[result.index]

        fresh = SweepService(chaos_config())
        recovered = fresh.run_sweep(spec, journal_path=path)
        assert recovered.counts_by_index() == expected
        stats = fresh.stats
        # Durable before observable: everything the first service
        # yielded had already hit the journal, so it resumes rather
        # than recomputes.
        assert stats.points_resumed >= len(observed)
        assert (stats.points_resumed + stats.points_completed
                == NUM_POINTS)
        resumed_indices = {result.index for result in observed}
        for index, result in recovered.results.items():
            if index in resumed_indices:
                assert result.resumed

    def test_kill_nine_under_chaos_then_resume(self, tmp_path,
                                               reference):
        """The compound case: chaos faults armed AND the service
        abandoned mid-recovery; the journal still carries the sweep to
        a bit-identical finish."""
        spec, expected = reference
        path = tmp_path / "killed-chaos.jsonl"
        service = SweepService(chaos_config(),
                               fault_plan=chaos_plan(seed=3))
        service.submit(spec, journal_path=path)
        stream = service.serve()
        next(stream)
        stream.close()

        fresh = SweepService(chaos_config())
        recovered = fresh.run_sweep(spec, journal_path=path)
        assert recovered.counts_by_index() == expected
        assert (fresh.stats.points_resumed
                + fresh.stats.points_completed) == NUM_POINTS
