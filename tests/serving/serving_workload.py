"""Shared workload for the serving tests (and the service bench).

The sweep factories must survive a ``fork`` into worker processes, so
they live at module level here.  The workload is the Section 5 Rabi
amplitude scan — cheap per point, distinct counts per point, and it
exercises the replay engine inside every worker.
"""

import math

from repro.core.isa import two_qubit_instantiation
from repro.core.operations import (
    add_rabi_amplitude_operations,
    default_operation_set,
)
from repro.experiments.runner import ExperimentSetup
from repro.quantum.noise import NoiseModel
from repro.serving import SweepSpec, execute_point
from repro.workloads.rabi import rabi_step_circuit

#: Upper bound on the X_AMP_<i> steps registered in the setup; sweeps
#: may use any subset of steps below this.
MAX_STEPS = 16


def build_setup() -> ExperimentSetup:
    """The per-worker experiment setup (forked, never pickled)."""
    operations = default_operation_set()
    add_rabi_amplitude_operations(operations, MAX_STEPS,
                                  max_angle=2.0 * math.pi)
    isa = two_qubit_instantiation(operations)
    return ExperimentSetup.create(isa=isa, noise=NoiseModel(), seed=0)


def build_program(setup, params):
    """One Rabi point: X_AMP_<step> then measure."""
    return setup.compile_circuit(
        rabi_step_circuit(params["step"], qubit=2))


def build_failing_program(setup, params):
    """A program factory with one deterministically poisoned point."""
    if params["step"] < 0:
        raise ValueError(f"poisoned point (step {params['step']})")
    return build_program(setup, params)


def make_spec(name: str, num_points: int = 4, shots: int = 15,
              seed: int = 7,
              program_factory=build_program) -> SweepSpec:
    assert num_points <= MAX_STEPS
    return SweepSpec.from_params(
        name=name, shots=shots, seed=seed,
        params=[{"step": step} for step in range(num_points)],
        setup_factory=build_setup,
        program_factory=program_factory)


def run_points_inline(setup, spec, indices=None):
    """Execute sweep points in-process (no worker pool) — the
    reference a crash-recovered distributed run must match bit for
    bit."""
    if indices is None:
        indices = range(spec.num_points)
    return {index: execute_point(setup, spec, spec.point(index))[0]
            for index in indices}
