"""Session fixtures for the serving tests."""

import pytest

from serving_workload import build_setup


@pytest.fixture(scope="session")
def inline_setup():
    """One in-process setup, reused across tests: ``execute_point``
    resets all cross-point state, so sharing it is exactly the
    per-point purity contract under test."""
    return build_setup()
