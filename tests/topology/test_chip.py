"""Tests for the quantum chip topology substrate."""

import pytest

from repro.core.errors import TopologyError
from repro.topology import (
    QuantumChipTopology,
    QubitPair,
    fully_connected_ion_trap,
    get_chip,
    ibm_qx2,
    linear_chain,
    surface7,
    two_qubit_chip,
)


class TestQubitPair:
    def test_as_tuple(self):
        pair = QubitPair(address=3, source=1, target=4)
        assert pair.as_tuple() == (1, 4)

    def test_str(self):
        assert str(QubitPair(address=0, source=2, target=0)) == "(2, 0)"


class TestTopologyValidation:
    def test_requires_qubits(self):
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="empty", qubits=(), pairs=())

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="dup", qubits=(0, 0), pairs=())

    def test_rejects_duplicate_pair_address(self):
        pairs = (QubitPair(0, 0, 1), QubitPair(0, 1, 0))
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="dup", qubits=(0, 1), pairs=pairs)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="loop", qubits=(0, 1),
                                pairs=(QubitPair(0, 1, 1),))

    def test_rejects_unknown_qubit_in_pair(self):
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="bad", qubits=(0, 1),
                                pairs=(QubitPair(0, 0, 7),))

    def test_rejects_duplicate_directed_edge(self):
        pairs = (QubitPair(0, 0, 1), QubitPair(1, 0, 1))
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="dup-edge", qubits=(0, 1), pairs=pairs)

    def test_rejects_feedline_with_unknown_qubit(self):
        with pytest.raises(TopologyError):
            QuantumChipTopology(name="bad-fl", qubits=(0,), pairs=(),
                                feedlines={0: (5,)})


class TestSurface7:
    """The Fig. 6 seven-qubit chip."""

    def setup_method(self):
        self.chip = surface7()

    def test_counts(self):
        assert self.chip.num_qubits == 7
        assert self.chip.num_pairs == 16

    def test_mask_widths_match_fig8(self):
        # Fig. 8: 7-bit qubit mask, 16-bit pair mask.
        assert self.chip.qubit_mask_width == 7
        assert self.chip.pair_mask_width == 16

    def test_pair_zero_is_2_to_0(self):
        # Section 3.3.1: "allowed qubit pair 0 has qubit 2 as the source
        # qubit and qubit 0 as the target qubit".
        pair = self.chip.pair_by_address(0)
        assert pair.source == 2
        assert pair.target == 0

    def test_qubit0_edges_match_opsel_example(self):
        # Section 4.3: qubit 0 is connected to edges 0, 1, 8 and 9;
        # edges 0 and 9 make it the target, 1 and 8 the source.
        touching = {p.address for p in self.chip.edges_touching(0)}
        assert touching == {0, 1, 8, 9}
        assert self.chip.pair_by_address(0).target == 0
        assert self.chip.pair_by_address(9).target == 0
        assert self.chip.pair_by_address(1).source == 0
        assert self.chip.pair_by_address(8).source == 0

    def test_every_edge_has_reverse(self):
        for pair in self.chip.pairs:
            assert self.chip.is_allowed_pair(pair.target, pair.source)

    def test_feedlines_match_fig6(self):
        assert self.chip.feedlines[0] == (0, 2, 3, 5, 6)
        assert self.chip.feedlines[1] == (1, 4)
        assert self.chip.feedline_of(4) == 1
        assert self.chip.feedline_of(3) == 0

    def test_graph_roundtrip(self):
        graph = self.chip.to_graph()
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 16
        assert graph.edges[2, 0]["address"] == 0

    def test_neighbours(self):
        assert self.chip.neighbours(0) == (2, 3)
        assert self.chip.neighbours(3) == (0, 1, 5, 6)

    def test_pair_address_lookup(self):
        assert self.chip.pair_address(2, 0) == 0
        assert self.chip.pair_address(0, 2) == 8

    def test_pair_address_rejects_non_edges(self):
        with pytest.raises(TopologyError):
            self.chip.pair_address(0, 6)

    def test_pair_by_address_rejects_unknown(self):
        with pytest.raises(TopologyError):
            self.chip.pair_by_address(99)


class TestPairMaskValidation:
    def test_disjoint_mask_accepted(self):
        chip = surface7()
        # Edge 0 = (2, 0); edge 3 = (1, 4): disjoint qubits.
        chip.validate_pair_mask((1 << 0) | (1 << 3))

    def test_sharing_mask_rejected(self):
        chip = surface7()
        # Edges 0 (2->0) and 1 (0->3) share qubit 0 (paper's example of
        # an invalid T register value).
        with pytest.raises(TopologyError):
            chip.validate_pair_mask((1 << 0) | (1 << 1))

    def test_edge_and_its_reverse_rejected(self):
        chip = surface7()
        with pytest.raises(TopologyError):
            chip.validate_pair_mask((1 << 0) | (1 << 8))


class TestOtherChips:
    def test_two_qubit_chip(self):
        chip = two_qubit_chip()
        assert chip.qubits == (0, 2)
        assert chip.num_pairs == 2
        assert chip.is_allowed_pair(0, 2)
        assert chip.is_allowed_pair(2, 0)
        assert chip.feedline_of(0) == 0 and chip.feedline_of(2) == 0

    def test_ibm_qx2_has_six_pairs(self):
        # Section 3.3.2: "the IBM QX2 ... has only six allowed qubit
        # pairs", so a 6-bit mask suffices.
        chip = ibm_qx2()
        assert chip.num_qubits == 5
        assert chip.num_pairs == 6
        assert chip.pair_mask_width == 6

    def test_ion_trap_has_twenty_pairs(self):
        # Section 3.3.2: fully connected 5-qubit processor => 20 pairs.
        chip = fully_connected_ion_trap()
        assert chip.num_qubits == 5
        assert chip.num_pairs == 20

    def test_linear_chain(self):
        chip = linear_chain(8)
        assert chip.num_qubits == 8
        assert chip.num_pairs == 14
        assert chip.is_allowed_pair(3, 4)
        assert chip.is_allowed_pair(4, 3)
        assert not chip.is_allowed_pair(0, 2)

    def test_get_chip(self):
        assert get_chip("surface-7").name == "surface-7"
        with pytest.raises(KeyError):
            get_chip("missing-chip")
