"""Public-API surface tests: exports resolve, __all__ is consistent,
and the README quickstart works as written."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.topology",
    "repro.quantum",
    "repro.uarch",
    "repro.compiler",
    "repro.workloads",
    "repro.experiments",
    "repro.obs",
    "repro.serving",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", None)
        assert exported is not None or package == "repro.experiments"
        for name in exported or []:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted_unique(self, package):
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert len(exported) == len(set(exported)), \
            f"{package}.__all__ has duplicates"

    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_assembly_quickstart(self):
        from repro import ExperimentSetup

        setup = ExperimentSetup.create(seed=42)
        assembled = setup.assemble_text("""
            SMIS S2, {2}
            QWAIT 10000
            X90 S2
            MEASZ S2
            QWAIT 50
            STOP
        """)
        traces = setup.run(assembled, shots=100)
        fraction = sum(t.last_result(2) for t in traces) / 100
        assert 0.3 < fraction < 0.7

    def test_circuit_quickstart(self):
        from repro import ExperimentSetup
        from repro.compiler import Circuit

        setup = ExperimentSetup.create(seed=1)
        circuit = Circuit("bell", 3).add("Y90", 0).add("CZ", 0, 2) \
            .add("MEASZ", 0)
        traces = setup.run_circuit(circuit, shots=20)
        assert all(t.last_result(0) in (0, 1) for t in traces)


class TestPaperListingsGolden:
    """The paper's exact listings assemble on the right instantiations."""

    def test_section_3_3_3_examples(self):
        # The paper's Section 3.3.3 listings are written against a
        # generic topology; pair (2, 4) is not an edge of the Fig. 6
        # chip, so the two-qubit example uses the chip-legal disjoint
        # pairs (1, 3) and (4, 6) instead.
        from repro import Assembler, seven_qubit_instantiation
        assembler = Assembler(seven_qubit_instantiation())
        assembler.assemble_text("SMIS S7, {0, 1}\nY S7")
        assembler.assemble_text("SMIT T3, {(1, 3), (4, 6)}\nCNOT T3")

    def test_section_3_1_3_timing_example(self):
        # The worked example uses QWAITR; runs on the machine with
        # R0 = 1 as the listing's LDI sets it.
        import numpy as np
        from repro import Assembler, NoiseModel, QuMAv2, QuantumPlant, \
            seven_qubit_instantiation
        isa = seven_qubit_instantiation()
        assembled = Assembler(isa).assemble_text("""
        SMIS S0, {0}
        LDI R0, 1
        X S0
        Y S0
        QWAITR R0
        0, X S0
        QWAIT 0
        1, Y S0
        STOP
        """)
        plant = QuantumPlant(isa.topology, noise=NoiseModel.noiseless(),
                             rng=np.random.default_rng(0))
        machine = QuMAv2(isa, plant)
        machine.load(assembled)
        machine.run_shot()
        starts = [op.start_ns for op in plant.operations_log]
        # Four back-to-back operations, 20 ns apart.
        deltas = [b - a for a, b in zip(starts, starts[1:])]
        assert deltas == [20.0, 20.0, 20.0]

    def test_fig8_smis_worked_encoding(self):
        # SMIS S7, {0, 2}: Sd=7 at bits 24..20, mask 0b101 in the low
        # 7 bits, opcode in bits 30..25, top bit clear.
        from repro import Assembler, seven_qubit_instantiation
        assembled = Assembler(seven_qubit_instantiation()).assemble_text(
            "SMIS S7, {0, 2}")
        word = assembled.words[0]
        assert (word >> 31) == 0
        assert (word >> 20) & 0x1F == 7
        assert word & 0x7F == 0b0000101
