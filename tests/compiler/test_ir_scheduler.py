"""Tests for the circuit IR and the schedulers."""

import pytest

from repro.compiler import (
    Circuit,
    CircuitOp,
    schedule_asap,
    schedule_serial,
    schedule_with_interval,
)
from repro.core.errors import AssemblyError
from repro.core.operations import default_operation_set


@pytest.fixture(scope="module")
def ops():
    return default_operation_set()


class TestCircuitIR:
    def test_add_and_iterate(self):
        circuit = Circuit("t", 2).add("X", 0).add("CZ", 0, 1)
        assert len(circuit) == 2
        assert [str(op) for op in circuit] == ["X q0", "CZ q0, q1"]

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(AssemblyError):
            Circuit("t", 2).add("X", 5)

    def test_rejects_duplicate_operand(self):
        with pytest.raises(AssemblyError):
            CircuitOp("CZ", (1, 1))

    def test_rejects_three_qubits(self):
        with pytest.raises(AssemblyError):
            CircuitOp("CCX", (0, 1, 2))

    def test_two_qubit_fraction(self):
        circuit = Circuit("t", 2).add("X", 0).add("CZ", 0, 1).add("Y", 1)
        assert circuit.two_qubit_fraction() == pytest.approx(1 / 3)

    def test_empty_fraction_is_zero(self):
        assert Circuit("t", 1).two_qubit_fraction() == 0.0

    def test_used_qubits(self):
        circuit = Circuit("t", 5).add("X", 3).add("CZ", 0, 1)
        assert circuit.used_qubits() == (0, 1, 3)

    def test_extend(self):
        a = Circuit("a", 2).add("X", 0)
        b = Circuit("b", 2).add("Y", 1)
        a.extend(b)
        assert len(a) == 2

    def test_validate_against_checks_arity(self, ops):
        circuit = Circuit("t", 2)
        circuit.operations.append(CircuitOp("CZ", (0,)))
        with pytest.raises(AssemblyError):
            circuit.validate_against(ops)

    def test_validate_against_unknown_op(self, ops):
        circuit = Circuit("t", 1).add("NOSUCH", 0)
        with pytest.raises(Exception):
            circuit.validate_against(ops)


class TestASAPScheduler:
    def test_independent_ops_parallel(self, ops):
        circuit = Circuit("t", 2).add("X", 0).add("Y", 1)
        schedule = schedule_asap(circuit, ops)
        assert schedule.cycles() == [0]
        assert schedule.average_parallelism() == 2.0

    def test_dependent_ops_serialise(self, ops):
        circuit = Circuit("t", 1).add("X", 0).add("Y", 0)
        schedule = schedule_asap(circuit, ops)
        assert schedule.cycles() == [0, 1]

    def test_two_qubit_gate_blocks_both(self, ops):
        circuit = Circuit("t", 2).add("CZ", 0, 1).add("X", 0).add("Y", 1)
        schedule = schedule_asap(circuit, ops)
        # CZ takes 2 cycles: X and Y start at cycle 2, in parallel.
        assert [entry.cycle for entry in schedule.scheduled] == [0, 2, 2]

    def test_measurement_duration_respected(self, ops):
        circuit = Circuit("t", 1).add("MEASZ", 0).add("X", 0)
        schedule = schedule_asap(circuit, ops)
        assert [entry.cycle for entry in schedule.scheduled] == [0, 15]

    def test_makespan(self, ops):
        circuit = Circuit("t", 1).add("X", 0).add("MEASZ", 0)
        schedule = schedule_asap(circuit, ops)
        assert schedule.makespan() == 1 + 15

    def test_gaps(self, ops):
        circuit = Circuit("t", 1).add("X", 0).add("MEASZ", 0)
        schedule = schedule_asap(circuit, ops)
        assert schedule.gaps() == [0, 1]

    def test_by_cycle_groups(self, ops):
        circuit = Circuit("t", 3).add("X", 0).add("X", 1).add("Y", 0)
        schedule = schedule_asap(circuit, ops)
        grouped = dict(schedule.by_cycle())
        assert len(grouped[0]) == 2
        assert len(grouped[1]) == 1


class TestOtherSchedulers:
    def test_serial_schedule(self, ops):
        circuit = Circuit("t", 2).add("X", 0).add("Y", 1)
        schedule = schedule_serial(circuit, ops)
        assert schedule.cycles() == [0, 1]
        assert schedule.average_parallelism() == 1.0

    def test_interval_schedule(self, ops):
        circuit = Circuit("t", 1).add("X", 0).add("Y", 0).add("X90", 0)
        schedule = schedule_with_interval(circuit, ops, 16)
        assert schedule.cycles() == [0, 16, 32]

    def test_interval_respects_long_durations(self, ops):
        # A measurement (15 cycles) stretches a 2-cycle interval.
        circuit = Circuit("t", 1).add("MEASZ", 0).add("X", 0)
        schedule = schedule_with_interval(circuit, ops, 2)
        assert schedule.cycles() == [0, 15]

    def test_interval_must_be_positive(self, ops):
        with pytest.raises(ValueError):
            schedule_with_interval(Circuit("t", 1).add("X", 0), ops, 0)
