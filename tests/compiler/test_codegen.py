"""Tests for eQASM code generation and the DSE instruction counting."""

import pytest

from repro.compiler import (
    Circuit,
    CodegenOptions,
    EQASMCodeGenerator,
    count_instructions,
    count_point_words,
    form_slots,
    schedule_asap,
)
from repro.compiler.scheduler import ScheduledOp
from repro.compiler.ir import CircuitOp
from repro.core import (
    Assembler,
    ConfigurationError,
    build_timeline,
    seven_qubit_instantiation,
)
from repro.core.instructions import Bundle, QWait, SMIS, SMIT, Stop
from repro.core.operations import default_operation_set


@pytest.fixture(scope="module")
def isa():
    return seven_qubit_instantiation()


@pytest.fixture(scope="module")
def ops():
    return default_operation_set()


def sched(circuit, ops):
    return schedule_asap(circuit, ops)


def entry(name, *qubits, cycle=0):
    return ScheduledOp(cycle=cycle, op=CircuitOp(name, tuple(qubits)),
                       duration=1)


class TestSlotFormation:
    def test_somq_merges_identical_ops(self):
        point = [entry("X", 0), entry("X", 1), entry("X", 2)]
        slots = form_slots(point, somq=True)
        assert len(slots) == 1
        assert slots[0].qubits == (0, 1, 2)

    def test_somq_keeps_distinct_ops_separate(self):
        point = [entry("X", 0), entry("Y", 1)]
        slots = form_slots(point, somq=True)
        assert len(slots) == 2

    def test_no_somq_one_slot_per_instance(self):
        point = [entry("X", 0), entry("X", 1)]
        slots = form_slots(point, somq=False)
        assert len(slots) == 2

    def test_two_qubit_somq_merge(self):
        point = [entry("CZ", 2, 0), entry("CZ", 1, 4)]
        slots = form_slots(point, somq=True)
        assert len(slots) == 1
        assert slots[0].pairs == ((1, 4), (2, 0))

    def test_mixed_point(self):
        point = [entry("X", 0), entry("CZ", 1, 4), entry("X", 5)]
        slots = form_slots(point, somq=True)
        assert len(slots) == 2


class TestPointWordCounting:
    def test_ts1_always_pays_a_qwait(self):
        options = CodegenOptions(timing="ts1", somq=False, vliw_width=2)
        assert count_point_words(gap=1, num_slots=2, options=options) == 2
        assert count_point_words(gap=100, num_slots=1, options=options) == 2

    def test_ts2_wait_shares_the_word(self):
        options = CodegenOptions(timing="ts2", somq=False, vliw_width=2)
        # 1 op + 1 wait = 2 slots = 1 word.
        assert count_point_words(gap=5, num_slots=1, options=options) == 1
        # 2 ops + wait = 3 slots = 2 words.
        assert count_point_words(gap=5, num_slots=2, options=options) == 2

    def test_ts3_short_gap_free(self):
        options = CodegenOptions(timing="ts3", pi_width=3, somq=False,
                                 vliw_width=2)
        assert count_point_words(gap=7, num_slots=2, options=options) == 1

    def test_ts3_long_gap_needs_qwait(self):
        options = CodegenOptions(timing="ts3", pi_width=3, somq=False,
                                 vliw_width=2)
        assert count_point_words(gap=8, num_slots=2, options=options) == 2

    def test_ts3_pi_width_matters(self):
        narrow = CodegenOptions(timing="ts3", pi_width=1, somq=False,
                                vliw_width=1)
        wide = CodegenOptions(timing="ts3", pi_width=4, somq=False,
                              vliw_width=1)
        assert count_point_words(gap=2, num_slots=1, options=narrow) == 2
        assert count_point_words(gap=2, num_slots=1, options=wide) == 1

    def test_ts2_requires_w2(self):
        with pytest.raises(ConfigurationError):
            CodegenOptions(timing="ts2", vliw_width=1)

    def test_unknown_timing_mode(self):
        with pytest.raises(ConfigurationError):
            CodegenOptions(timing="ts9")


class TestCountInstructions:
    def test_simple_circuit_count(self, ops):
        # Two back-to-back single-qubit gates on one qubit, ts3:
        # 2 bundle words.
        circuit = Circuit("t", 1).add("X", 0).add("Y", 0)
        schedule = sched(circuit, ops)
        options = CodegenOptions(timing="ts3", pi_width=3, somq=True,
                                 vliw_width=2)
        assert count_instructions(schedule, options) == 2

    def test_somq_reduces_counts(self, ops):
        circuit = Circuit("t", 4)
        for qubit in range(4):
            circuit.add("X", qubit)
        schedule = sched(circuit, ops)
        with_somq = CodegenOptions(timing="ts3", somq=True, vliw_width=1)
        without = CodegenOptions(timing="ts3", somq=False, vliw_width=1)
        assert count_instructions(schedule, with_somq) < \
            count_instructions(schedule, without)

    def test_wider_vliw_reduces_counts(self, ops):
        circuit = Circuit("t", 4)
        for qubit in range(4):
            circuit.add("X" if qubit % 2 else "Y", qubit)
        schedule = sched(circuit, ops)
        counts = [count_instructions(
            schedule, CodegenOptions(timing="ts3", somq=False,
                                     vliw_width=w)) for w in (1, 2, 4)]
        assert counts[0] > counts[1] > counts[2]


class TestExecutableCodegen:
    def test_register_setup_hoisted_to_preamble(self, isa, ops):
        circuit = Circuit("t", 2).add("X", 0).add("Y", 1).add("X", 0)
        schedule = sched(circuit, ops)
        program = EQASMCodeGenerator(isa).generate(schedule,
                                                   initialize_cycles=100)
        kinds = [type(ins).__name__ for ins in program.instructions]
        # All SMIS come before the first QWAIT.
        first_wait = kinds.index("QWait")
        assert all(k != "SMIS" for k in kinds[first_wait:])
        assert kinds[-1] == "Stop"

    def test_register_reuse(self, isa, ops):
        # The same mask used twice allocates one register, one SMIS.
        circuit = Circuit("t", 1).add("X", 0).add("X", 0)
        schedule = sched(circuit, ops)
        program = EQASMCodeGenerator(isa).generate(schedule)
        smis = [ins for ins in program.instructions
                if isinstance(ins, SMIS)]
        assert len(smis) == 1

    def test_generated_program_assembles(self, isa, ops):
        circuit = Circuit("t", 3)
        circuit.add("X", 0).add("Y", 1).add("CZ", 2, 0)
        # CZ (2,0) is an allowed pair on the surface-7 chip.
        schedule = sched(circuit, ops)
        program = EQASMCodeGenerator(isa).generate(schedule)
        assembled = Assembler(isa).assemble_program(program)
        assert len(assembled.words) > 0

    def test_generated_timeline_matches_schedule(self, isa, ops):
        circuit = Circuit("t", 2).add("X", 0).add("Y", 1).add("X90", 0)
        schedule = sched(circuit, ops)
        program = EQASMCodeGenerator(isa).generate(
            schedule, initialize_cycles=50, emit_stop=False)
        timeline = build_timeline(isa, program.instructions)
        cycles = [point.cycle for point in timeline.points]
        # Schedule points 0 and 1 map to 50 and 51 after the init wait.
        assert cycles == [50, 51]
        names_first = {op.name for op in timeline.operations_at(50)}
        assert names_first == {"X", "Y"}

    def test_large_wait_split_into_multiple_qwaits(self, isa, ops):
        circuit = Circuit("t", 1).add("X", 0)
        schedule = sched(circuit, ops)
        generator = EQASMCodeGenerator(isa)
        program = generator.generate(schedule,
                                     initialize_cycles=(1 << 20) + 5)
        waits = [ins for ins in program.instructions
                 if isinstance(ins, QWait)]
        assert len(waits) == 2
        assert sum(w.cycles for w in waits) == (1 << 20) + 5

    def test_wrong_width_rejected(self, isa):
        with pytest.raises(ConfigurationError):
            EQASMCodeGenerator(isa, CodegenOptions(vliw_width=4))

    def test_two_qubit_operand_uses_t_register(self, isa, ops):
        circuit = Circuit("t", 3).add("CZ", 2, 0)
        schedule = sched(circuit, ops)
        program = EQASMCodeGenerator(isa).generate(schedule)
        smit = [ins for ins in program.instructions
                if isinstance(ins, SMIT)]
        assert len(smit) == 1
        assert smit[0].pairs == frozenset({(2, 0)})
        bundles = [ins for ins in program.instructions
                   if isinstance(ins, Bundle)]
        assert bundles[0].operations[0].register == ("T", 0)
