"""Tests for the cQASM-style frontend."""

import pytest

from repro.compiler.frontend import parse_cqasm
from repro.core.errors import ParseError


class TestBasicParsing:
    def test_qubits_declaration(self):
        circuit = parse_cqasm("qubits 3")
        assert circuit.num_qubits == 3
        assert len(circuit) == 0

    def test_version_line_ignored(self):
        circuit = parse_cqasm("version 1.0\nqubits 2\nx q[0]")
        assert len(circuit) == 1

    def test_single_gate(self):
        circuit = parse_cqasm("qubits 2\nx q[0]")
        assert circuit.operations[0].name == "X"
        assert circuit.operations[0].qubits == (0,)

    def test_two_qubit_gate(self):
        circuit = parse_cqasm("qubits 3\ncz q[0], q[2]")
        op = circuit.operations[0]
        assert op.name == "CZ"
        assert op.qubits == (0, 2)

    def test_cnot(self):
        circuit = parse_cqasm("qubits 2\ncnot q[1], q[0]")
        assert circuit.operations[0].qubits == (1, 0)

    def test_whole_register(self):
        circuit = parse_cqasm("qubits 3\nh q")
        assert len(circuit) == 3
        assert {op.qubits[0] for op in circuit} == {0, 1, 2}

    def test_measure(self):
        circuit = parse_cqasm("qubits 2\nmeasure q[1]")
        assert circuit.operations[0].name == "MEASZ"

    def test_measure_all(self):
        circuit = parse_cqasm("qubits 3\nmeasure_all")
        assert len(circuit) == 3
        assert all(op.name == "MEASZ" for op in circuit)

    def test_comments_and_blank_lines(self):
        circuit = parse_cqasm("""
        # a Bell pair
        qubits 2

        h q[0]      # superposition
        cnot q[0], q[1]
        """)
        assert [op.name for op in circuit] == ["H", "CNOT"]

    def test_kernel_headers_skipped(self):
        circuit = parse_cqasm("""
        qubits 2
        .init
        x q[0]
        .measure_kernel(3)
        measure q[0]
        """)
        assert [op.name for op in circuit] == ["X", "MEASZ"]

    def test_parallel_group(self):
        circuit = parse_cqasm("qubits 2\n{ x q[0] | y q[1] }")
        assert [op.name for op in circuit] == ["X", "Y"]


class TestRotations:
    def test_rx_half_pi(self):
        circuit = parse_cqasm("qubits 1\nrx(pi/2) q[0]")
        assert circuit.operations[0].name == "X90"

    def test_rx_negative_half_pi(self):
        circuit = parse_cqasm("qubits 1\nrx(-pi/2) q[0]")
        assert circuit.operations[0].name == "XM90"

    def test_ry_pi(self):
        circuit = parse_cqasm("qubits 1\nry(pi) q[0]")
        assert circuit.operations[0].name == "Y"

    def test_three_half_pi_normalises(self):
        # 3*pi/2 == -pi/2 (mod 2*pi).
        circuit = parse_cqasm("qubits 1\nry(3*pi/2) q[0]")
        assert circuit.operations[0].name == "YM90"

    def test_rz_pi_compiles_to_pulse_pair(self):
        circuit = parse_cqasm("qubits 1\nrz(pi) q[0]")
        assert [op.name for op in circuit] == ["Y", "X"]

    def test_unquantised_angle_rejected(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 1\nrx(0.123) q[0]")

    def test_rz_arbitrary_angle_rejected(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 1\nrz(pi/2) q[0]")


class TestErrors:
    def test_statement_before_qubits(self):
        with pytest.raises(ParseError):
            parse_cqasm("x q[0]\nqubits 2")

    def test_duplicate_qubits(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 2\nqubits 3")

    def test_no_qubits_at_all(self):
        with pytest.raises(ParseError):
            parse_cqasm("# nothing")

    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 1\nfoo q[0]")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 1\nx qubit0")

    def test_cz_needs_two_operands(self):
        with pytest.raises(ParseError):
            parse_cqasm("qubits 2\ncz q[0]")

    def test_out_of_range_qubit(self):
        with pytest.raises(Exception):
            parse_cqasm("qubits 2\nx q[5]")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_cqasm("qubits 2\nx q[0]\nfoo q[1]")
        assert excinfo.value.line_number == 3


class TestEndToEnd:
    def test_bell_pair_through_full_stack(self):
        """cQASM -> IR -> schedule -> eQASM -> binary -> machine."""
        from repro.experiments.runner import ExperimentSetup
        from repro.quantum import NoiseModel
        text = """
        version 1.0
        qubits 3
        .bell
        y90 q[0]
        cz q[0], q[2]
        # decode into a correlated-measurement basis
        my90 q[2]
        measure q[0]
        measure q[2]
        """
        circuit = parse_cqasm(text)
        setup = ExperimentSetup.create(noise=NoiseModel.noiseless(),
                                       seed=8)
        traces = setup.run_circuit(circuit, shots=40)
        # |0+> -CZ-> product state; the exact correlation value is not
        # the point — the pipeline must execute and measure both qubits.
        for trace in traces:
            assert trace.last_result(0) in (0, 1)
            assert trace.last_result(2) in (0, 1)
