"""Tests for the DSE configurations and the QuMIS baseline."""

import pytest

from repro.compiler import (
    Circuit,
    DSE_CONFIGS,
    QuMISGenerator,
    count_for_config,
    effective_ops_per_bundle,
    get_config,
    required_issue_rate,
    schedule_asap,
    sweep,
)
from repro.core.errors import ConfigurationError
from repro.core.operations import default_operation_set


@pytest.fixture(scope="module")
def ops():
    return default_operation_set()


@pytest.fixture(scope="module")
def parallel_schedule(ops):
    """Four qubits, identical gates: SOMQ-friendly."""
    circuit = Circuit("par", 4)
    for _ in range(8):
        for qubit in range(4):
            circuit.add("X", qubit)
        for qubit in range(4):
            circuit.add("Y", qubit)
    return schedule_asap(circuit, ops)


@pytest.fixture(scope="module")
def serial_schedule(ops):
    """One qubit, long waits: ts-mode sensitive."""
    circuit = Circuit("ser", 1)
    for _ in range(10):
        circuit.add("X", 0)
        circuit.add("MEASZ", 0)  # produces 15-cycle gaps
    return schedule_asap(circuit, ops)


class TestConfigTable:
    def test_ten_configs(self):
        assert sorted(DSE_CONFIGS) == list(range(1, 11))

    def test_paper_parameters(self):
        assert get_config(1).timing == "ts1"
        assert get_config(2).timing == "ts2"
        for number, pi_width in ((3, 1), (4, 2), (5, 3), (6, 4)):
            config = get_config(number)
            assert config.timing == "ts3"
            assert config.pi_width == pi_width
            assert not config.somq
        for number, pi_width in ((7, 1), (8, 2), (9, 3), (10, 4)):
            config = get_config(number)
            assert config.pi_width == pi_width
            assert config.somq

    def test_ts2_excludes_w1(self):
        assert get_config(2).valid_widths() == [2, 3, 4]
        assert get_config(1).valid_widths() == [1, 2, 3, 4]

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError):
            get_config(11)

    def test_invalid_width_rejected(self, parallel_schedule):
        with pytest.raises(ConfigurationError):
            count_for_config(parallel_schedule, 2, 1)

    def test_labels(self):
        assert "SOMQ" in get_config(9).label()
        assert "wPI=3" in get_config(9).label()


class TestSweepShape:
    """The qualitative claims of Section 4.2 on synthetic schedules."""

    def test_wider_vliw_never_increases(self, parallel_schedule):
        results = sweep(parallel_schedule)
        for config in DSE_CONFIGS.values():
            widths = config.valid_widths()
            counts = [results[(config.number, w)] for w in widths]
            assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_somq_helps_parallel_identical_gates(self, parallel_schedule):
        results = sweep(parallel_schedule)
        for width in (1, 2, 4):
            assert results[(9, width)] <= results[(5, width)]

    def test_ts2_beats_ts1(self, serial_schedule):
        results = sweep(serial_schedule)
        for width in (2, 3, 4):
            assert results[(2, width)] < results[(1, width)]

    def test_wider_pi_helps_serial(self, serial_schedule):
        # 15-cycle gaps: only wPI=4 absorbs them into the PI field.
        results = sweep(serial_schedule)
        assert results[(6, 1)] < results[(3, 1)]

    def test_config1_w1_is_worst(self, parallel_schedule,
                                 serial_schedule):
        for schedule in (parallel_schedule, serial_schedule):
            results = sweep(schedule)
            baseline = results[(1, 1)]
            assert all(count <= baseline for count in results.values())


class TestEffectiveOps:
    def test_effective_ops_bounded_by_width(self, serial_schedule):
        for width in (2, 3, 4):
            value = effective_ops_per_bundle(serial_schedule, 9, width)
            assert 0 < value

    def test_parallel_beats_serial(self, parallel_schedule,
                                   serial_schedule):
        par = effective_ops_per_bundle(parallel_schedule, 9, 2)
        ser = effective_ops_per_bundle(serial_schedule, 9, 2)
        assert par > ser


class TestQuMIS:
    def test_stream_structure(self, ops):
        circuit = Circuit("t", 2).add("X", 0).add("X", 1).add("CZ", 0, 1)
        schedule = schedule_asap(circuit, ops)
        generator = QuMISGenerator(ops)
        stream = generator.generate(schedule)
        mnemonics = [ins.mnemonic for ins in stream]
        # wait + 2 pulses at point 0, wait + trigger at point 1.
        assert mnemonics == ["wait", "pulse", "pulse", "wait", "trigger"]

    def test_measure_per_qubit(self, ops):
        circuit = Circuit("t", 2).add("MEASZ", 0).add("MEASZ", 1)
        schedule = schedule_asap(circuit, ops)
        stream = QuMISGenerator(ops).generate(schedule)
        assert [i.mnemonic for i in stream] == ["wait", "measure",
                                                "measure"]

    def test_count_equals_stream_length(self, parallel_schedule, ops):
        generator = QuMISGenerator(ops)
        assert generator.count_instructions(parallel_schedule) == \
            len(generator.generate(parallel_schedule))

    def test_quimis_matches_config1_w1_shape(self, parallel_schedule,
                                             ops):
        # QuMIS = per-qubit instructions + per-point wait: identical to
        # Config 1 at w=1 for single-qubit-only schedules.
        quimis = QuMISGenerator(ops).count_instructions(parallel_schedule)
        config1 = count_for_config(parallel_schedule, 1, 1)
        assert quimis == config1

    def test_assembly_rendering(self, ops):
        circuit = Circuit("t", 1).add("X90", 0)
        schedule = schedule_asap(circuit, ops)
        text = QuMISGenerator(ops).to_assembly(schedule)
        assert "pulse x90, q0" in text

    def test_issue_rate_above_one_for_dense_quimis(self, ops):
        # 4 qubits back-to-back: QuMIS needs 5 instructions per 20 ns
        # point but can only issue 2.
        circuit = Circuit("t", 4)
        for _ in range(10):
            for qubit in range(4):
                circuit.add("X", qubit)
        schedule = schedule_asap(circuit, ops)
        count = QuMISGenerator(ops).count_instructions(schedule)
        ratio = required_issue_rate(schedule, ops, count)
        assert ratio > 1.0

    def test_issue_rate_below_one_for_eqasm(self, ops):
        circuit = Circuit("t", 4)
        for _ in range(10):
            for qubit in range(4):
                circuit.add("X", qubit)
        schedule = schedule_asap(circuit, ops)
        count = count_for_config(schedule, 9, 2)
        ratio = required_issue_rate(schedule, ops, count)
        assert ratio <= 1.0

    def test_empty_schedule_rate_zero(self, ops):
        circuit = Circuit("t", 1)
        schedule = schedule_asap(circuit, ops)
        assert required_issue_rate(schedule, ops, 0) == 0.0
