"""Property-based cross-check: the microarchitecture against the
architectural timeline model.

The reserve-phase semantics (Section 3.1) are defined once in
:mod:`repro.core.timeline`; the machine implements them with pipelines
and queues.  For random compiled programs, every operation the plant
records must start exactly at the cycle the architectural model
predicts (relative to the first operation), with the same qubits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import Circuit, EQASMCodeGenerator, schedule_asap
from repro.core import (
    Assembler,
    build_timeline,
    seven_qubit_instantiation,
)
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2

_ISA = seven_qubit_instantiation()
_SINGLE_NAMES = ("I", "X", "Y", "X90", "Y90", "XM90", "YM90", "H")
_PAIRS = tuple(pair.as_tuple() for pair in _ISA.topology.pairs)


@st.composite
def random_circuits(draw):
    """Random 7-qubit circuits over the configured operation set."""
    length = draw(st.integers(min_value=1, max_value=25))
    circuit = Circuit("random", 7)
    for _ in range(length):
        if draw(st.booleans()):
            name = draw(st.sampled_from(_SINGLE_NAMES))
            qubit = draw(st.integers(0, 6))
            circuit.add(name, qubit)
        else:
            source, target = draw(st.sampled_from(_PAIRS))
            circuit.add("CZ", source, target)
    return circuit


def run_on_machine(program):
    assembled = Assembler(_ISA).assemble_program(program)
    plant = QuantumPlant(_ISA.topology, noise=NoiseModel.noiseless(),
                         rng=np.random.default_rng(0))
    machine = QuMAv2(_ISA, plant)
    machine.load(assembled)
    machine.run_shot()
    return plant.operations_log


class TestTimelineCrossCheck:
    @given(random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_plant_times_match_architectural_model(self, circuit):
        schedule = schedule_asap(circuit, _ISA.operations)
        program = EQASMCodeGenerator(_ISA).generate(
            schedule, initialize_cycles=100, emit_stop=True)
        # Architectural prediction.
        timeline = build_timeline(_ISA, program.instructions)
        predicted = []
        for cycle, op in timeline.all_operations():
            if op.pairs:
                for pair in op.pairs:
                    predicted.append((cycle, op.name, tuple(pair)))
            else:
                for qubit in op.qubits:
                    predicted.append((cycle, op.name, (qubit,)))
        predicted.sort()
        # Machine execution.
        log = run_on_machine(program)
        base_cycle = min(cycle for cycle, _, _ in predicted)
        base_ns = min(op.start_ns for op in log)
        observed = sorted(
            (round((op.start_ns - base_ns) / 20.0) + base_cycle,
             op.name, op.qubits)
            for op in log)
        assert observed == predicted

    @given(random_circuits())
    @settings(max_examples=20, deadline=None)
    def test_machine_preserves_unitary_semantics(self, circuit):
        """The noiseless machine must act as the ideal circuit unitary."""
        from repro.quantum import zero_state, gates
        schedule = schedule_asap(circuit, _ISA.operations)
        program = EQASMCodeGenerator(_ISA).generate(
            schedule, initialize_cycles=50, emit_stop=True)
        assembled = Assembler(_ISA).assemble_program(program)
        plant = QuantumPlant(_ISA.topology,
                             noise=NoiseModel.noiseless(),
                             rng=np.random.default_rng(0))
        machine = QuMAv2(_ISA, plant)
        machine.load(assembled)
        machine.run_shot()
        reference = zero_state(7)
        for op in circuit:
            reference.apply_gate(gates.gate_matrix(op.name), op.qubits)
        fidelity = plant.density_matrix().fidelity_with_pure(reference)
        assert fidelity == pytest.approx(1.0, abs=1e-8)
