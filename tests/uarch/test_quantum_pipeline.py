"""Tests of the quantum pipeline: Table 2 OpSel resolution, VLIW lane
combination, cross-instruction accumulation, conflicts."""

import pytest

from repro.core import seven_qubit_instantiation
from repro.core.errors import AssemblyError, OperationConflictError
from repro.core.instructions import Bundle, BundleOperation, SMIS, SMIT
from repro.core.microcode import MicroOpRole
from repro.uarch import OpSel, QuantumPipeline


@pytest.fixture()
def pipeline():
    return QuantumPipeline(seven_qubit_instantiation())


def bundle(*ops, pi=1):
    return Bundle(operations=tuple(ops), pi=pi)


class TestTable2Resolution:
    """The micro-operation selection signal (Table 2 / Section 4.3)."""

    def test_single_qubit_mask_gives_both(self, pipeline):
        selection = pipeline.resolve_single_mask(0b0000101)
        assert selection[0] is OpSel.BOTH
        assert selection[2] is OpSel.BOTH
        assert selection[1] is OpSel.NONE

    def test_pair_mask_edge0(self, pipeline):
        # Edge 0 is (2, 0): qubit 2 source ('01'), qubit 0 target ('10').
        selection = pipeline.resolve_pair_mask(1 << 0)
        assert selection[2] is OpSel.SRC
        assert selection[0] is OpSel.TGT
        assert all(selection[q] is OpSel.NONE for q in (1, 3, 4, 5, 6))

    def test_pair_mask_edge9_reverses(self, pipeline):
        # Edge 9 is (0, 2) — paper: edge 0 or 9 selected makes qubit 0
        # target or source respectively... edge 9 has qubit 0 as target?
        # Per Section 4.3: "When edge 0 or 9 (1 or 8) is selected in the
        # mask, qubit 0 is the target (source) qubit".
        selection = pipeline.resolve_pair_mask(1 << 9)
        assert selection[0] is OpSel.TGT

    def test_pair_mask_edges_1_and_8_make_qubit0_source(self, pipeline):
        for edge in (1, 8):
            selection = pipeline.resolve_pair_mask(1 << edge)
            assert selection[0] is OpSel.SRC, f"edge {edge}"

    def test_two_disjoint_pairs(self, pipeline):
        # Edge 0 = (2, 0), edge 3 = (1, 4).
        selection = pipeline.resolve_pair_mask((1 << 0) | (1 << 3))
        assert selection[2] is OpSel.SRC
        assert selection[0] is OpSel.TGT
        assert selection[1] is OpSel.SRC
        assert selection[4] is OpSel.TGT

    def test_conflicting_mask_raises(self, pipeline):
        from repro.core.errors import TopologyError
        with pytest.raises(TopologyError):
            pipeline.resolve_pair_mask((1 << 0) | (1 << 1))


class TestBundleProcessing:
    def test_single_lane_somq(self, pipeline):
        pipeline.process_smis(SMIS(sd=7, qubits=frozenset({0, 2})))
        flushed, entries = pipeline.process_bundle(
            bundle(BundleOperation("Y", ("S", 7))), 0.0)
        assert flushed is None
        assert sorted(e.qubit for e in entries) == [0, 2]
        assert all(e.micro_op.operation == "Y" for e in entries)

    def test_two_lanes_merge(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_smis(SMIS(sd=2, qubits=frozenset({2})))
        _, entries = pipeline.process_bundle(
            bundle(BundleOperation("X90", ("S", 0)),
                   BundleOperation("X", ("S", 2))), 0.0)
        by_qubit = {e.qubit: e.micro_op.operation for e in entries}
        assert by_qubit == {0: "X90", 2: "X"}

    def test_lane_conflict_raises(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_smis(SMIS(sd=1, qubits=frozenset({0, 1})))
        with pytest.raises(OperationConflictError):
            pipeline.process_bundle(
                bundle(BundleOperation("X", ("S", 0)),
                       BundleOperation("Y", ("S", 1))), 0.0)

    def test_two_qubit_lane_emits_src_and_tgt(self, pipeline):
        pipeline.process_smit(SMIT(td=3, pairs=frozenset({(2, 0)})))
        _, entries = pipeline.process_bundle(
            bundle(BundleOperation("CZ", ("T", 3))), 0.0)
        roles = {e.qubit: e.micro_op.role for e in entries}
        assert roles[2] is MicroOpRole.SOURCE
        assert roles[0] is MicroOpRole.TARGET
        assert all(e.pair == (2, 0) for e in entries)

    def test_cross_instruction_accumulation(self, pipeline):
        # A long bundle split across two words with PI = 0 accumulates
        # into one timing point.
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_smis(SMIS(sd=1, qubits=frozenset({1})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        flushed, _ = pipeline.process_bundle(
            bundle(BundleOperation("Y", ("S", 1)), pi=0), 10.0)
        assert flushed is None  # same timing point, nothing flushed
        point = pipeline.flush_pending()
        assert point is not None
        assert sorted(e.qubit for e in point.micro_ops) == [0, 1]

    def test_cross_instruction_conflict(self, pipeline):
        # Section 4.3: two bundle instructions specifying operations on
        # the same qubit at one timing point stop the processor.
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        with pytest.raises(OperationConflictError):
            pipeline.process_bundle(
                bundle(BundleOperation("Y", ("S", 0)), pi=0), 10.0)

    def test_new_point_flushes_previous(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        flushed, _ = pipeline.process_bundle(
            bundle(BundleOperation("Y", ("S", 0)), pi=1), 10.0)
        assert flushed is not None
        assert flushed.cycle == 1
        assert pipeline.current_cycle == 2

    def test_wait_flushes(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        flushed = pipeline.process_wait(5)
        assert flushed is not None
        assert pipeline.current_cycle == 6

    def test_zero_wait_does_not_flush(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        assert pipeline.process_wait(0) is None

    def test_unset_s_register_raises(self, pipeline):
        with pytest.raises(AssemblyError):
            pipeline.process_bundle(
                bundle(BundleOperation("X", ("S", 5))), 0.0)

    def test_unset_t_register_raises(self, pipeline):
        with pytest.raises(AssemblyError):
            pipeline.process_bundle(
                bundle(BundleOperation("CZ", ("T", 5))), 0.0)

    def test_too_wide_bundle_raises(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        with pytest.raises(AssemblyError):
            pipeline.process_bundle(
                bundle(BundleOperation("X", ("S", 0)),
                       BundleOperation("Y", ("S", 0)),
                       BundleOperation("Z", ("S", 0))), 0.0)

    def test_reset_clears_state(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)), pi=1), 0.0)
        pipeline.reset()
        assert pipeline.current_cycle == 0
        assert pipeline.flush_pending() is None
        with pytest.raises(AssemblyError):
            pipeline.process_bundle(
                bundle(BundleOperation("X", ("S", 0))), 0.0)

    def test_qnop_contributes_nothing(self, pipeline):
        pipeline.process_smis(SMIS(sd=0, qubits=frozenset({0})))
        _, entries = pipeline.process_bundle(
            bundle(BundleOperation("X", ("S", 0)),
                   BundleOperation("QNOP", None)), 0.0)
        assert len(entries) == 1
