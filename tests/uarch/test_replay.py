"""Shot-replay engine cross-checks.

The replay fast path must be *observationally equivalent* to the
interpreter on feedback-free programs: bit-identical timing-domain
records (triggers, slips, classical time) and statistically identical
measurement distributions.  Feedback programs (fast conditional
execution, CFC) must transparently fall back to the interpreter.
"""

import numpy as np
import pytest

from repro.core import Assembler, seven_qubit_instantiation, \
    two_qubit_instantiation
from repro.quantum import NoiseModel, QuantumPlant
from repro.uarch import QuMAv2, ShotCounts, slip_config


def make_machine(isa=None, noise=None, seed=0, config=None):
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return QuMAv2(isa, plant, config=config)


def load(machine, text):
    machine.load(Assembler(machine.isa).assemble_text(text))


RABI = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
STOP
"""

ALLXY = """
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50
STOP
"""

#: The SOMQ issue-rate stress program (4 bundle words per 20 ns point
#: cannot keep up at 10 ns/instruction) — measurement-free, slips under
#: the slip policy.
SOMQ_DENSE = """
SMIS S0, {0}
SMIS S1, {1}
SMIS S2, {2}
SMIS S3, {3}
X S0
0, X S1
0, X S2
0, X S3
1, Y S0
0, Y S1
0, Y S2
0, Y S3
STOP
"""

ACTIVE_RESET = """
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2
STOP
"""

CFC_FMR = """
SMIS S2, {2}
X S2
MEASZ S2
FMR R1, Q2
STOP
"""


def assert_timing_identical(trace_a, trace_b):
    """Deterministic-domain records must match bit for bit."""
    assert trace_a.triggers == trace_b.triggers
    assert trace_a.slips == trace_b.slips
    assert trace_a.instructions_executed == trace_b.instructions_executed
    assert trace_a.classical_time_ns == trace_b.classical_time_ns
    assert trace_a.stop_reached == trace_b.stop_reached
    assert [(r.qubit, r.measure_start_ns, r.arrival_ns)
            for r in trace_a.results] == \
        [(r.qubit, r.measure_start_ns, r.arrival_ns)
         for r in trace_b.results]


class TestReplayEquivalence:
    """Replay vs interpreter on the deterministic programs."""

    @pytest.mark.parametrize("text", [RABI, ALLXY], ids=["rabi", "allxy"])
    def test_timing_bit_identical(self, text):
        interpreter = make_machine(noise=NoiseModel(), seed=7)
        load(interpreter, text)
        interpreter_traces = interpreter.run(5, use_replay=False)
        assert interpreter.last_run_engine == "interpreter"

        replay = make_machine(noise=NoiseModel(), seed=7)
        load(replay, text)
        replay_traces = replay.run(5)
        assert replay.last_run_engine == "replay"
        assert replay.replay_fallback_reason is None

        for interp_trace in interpreter_traces:
            for replay_trace in replay_traces:
                assert_timing_identical(interp_trace, replay_trace)

    @pytest.mark.parametrize("text", [RABI, ALLXY], ids=["rabi", "allxy"])
    def test_measurement_distribution_matches(self, text):
        shots = 800
        interpreter = make_machine(noise=NoiseModel(), seed=3)
        load(interpreter, text)
        interp_counts = ShotCounts()
        for trace in interpreter.run_iter(shots, use_replay=False):
            interp_counts.add(trace)

        replay = make_machine(noise=NoiseModel(), seed=4)
        load(replay, text)
        replay_counts = replay.run_counts(shots)
        assert replay.last_run_engine == "replay"

        for qubit in interp_counts.measured:
            assert replay_counts.excited_fraction(qubit) == pytest.approx(
                interp_counts.excited_fraction(qubit), abs=0.06)

    def test_somq_slip_program_replays_with_identical_slips(self):
        # The density-matrix comparison below needs the dense backend
        # pinned: a noiseless Clifford program would otherwise
        # auto-select the stabilizer tableau on both machines.
        isa = seven_qubit_instantiation()
        interpreter = make_machine(isa=isa, config=slip_config())
        interpreter.plant_backend_policy = "dense"
        load(interpreter, SOMQ_DENSE)
        interp_trace = interpreter.run(3, use_replay=False)[0]
        assert interp_trace.slips  # the stress program must slip
        assert interpreter.last_plant_backend == "dense"

        replay = make_machine(isa=isa, config=slip_config())
        replay.plant_backend_policy = "dense"
        load(replay, SOMQ_DENSE)
        replay_traces = replay.run(3)
        assert replay.last_run_engine == "replay"
        for trace in replay_traces:
            assert_timing_identical(interp_trace, trace)
        # Measurement-free + identical noise: the final plant state of
        # a replayed shot equals the interpreter's exactly.
        np.testing.assert_allclose(replay.plant.state.matrix,
                                   interpreter.plant.state.matrix,
                                   atol=1e-12)

    def test_replay_results_resample_randomness(self):
        machine = make_machine(noise=NoiseModel(), seed=9)
        load(machine, RABI)
        traces = machine.run(400)
        assert machine.last_run_engine == "replay"
        outcomes = {trace.last_result(2) for trace in traces}
        assert outcomes == {0, 1}  # X90 -> both outcomes must appear


class TestReplayFallback:
    """Hard blockers (live stores, untranslatable operations) must run
    on the full interpreter; feedback programs (conditional execution,
    CFC), mocked programs and dead-store programs take the
    branch-resolved replay path."""

    @pytest.mark.parametrize("text", [ACTIVE_RESET, CFC_FMR],
                             ids=["active-reset", "cfc-fmr"])
    def test_feedback_program_takes_branch_replay(self, text):
        machine = make_machine(seed=5)
        load(machine, text)
        machine.run(20)
        assert machine.last_run_engine == "replay"
        assert machine.replay_fallback_reason is None
        stats = machine.engine_stats
        assert stats.shots_total == 20
        assert stats.replay_shots > 0  # the tree served cached paths
        assert stats.interpreter_shots + stats.replay_shots == 20
        assert stats.segment_cache_misses == stats.interpreter_shots

    def test_live_load_falls_back(self):
        """A load that reads an address only stored *after* it (i.e.
        by the previous shot, since data memory persists) is the one
        remaining data-memory hard blocker — a same-shot store below
        the load cannot kill it."""
        machine = make_machine()
        load(machine, """
        SMIS S0, {0}
        LDI R0, 7
        LDI R1, 0
        LD R2, R1(0)
        ST R0, R1(0)
        X S0
        STOP
        """)
        machine.run(2)
        assert machine.last_run_engine == "interpreter"
        assert "ST" in machine.replay_fallback_reason
        assert "live" in machine.replay_fallback_reason

    def test_spill_reload_replays(self):
        """The same ST/LD pair in kill order — store first, reload
        after — is shot-local scratch traffic and replays."""
        machine = make_machine()
        load(machine, """
        SMIS S0, {0}
        LDI R0, 7
        LDI R1, 0
        ST R0, R1(0)
        LD R2, R1(0)
        X S0
        STOP
        """)
        machine.run(20)
        assert machine.last_run_engine == "replay"
        assert machine.replay_fallback_reason is None
        assert machine.engine_stats.killed_loads == 1
        assert machine.engine_stats.replay_shots > 0

    def test_dead_store_replays(self):
        """A store no LD ever reads (host-readout deposit) is proven
        dead by the dataflow pass and replays."""
        machine = make_machine(seed=3)
        load(machine, """
        SMIS S2, {2}
        QWAIT 10000
        X90 S2
        MEASZ S2
        QWAIT 50
        FMR R1, Q2
        LDI R2, 16
        ST R1, R2(0)
        STOP
        """)
        machine.run(20)
        assert machine.last_run_engine == "replay"
        assert machine.replay_fallback_reason is None
        assert machine.engine_stats.dead_stores == 1
        assert machine.engine_stats.replay_shots > 0

    def test_mock_results_replay_and_drain_in_order(self):
        """Injected mock results no longer block replay: the draining
        queue keys the timeline tree's roots, and the reported sequence
        is exactly the injected one."""
        machine = make_machine(seed=2)
        load(machine, RABI)
        machine.measurement_unit.inject_mock_results(2, [1, 0, 1])
        traces = machine.run(3)
        assert machine.last_run_engine == "replay"
        assert machine.replay_fallback_reason is None
        # The mock queue must drain exactly as the interpreter would.
        assert [trace.last_result(2) for trace in traces] == [1, 0, 1]
        assert not machine.measurement_unit.has_mock_results(2)

    def test_use_replay_false_forces_interpreter(self):
        machine = make_machine(seed=1)
        load(machine, RABI)
        machine.run(2, use_replay=False)
        assert machine.last_run_engine == "interpreter"
        assert "disabled" in machine.replay_fallback_reason

    def test_active_reset_statistics_unchanged(self):
        """Fallback preserves the Fig. 4 behaviour end to end."""
        machine = make_machine(seed=5)
        load(machine, ACTIVE_RESET)
        for trace in machine.run(30):
            assert trace.last_result(2) == 0  # noiseless reset is perfect


class TestShotCountsAndIteration:
    def test_run_iter_is_lazy_and_counts_match_traces(self):
        machine = make_machine(noise=NoiseModel(), seed=6)
        load(machine, ALLXY)
        iterator = machine.run_iter(50)
        counts = ShotCounts()
        traces = []
        for trace in iterator:
            counts.add(trace)
            traces.append(trace)
        assert counts.shots == 50
        from repro.experiments.runner import excited_fraction
        for qubit in (0, 2):
            assert counts.excited_fraction(qubit) == pytest.approx(
                excited_fraction(traces, qubit))

    def test_outcome_counts_two_qubit_histogram(self):
        machine = make_machine(noise=NoiseModel(), seed=8)
        load(machine, ALLXY)
        counts = machine.run_counts(120)
        histogram = counts.outcome_counts(0, 2)
        assert sum(histogram.values()) == 120
        from repro.experiments.runner import outcome_counts
        machine2 = make_machine(noise=NoiseModel(), seed=8)
        load(machine2, ALLXY)
        traces = machine2.run(120)
        assert sum(outcome_counts(traces, 0, 2).values()) == 120

    def test_counts_raise_without_results(self):
        counts = ShotCounts()
        with pytest.raises(ValueError):
            counts.excited_fraction(0)


class TestProgramCache:
    def test_compile_circuit_caches_identical_skeletons(self):
        from repro.compiler.ir import Circuit
        from repro.experiments.runner import ExperimentSetup
        setup = ExperimentSetup.create()
        circuit = Circuit("probe", 3).add("X90", 2).add("MEASZ", 2)
        first = setup.compile_circuit(circuit)
        second = setup.compile_circuit(circuit)
        assert first is second
        third = setup.compile_circuit(circuit, interval_cycles=4)
        assert third is not first
        fresh = setup.compile_circuit(circuit, use_cache=False)
        assert fresh is not first
        assert fresh.words == first.words

    def test_cached_program_runs_identically(self):
        from repro.compiler.ir import Circuit
        from repro.experiments.runner import ExperimentSetup
        setup = ExperimentSetup.create(seed=11)
        circuit = Circuit("probe", 3).add("X", 2).add("MEASZ", 2)
        counts_a = setup.run_circuit_counts(circuit, 40)
        counts_b = setup.run_circuit_counts(circuit, 40)
        assert counts_a.shots == counts_b.shots == 40
        assert counts_a.excited_fraction(2) == pytest.approx(
            counts_b.excited_fraction(2), abs=0.25)


class TestAmplitudesView:
    def test_view_is_read_only_and_copy_free(self):
        from repro.quantum.statevector import zero_state
        state = zero_state(2)
        view = state.amplitudes_view
        assert view[0] == 1.0
        with pytest.raises(ValueError):
            view[0] = 0.5
        # The copying accessor still copies.
        copied = state.amplitudes
        copied[0] = 0.0
        assert state.amplitudes_view[0] == 1.0
