"""Unit tests for the device layer, measurement unit, trace records,
and microarchitecture configuration."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.microcode import (
    DeviceKind,
    MicroOpRole,
    MicrocodeUnit,
)
from repro.core.operations import default_operation_set
from repro.quantum import NoiseModel, QuantumPlant
from repro.topology import surface7, two_qubit_chip
from repro.uarch import (
    DeviceEventDistributor,
    DeviceId,
    EventQueue,
    MeasurementUnit,
    PulseLibrary,
    QubitMicroOp,
    UarchConfig,
    slip_config,
)
from repro.uarch.devices import DeviceOperation
from repro.uarch.trace import (
    ResultRecord,
    ShotTrace,
    SlipRecord,
    TriggerRecord,
)


@pytest.fixture(scope="module")
def microcode():
    return MicrocodeUnit(default_operation_set())


def qubit_micro_op(microcode, name, qubit, pair=None):
    micro_ops = microcode.translate_name(name)
    return QubitMicroOp(micro_op=micro_ops[0], qubit=qubit, pair=pair)


class TestDeviceEventDistributor:
    def test_microwave_per_qubit(self, microcode):
        distributor = DeviceEventDistributor(surface7())
        entries = [qubit_micro_op(microcode, "X", 0),
                   qubit_micro_op(microcode, "X", 3)]
        device_ops = distributor.distribute(5, entries)
        devices = {op.device for op in device_ops}
        assert devices == {DeviceId(DeviceKind.MICROWAVE, 0),
                           DeviceId(DeviceKind.MICROWAVE, 3)}

    def test_measurements_share_feedline_device(self, microcode):
        distributor = DeviceEventDistributor(surface7())
        entries = [qubit_micro_op(microcode, "MEASZ", 0),
                   qubit_micro_op(microcode, "MEASZ", 3)]
        device_ops = distributor.distribute(1, entries)
        # Qubits 0 and 3 share feedline 0: one device operation.
        assert len(device_ops) == 1
        assert device_ops[0].device == DeviceId(DeviceKind.MEASUREMENT, 0)
        assert sorted(device_ops[0].qubits()) == [0, 3]

    def test_measurements_on_different_feedlines_split(self, microcode):
        distributor = DeviceEventDistributor(surface7())
        entries = [qubit_micro_op(microcode, "MEASZ", 0),
                   qubit_micro_op(microcode, "MEASZ", 1)]
        device_ops = distributor.distribute(1, entries)
        assert len(device_ops) == 2

    def test_flux_routing(self, microcode):
        distributor = DeviceEventDistributor(surface7())
        src, tgt = microcode.translate_name("CZ")
        entries = [QubitMicroOp(micro_op=src, qubit=2, pair=(2, 0)),
                   QubitMicroOp(micro_op=tgt, qubit=0, pair=(2, 0))]
        device_ops = distributor.distribute(1, entries)
        kinds = {op.device.kind for op in device_ops}
        assert kinds == {DeviceKind.FLUX}

    def test_device_id_str(self):
        assert str(DeviceId(DeviceKind.MICROWAVE, 3)) == "microwave[3]"


class TestPulseLibrary:
    def test_unitary_lookup(self):
        library = PulseLibrary(default_operation_set())
        unitary = library.unitary_for("X90")
        assert unitary.shape == (2, 2)

    def test_measurement_has_no_unitary(self):
        library = PulseLibrary(default_operation_set())
        with pytest.raises(ConfigurationError):
            library.unitary_for("MEASZ")

    def test_durations(self):
        library = PulseLibrary(default_operation_set())
        assert library.duration_cycles("CZ") == 2
        assert library.duration_cycles("MEASZ") == 15


class TestEventQueue:
    def _op(self, microcode):
        return DeviceOperation(
            device=DeviceId(DeviceKind.MICROWAVE, 0), cycle=0,
            micro_ops=(qubit_micro_op(microcode, "X", 0),))

    def test_fifo_order(self, microcode):
        queue = EventQueue(depth=4)
        first = self._op(microcode)
        second = DeviceOperation(
            device=DeviceId(DeviceKind.MICROWAVE, 0), cycle=1,
            micro_ops=(qubit_micro_op(microcode, "Y", 0),))
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_overflow_raises(self, microcode):
        queue = EventQueue(depth=1)
        queue.push(self._op(microcode))
        assert queue.full
        with pytest.raises(ConfigurationError):
            queue.push(self._op(microcode))

    def test_len(self, microcode):
        queue = EventQueue(depth=2)
        assert len(queue) == 0
        queue.push(self._op(microcode))
        assert len(queue) == 1


class TestMeasurementUnit:
    def make_unit(self, seed=0):
        plant = QuantumPlant(two_qubit_chip(),
                             noise=NoiseModel.noiseless(),
                             rng=np.random.default_rng(seed))
        return MeasurementUnit(plant, UarchConfig()), plant

    def test_measurement_timing(self):
        unit, _ = self.make_unit()
        pending = unit.start_measurement(0, start_ns=100.0)
        # 15 cycles x 20 ns + 28 ns transport.
        assert pending.arrival_ns == pytest.approx(100 + 300 + 28)

    def test_ground_state_reads_zero(self):
        unit, _ = self.make_unit()
        pending = unit.start_measurement(0, 0.0)
        assert pending.raw_result == 0
        assert pending.reported_result == 0

    def test_mock_results_bypass_plant(self):
        unit, plant = self.make_unit()
        unit.inject_mock_results(2, [1, 0, 1])
        results = [unit.start_measurement(2, t * 1000.0).reported_result
                   for t in range(3)]
        assert results == [1, 0, 1]
        assert plant.operations_log == []

    def test_mock_exhaustion_falls_back_to_plant(self):
        unit, plant = self.make_unit()
        unit.inject_mock_results(0, [1])
        assert unit.start_measurement(0, 0.0).reported_result == 1
        assert not unit.has_mock_results(0)
        pending = unit.start_measurement(0, 1000.0)
        assert pending.raw_result == 0  # real plant, ground state
        assert len(plant.operations_log) == 1

    def test_mock_rejects_non_bits(self):
        unit, _ = self.make_unit()
        with pytest.raises(ConfigurationError):
            unit.inject_mock_results(0, [2])

    def test_clear_mock_results(self):
        unit, _ = self.make_unit()
        unit.inject_mock_results(0, [1, 1])
        unit.clear_mock_results()
        assert not unit.has_mock_results(0)


class TestTraceRecords:
    def test_shot_trace_filters(self):
        trace = ShotTrace()
        trace.triggers.append(TriggerRecord(
            name="X", qubits=(0,), cycle=1, trigger_ns=20.0,
            output_ns=80.0, executed=True, condition="ALWAYS"))
        trace.triggers.append(TriggerRecord(
            name="C_X", qubits=(0,), cycle=2, trigger_ns=40.0,
            output_ns=100.0, executed=False, condition="LAST_ONE"))
        assert len(trace.executed_operations()) == 1
        assert len(trace.cancelled_operations()) == 1

    def test_results_accessors(self):
        trace = ShotTrace()
        trace.results.append(ResultRecord(
            qubit=2, raw_result=1, reported_result=0,
            measure_start_ns=0.0, arrival_ns=328.0))
        assert trace.last_result(2) == 0
        assert trace.last_result(0) is None
        assert len(trace.results_for(2)) == 1

    def test_slip_record(self):
        record = SlipRecord(cycle=10, due_ns=200.0, actual_ns=230.0)
        assert record.slip_ns == pytest.approx(30.0)
        trace = ShotTrace()
        assert trace.max_slip_ns() == 0.0
        trace.slips.append(record)
        assert trace.max_slip_ns() == pytest.approx(30.0)


class TestUarchConfig:
    def test_fast_conditional_path_is_92ns(self):
        assert UarchConfig().fast_conditional_path_ns == pytest.approx(
            92.0)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            UarchConfig(late_policy="panic")

    def test_invalid_cycle(self):
        with pytest.raises(ConfigurationError):
            UarchConfig(classical_cycle_ns=0.0)

    def test_invalid_queue_depth(self):
        with pytest.raises(ConfigurationError):
            UarchConfig(timing_queue_depth=0)

    def test_slip_config_copies(self):
        base = UarchConfig(result_transport_ns=99.0)
        slipped = slip_config(base)
        assert slipped.late_policy == "slip"
        assert slipped.result_transport_ns == 99.0
        assert base.late_policy == "strict"
