"""uarch test-session hooks.

Prints the differential-fuzz engine-selection mix in the terminal
summary (it survives ``-q`` output capture), so the nightly 500-seed
CI job's log shows at a glance whether programs that should replay
quietly regressed onto the interpreter.
"""

import sys


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    # Look the fuzz module up however pytest imported it (rootdir
    # top-level name or namespace-package path) — importing it here
    # would create a second instance with an empty counter.
    fuzz_module = None
    for name, module in list(sys.modules.items()):
        if name.rpartition(".")[2] == "test_differential_fuzz":
            if getattr(module, "ENGINE_MIX", None):
                fuzz_module = module
                break
    if fuzz_module is None:
        return
    mix = fuzz_module.ENGINE_MIX
    total = sum(mix.values())
    parts = ", ".join(f"{name}: {count}"
                      for name, count in sorted(mix.items()))
    terminalreporter.write_line(
        f"differential-fuzz engine mix over {total} cases — {parts}")
    backends = getattr(fuzz_module, "BACKEND_MIX", None)
    if backends:
        parts = ", ".join(f"{name}: {count}"
                          for name, count in sorted(backends.items()))
        terminalreporter.write_line(
            f"differential-fuzz plant-backend mix — {parts}")
    chaos = getattr(fuzz_module, "CHAOS_MIX", None)
    if chaos:
        total = sum(chaos.values())
        parts = ", ".join(f"{name}: {count}"
                          for name, count in sorted(chaos.items()))
        terminalreporter.write_line(
            f"fault-injection chaos mix over {total} cases — {parts}")
    frames = getattr(fuzz_module, "FRAME_MIX", None)
    if frames:
        total = sum(frames.values())
        parts = ", ".join(f"{name}: {count}"
                          for name, count in sorted(frames.items()))
        terminalreporter.write_line(
            f"pauli-frame fuzz mix over {total} cases — {parts}")
