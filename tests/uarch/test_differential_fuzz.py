"""Differential interpreter-vs-replay fuzzing.

The replay tier's correctness claim is *observational equivalence*:
for any program the static analysis admits, the branch-resolved engine
must emit (a) bit-identical timing-domain records along every outcome
path and (b) the same joint outcome distribution as the cycle-accurate
interpreter.  Hand-picked experiments cannot cover the interaction
space — mock cursors x forced growth prefixes x dead stores x FMR
stalls x conditional micro-ops — so this harness generates seeded
random eQASM programs mixing all of it, runs each on both engines and
cross-checks:

* engine agreement — if one engine raises a timing violation, so must
  the other; if the static analysis blocks replay, the fallback is
  transparent (the run still completes on the interpreter);
* per-path timing-bit identity on every outcome path both engines
  produced (there must be at least one);
* chi-squared agreement of the joint final-outcome histograms;
* identical mock-queue draining (cursor bookkeeping cannot skew).

Tier-1 runs ``DEFAULT_SEED_COUNT`` seeded cases; the nightly CI job
widens the range via ``EQASM_FUZZ_SEEDS=500``.  Every machine and the
generator itself are seeded, so a passing seed passes forever.

Every case also records which engine actually drove the replay-side
run into ``ENGINE_MIX``; the uarch conftest prints the aggregate in
the terminal summary, so a silent fallback regression (programs that
should replay quietly running on the interpreter) is visible straight
in the nightly CI log.
"""

import os
from collections import Counter

import numpy as np
import pytest

from repro.core import Assembler, two_qubit_instantiation
from repro.core.errors import EQASMError, TimingViolationError
from repro.experiments.runner import ExperimentSetup, RetryPolicy
from repro.quantum import NoiseModel, QuantumPlant
from repro.quantum.noise import DecoherenceModel, GateErrorModel
from repro.uarch import FAULT_SITES, FaultPlan, FaultSpec, QuMAv2

DEFAULT_SEED_COUNT = 25
SEED_COUNT = int(os.environ.get("EQASM_FUZZ_SEEDS", DEFAULT_SEED_COUNT))
SHOTS = 200

GATES = ["X", "Y", "X90", "Y90", "XM90", "YM90"]
CONDITIONAL_GATES = ["C_X", "C_Y", "C0_X"]

#: Engine-selection aggregate over all fuzz cases of the session,
#: printed by the conftest terminal summary (nightly log visibility).
ENGINE_MIX: Counter = Counter()

#: Plant-backend selection aggregate (same reporting path): the
#: ``clifford_only`` shape must land on the stabilizer tableau, every
#: other case on the dense matrix, identically on both engines.
BACKEND_MIX: Counter = Counter()

#: Chaos-shape aggregate (same reporting path): how each fuzz case
#: under fault injection resolved — recovered via the degradation
#: ladder, survived with nothing fired, or aborted structurally.
CHAOS_MIX: Counter = Counter()

#: Pauli-frame-shape aggregate (same reporting path): how each
#: ``pauli_frame`` fuzz case resolved — served by the frame-batched
#: engine, or statically ineligible (conditional gates in the pool).
FRAME_MIX: Counter = Counter()


def clifford_only_noise() -> NoiseModel:
    """Readout flips only.  Every generated gate is already Clifford,
    so this noise model is what flips a case onto the stabilizer
    backend — exercising tableau growth shots, tableau snapshots and
    the backend-selection agreement between the engines."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.0,
                                  two_qubit_error=0.0))


def generate_case(seed: int) -> tuple[str, list[int], bool]:
    """One random well-formed program + mock plan + backend shape.

    The third element is the ``clifford_only`` shape flag: such cases
    run under readout-only noise, which (the gate pool being entirely
    Clifford) moves the whole case onto the stabilizer plant backend —
    both engines must agree on that selection and stay statistically
    indistinguishable there too.

    Blocks are drawn from: plain gates, fixed and register-valued
    waits, measurement + fast-conditional micro-op, measurement + FMR
    + CMP/BR feedback (CFC), dead stores (host-readout deposits),
    spill/reload pairs (same-shot ST-then-LD, killed by the dataflow
    pass and replay-eligible, with the reloaded value steering a
    branch), live loads (LD above the only ST to its address — which
    must force the interpreter on both sides) and counted gate loops
    (backward branches the analysis unrolls).  Timing follows the
    Section 5 listings: a QWAIT 50 after every measurement keeps the
    schedule valid, small waits separate gate bundles.  Measurements
    are capped at 3 per shot so the outcome tree saturates within the
    shot budget.
    """
    rng = np.random.default_rng(seed)
    clifford_only = bool(rng.random() < 0.3)
    lines = ["SMIS S0, {0}", "SMIS S2, {2}", "LDI R0, 1", "QWAIT 10000"]
    kinds = list(rng.choice(
        ["gate", "qwait", "fce", "cfc", "dead_store", "spill_reload",
         "live_load", "qwaitr", "counted_loop"],
        size=int(rng.integers(4, 9)),
        p=[0.20, 0.12, 0.18, 0.18, 0.08, 0.08, 0.03, 0.05, 0.08]))
    if not any(kind in ("fce", "cfc") for kind in kinds):
        kinds[-1] = "cfc"
    measurements = 0
    label = 0
    for kind in kinds:
        if kind in ("fce", "cfc") and measurements >= 3:
            kind = "gate"
        if kind == "gate":
            target = rng.choice(["S0", "S2"])
            lines += [f"{rng.choice(GATES)} {target}", "QWAIT 5"]
        elif kind == "qwait":
            lines += [f"QWAIT {int(rng.integers(1, 40))}"]
        elif kind == "qwaitr":
            lines += [f"LDI R8, {int(rng.integers(1, 30))}", "QWAITR R8"]
        elif kind == "fce":
            measurements += 1
            lines += ["X90 S2", "MEASZ S2", "QWAIT 50",
                      f"{rng.choice(CONDITIONAL_GATES)} S2", "QWAIT 5"]
        elif kind == "cfc":
            measurements += 1
            lines += ["X90 S2", "MEASZ S2", "QWAIT 50",
                      "FMR R1, Q2", "CMP R1, R0",
                      f"BR EQ, eq{label}",
                      "X S0",
                      f"BR ALWAYS, join{label}",
                      f"eq{label}:",
                      "Y S0",
                      f"join{label}:",
                      "QWAIT 5"]
            label += 1
        elif kind == "dead_store":
            address = 4 * int(rng.integers(16, 40))
            lines += [f"LDI R5, {address}", "ST R1, R5(0)"]
        elif kind == "spill_reload":
            # Same-shot ST -> LD at one address: killed, replays; the
            # reloaded value steers a branch so a wrong reload would
            # show up in the timing cross-check, not just the data.
            address = 4 * int(rng.integers(40, 64))
            lines += [f"LDI R6, {address}", "ST R1, R6(0)",
                      "LD R7, R6(0)",
                      "CMP R7, R0",
                      f"BR NE, sk{label}",
                      f"QWAIT {int(rng.integers(2, 9))}",
                      f"sk{label}:"]
            label += 1
        elif kind == "live_load":
            # LD above the only ST to its address: observes the
            # previous shot, must fall back on both engines.
            address = 4 * int(rng.integers(64, 80))
            lines += [f"LDI R6, {address}", "LD R7, R6(0)",
                      "ST R0, R6(0)"]
        else:  # counted_loop
            trips = int(rng.integers(2, 5))
            lines += [f"LDI R9, {trips}",
                      f"lp{label}:",
                      f"{rng.choice(GATES)} S0", "QWAIT 5",
                      "SUB R9, R9, R0",
                      "CMP R9, R0",
                      f"BR GE, lp{label}"]
            label += 1
    lines += ["QWAIT 50", "STOP"]

    mock_plan: list[int] = []
    if measurements and rng.random() < 0.4:
        if rng.random() < 0.5:
            length = int(rng.integers(1, 60))   # exhausts mid-run
        else:
            length = measurements * SHOTS       # covers the whole run
        mock_plan = [int(bit) for bit in rng.integers(0, 2, size=length)]
    return "\n".join(lines), mock_plan, clifford_only


def run_engine(text: str, mock_plan: list[int], seed: int,
               use_replay: bool, noise: NoiseModel | None = None):
    """Run one program on one engine; returns (machine, traces|None).

    ``traces`` is None when the run raised a timing violation — the
    differential property is then that *both* engines raise it.
    """
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise if noise is not None
                         else NoiseModel(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant)
    if mock_plan:
        machine.measurement_unit.inject_mock_results(2, mock_plan)
    machine.load(Assembler(isa).assemble_text(text))
    try:
        traces = machine.run(SHOTS, use_replay=use_replay)
    except TimingViolationError:
        return machine, None
    return machine, traces


def assert_timing_identical(trace_a, trace_b):
    assert trace_a.triggers == trace_b.triggers
    assert trace_a.slips == trace_b.slips
    assert trace_a.instructions_executed == trace_b.instructions_executed
    assert trace_a.classical_time_ns == trace_b.classical_time_ns
    assert trace_a.stop_reached == trace_b.stop_reached
    assert [(r.qubit, r.measure_start_ns, r.arrival_ns)
            for r in trace_a.results] == \
        [(r.qubit, r.measure_start_ns, r.arrival_ns)
         for r in trace_b.results]


def joint_histogram(traces):
    """Counts of the per-shot final result vector (the ShotCounts key)."""
    histogram = {}
    for trace in traces:
        last = {}
        for record in trace.results:
            last[record.qubit] = record.reported_result
        key = tuple(sorted(last.items()))
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


def assert_distributions_agree(interp_hist, replay_hist):
    """Chi-squared homogeneity test, pooling sparse outcome bins."""
    keys = sorted(set(interp_hist) | set(replay_hist))
    if len(keys) < 2:
        assert set(interp_hist) == set(replay_hist)
        return
    table = np.array([[interp_hist.get(k, 0) for k in keys],
                      [replay_hist.get(k, 0) for k in keys]])
    totals = table.sum(axis=0)
    dense = table[:, totals >= 10]
    pooled = table[:, totals < 10].sum(axis=1, keepdims=True)
    if pooled.sum() > 0:
        dense = np.hstack([dense, pooled])
    if dense.shape[1] < 2:
        return  # everything pooled into one bin: nothing to compare
    from scipy.stats import chi2_contingency
    _, p_value, _, _ = chi2_contingency(dense)
    assert p_value > 1e-4, \
        f"engines statistically distinguishable (p={p_value})"


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_interpreter_and_replay_are_equivalent(seed):
    text, mock_plan, clifford_only = generate_case(seed)
    noise = clifford_only_noise() if clifford_only else NoiseModel()
    interpreter, interp_traces = run_engine(text, mock_plan,
                                            seed=10_000 + seed,
                                            use_replay=False,
                                            noise=noise)
    replay, replay_traces = run_engine(text, mock_plan,
                                       seed=20_000 + seed,
                                       use_replay=True,
                                       noise=noise)

    # Engine agreement on timing violations.
    assert (interp_traces is None) == (replay_traces is None), \
        "one engine raised a timing violation, the other did not"
    if interp_traces is None:
        ENGINE_MIX["timing-violation"] += 1
        return

    # Plant-backend selection must agree across engines and match the
    # generated shape: the clifford_only cases (Clifford gate pool,
    # readout-only noise) ride the stabilizer tableau on both.
    expected_backend = "stabilizer" if clifford_only else "dense"
    assert interpreter.last_plant_backend == expected_backend
    assert replay.last_plant_backend == expected_backend
    BACKEND_MIX[expected_backend] += 1

    assert interpreter.last_run_engine == "interpreter"
    reasons = replay.replay_unsupported_reasons()
    if reasons:
        # Static blockers (live loads): transparent fallback, and the
        # run must still be a faithful interpreter run.
        ENGINE_MIX["interpreter (static blocker)"] += 1
        assert replay.last_run_engine == "interpreter"
        assert replay.replay_fallback_reason == "; ".join(reasons)
    else:
        stats = replay.engine_stats
        assert stats.shots_total == SHOTS
        assert stats.interpreter_shots + stats.replay_shots == SHOTS
        if stats.replay_shots == 0:
            # 100%-growth runs report the honest split (the tree never
            # served a cached path, e.g. every path exceeds the caps).
            ENGINE_MIX["interpreter (all growth)"] += 1
            assert replay.last_run_engine == "interpreter"
            assert "growth" in replay.replay_fallback_reason
        else:
            ENGINE_MIX["replay"] += 1
            assert replay.last_run_engine == "replay"

    # Per-path timing-bit identity on every shared outcome path.
    interp_by_path = {}
    for trace in interp_traces:
        interp_by_path.setdefault(trace.outcome_path(), trace)
    replay_by_path = {}
    for trace in replay_traces:
        replay_by_path.setdefault(trace.outcome_path(), trace)
    common = set(interp_by_path) & set(replay_by_path)
    assert common, "no outcome path produced by both engines"
    for path in common:
        assert_timing_identical(interp_by_path[path],
                                replay_by_path[path])

    # Joint outcome distributions must be indistinguishable.
    assert_distributions_agree(joint_histogram(interp_traces),
                               joint_histogram(replay_traces))

    # Mock queues must drain identically (cursor bookkeeping).
    if mock_plan:
        assert (interpreter.measurement_unit.remaining_mock_results(2) ==
                replay.measurement_unit.remaining_mock_results(2))


def pauli_gate_noise() -> NoiseModel:
    """Stochastic Pauli gate error + readout flips, no decoherence.

    On a Clifford program this lands on the stabilizer backend but
    *blocks* replay (per-shot trajectory sampling) — exactly the
    regime the Pauli-frame batched engine serves."""
    return NoiseModel(
        decoherence=DecoherenceModel(t1_ns=1e15, t2_ns=1e15),
        gate_error=GateErrorModel(single_qubit_error=0.03,
                                  two_qubit_error=0.05))


def generate_frame_case(seed: int) -> tuple[str, bool]:
    """One random Clifford program for the ``pauli_frame`` shape.

    Blocks: single-qubit Clifford gates, CZ on the chip's coupled
    pair, waits, and plain measurements (1-3 per shot).  A fifth of
    the cases deliberately include a conditionally executed gate —
    those must be *refused* by the frame engine's static pass and fall
    back to the per-shot tableau interpreter transparently.  Returns
    ``(program_text, expects_frame)``.
    """
    rng = np.random.default_rng(seed)
    include_conditional = bool(rng.random() < 0.2)
    lines = ["SMIS S0, {0}", "SMIS S2, {2}", "SMIS S3, {0, 2}",
             "SMIT T0, {(0, 2)}", "QWAIT 10000"]
    kinds = list(rng.choice(
        ["gate", "cz", "qwait", "measure"],
        size=int(rng.integers(5, 12)),
        p=[0.40, 0.20, 0.15, 0.25]))
    measurements = 0
    for kind in kinds:
        if kind == "measure" and measurements >= 3:
            kind = "gate"
        if kind == "gate":
            target = rng.choice(["S0", "S2"])
            lines += [f"{rng.choice(GATES)} {target}", "QWAIT 5"]
        elif kind == "cz":
            lines += ["CZ T0", "QWAIT 5"]
        elif kind == "qwait":
            lines += [f"QWAIT {int(rng.integers(1, 40))}"]
        else:
            measurements += 1
            target = rng.choice(["S0", "S2", "S3"])
            lines += [f"MEASZ {target}", "QWAIT 50"]
    if measurements == 0:
        lines += ["MEASZ S3", "QWAIT 50"]
    if include_conditional:
        lines += [f"{rng.choice(CONDITIONAL_GATES)} S2", "QWAIT 5"]
    lines += ["QWAIT 50", "STOP"]
    return "\n".join(lines), not include_conditional


def run_frame_engine(text: str, seed: int, use_replay: bool,
                     plant_backend: str = "auto"):
    """One run of a frame-shape program on one engine/backend."""
    isa = two_qubit_instantiation()
    plant = QuantumPlant(isa.topology, noise=pauli_gate_noise(),
                         rng=np.random.default_rng(seed))
    machine = QuMAv2(isa, plant, plant_backend=plant_backend)
    machine.load(Assembler(isa).assemble_text(text))
    return machine, machine.run(SHOTS, use_replay=use_replay)


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_frame_batched_equivalence(seed):
    """``pauli_frame`` shape: random feedback-free Clifford programs
    with stochastic Pauli noise, run three ways — Pauli-frame batched,
    per-shot tableau interpreter, dense density matrix — asserting
    chi-squared joint-histogram agreement, engine/backend-selection
    agreement, and per-path timing-bit identity.
    """
    text, expects_frame = generate_frame_case(seed)

    frame, frame_traces = run_frame_engine(text, seed=40_000 + seed,
                                           use_replay=True)
    tableau, tableau_traces = run_frame_engine(text, seed=50_000 + seed,
                                               use_replay=False)
    dense, dense_traces = run_frame_engine(text, seed=60_000 + seed,
                                           use_replay=True,
                                           plant_backend="dense")

    # Backend selection: Clifford pool + Pauli/readout noise rides the
    # tableau on both engine configurations; the dense run is pinned.
    assert frame.last_plant_backend == "stabilizer", \
        f"tableau refused: {frame.plant_backend_reason}"
    assert tableau.last_plant_backend == "stabilizer"
    assert dense.last_plant_backend == "dense"
    assert tableau.last_run_engine == "interpreter"

    stats = frame.engine_stats
    assert stats.shots_total == SHOTS
    assert stats.interpreter_shots + stats.replay_shots + \
        stats.frame_batched == SHOTS
    if expects_frame:
        assert not frame.frame_batch_unsupported_reasons()
        assert frame.last_run_engine == "frame"
        assert stats.engine == "frame"
        assert stats.frame_batched == SHOTS
        assert stats.frame_reference_shots == 1
        assert stats.interpreter_shots == 0
        FRAME_MIX["frame"] += 1
    else:
        # The conditional gate forks the Clifford sequence: the frame
        # pass must refuse and the run must fall back transparently to
        # the per-shot tableau interpreter (trajectory noise blocks
        # replay too).
        reasons = frame.frame_batch_unsupported_reasons()
        assert any("conditionally" in reason for reason in reasons)
        assert frame.last_run_engine == "interpreter"
        assert stats.frame_batched == 0
        assert stats.interpreter_shots == SHOTS
        assert "trajectory" in frame.replay_fallback_reason
        FRAME_MIX["ineligible (conditional gate)"] += 1

    # Per-path timing-bit identity against the per-shot tableau run.
    frame_by_path = {}
    for trace in frame_traces:
        frame_by_path.setdefault(trace.outcome_path(), trace)
    tableau_by_path = {}
    for trace in tableau_traces:
        tableau_by_path.setdefault(trace.outcome_path(), trace)
    common = set(frame_by_path) & set(tableau_by_path)
    assert common, "no outcome path produced by both engines"
    for path in common:
        assert_timing_identical(frame_by_path[path],
                                tableau_by_path[path])

    # Three-way joint-distribution agreement: batched vs per-shot
    # tableau (the bit-compatibility claim) and batched vs dense (the
    # physics ground truth).
    frame_hist = joint_histogram(frame_traces)
    assert_distributions_agree(frame_hist,
                               joint_histogram(tableau_traces))
    assert_distributions_agree(frame_hist,
                               joint_histogram(dense_traces))


#: Sites the chaos shape draws from.  ``snapshot_corrupt`` is omitted
#: here: nothing on the execution hot path restores plant snapshots,
#: so the site is covered at the plant API level in test_faults.py.
CHAOS_SITES = ("backend_gate", "measurement_stall", "timing_overflow",
               "tree_bitflip", "mock_exhaust")

CHAOS_SHOTS = 40


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_fault_injection_chaos(seed):
    """Random programs x random fault plans, self-verifying replay on.

    The hardened stack's contract under chaos: every run either
    delivers all shots (degradation ladder, recorded rungs) or aborts
    with a *structured* :class:`EQASMError` — never silent corruption,
    never a bare non-library exception — and a disarmed re-run of the
    same program is healthy again (no degradations, every audit
    clean).
    """
    text, mock_plan, clifford_only = generate_case(seed)
    noise = clifford_only_noise() if clifford_only else NoiseModel()
    rng = np.random.default_rng(77_000 + seed)
    site = CHAOS_SITES[int(rng.integers(len(CHAOS_SITES)))]
    shot = int(rng.integers(0, 20)) if rng.random() < 0.7 else None
    setup = ExperimentSetup.create(noise=noise, seed=30_000 + seed,
                                   audit_fraction=1.0)
    if mock_plan:
        setup.machine.measurement_unit.inject_mock_results(2, mock_plan)
    assembled = setup.assemble_text(text)
    plan = FaultPlan([FaultSpec(site, shot=shot)], seed=seed)
    setup.machine.arm_faults(plan)
    try:
        traces = setup.run_resilient(assembled, CHAOS_SHOTS,
                                     policy=RetryPolicy(max_attempts=3))
    except TimingViolationError:
        CHAOS_MIX["timing-violation"] += 1
        return
    except EQASMError:
        # The ladder ran out of rungs: an abort is acceptable, but it
        # must be the structured kind (anything else propagates and
        # fails the test).
        CHAOS_MIX[f"aborted ({site})"] += 1
    else:
        assert len(traces) == CHAOS_SHOTS
        CHAOS_MIX[(f"recovered ({site})" if plan.records
                   else "fault never fired")] += 1

    # Recovery: disarm, reset caches and queues, re-run clean.
    setup.machine.disarm_faults()
    setup.machine.clear_replay_cache()
    setup.machine.measurement_unit.clear_mock_results()
    if mock_plan:
        setup.machine.measurement_unit.inject_mock_results(2, mock_plan)
    clean = setup.run_resilient(assembled, CHAOS_SHOTS)
    assert len(clean) == CHAOS_SHOTS
    stats = setup.machine.engine_stats
    assert stats.audit_divergences == 0
    assert not stats.degradations
    assert not stats.faults_injected
