"""Failure-injection tests: the machine under hostile conditions.

Exercises the fault paths a control microarchitecture must handle:
queue saturation, malformed binaries, physically impossible schedules,
runaway control flow, and extreme noise.
"""

import numpy as np
import pytest

from repro.core import Assembler, seven_qubit_instantiation, \
    two_qubit_instantiation
from repro.core.errors import (
    DecodingError,
    EQASMError,
    PlantError,
    RuntimeFault,
)
from repro.quantum import NoiseModel, QuantumPlant
from repro.quantum.noise import DecoherenceModel, GateErrorModel, \
    ReadoutErrorModel
from repro.uarch import QuMAv2, UarchConfig, slip_config


def make_machine(isa=None, config=None, seed=0, noise=None):
    isa = isa or two_qubit_instantiation()
    plant = QuantumPlant(isa.topology,
                         noise=noise or NoiseModel.noiseless(),
                         rng=np.random.default_rng(seed))
    return isa, QuMAv2(isa, plant, config=config)


class TestQueueSaturation:
    def test_tiny_timing_queue_still_correct(self):
        """Depth-1 timing queue serialises but must stay correct."""
        isa, machine = make_machine(config=slip_config(UarchConfig(
            timing_queue_depth=1, late_policy="slip")))
        text = "SMIS S2, {2}\n" + "X S2\n" * 8 + "MEASZ S2\nSTOP"
        machine.load(Assembler(isa).assemble_text(text))
        trace = machine.run_shot()
        # Even number of X gates -> |0>.
        assert trace.last_result(2) == 0

    def test_tiny_event_queue_still_correct(self):
        isa, machine = make_machine(config=slip_config(UarchConfig(
            event_queue_depth=1, late_policy="slip")))
        text = "SMIS S2, {2}\n" + "X S2\n" * 5 + "MEASZ S2\nSTOP"
        machine.load(Assembler(isa).assemble_text(text))
        trace = machine.run_shot()
        assert trace.last_result(2) == 1

    def test_deep_program_with_shallow_queues_slips_not_crashes(self):
        isa, machine = make_machine(
            isa=seven_qubit_instantiation(),
            config=slip_config(UarchConfig(timing_queue_depth=2,
                                           event_queue_depth=2,
                                           late_policy="slip")))
        lines = ["SMIS S7, {0, 1, 2, 3, 4, 5, 6}"]
        lines += ["X S7", "Y S7"] * 20
        lines += ["STOP"]
        machine.load(Assembler(isa).assemble_text("\n".join(lines)))
        machine.run_shot()  # must complete without raising


class TestMalformedBinaries:
    def test_undefined_opcode_word(self):
        isa, machine = make_machine()
        # Opcode 63 is not assigned.
        with pytest.raises(DecodingError):
            machine.load([63 << 25])

    def test_bundle_with_unknown_q_opcode(self):
        isa, machine = make_machine()
        # Bundle flag set, q opcode 0x1FF unassigned.
        word = (1 << 31) | (0x1FF << 22)
        with pytest.raises(EQASMError):
            machine.load([word])

    def test_random_words_never_crash_uncontrolled(self):
        isa, machine = make_machine()
        rng = np.random.default_rng(7)
        for _ in range(200):
            word = int(rng.integers(0, 1 << 32))
            try:
                machine.load([word])
            except EQASMError:
                continue


class TestImpossibleSchedules:
    def test_operation_during_measurement_detected(self):
        # No QWAIT after MEASZ: the next gate lands inside the readout
        # window — the plant refuses (paper inserts 1 us precisely to
        # avoid this).
        isa, machine = make_machine()
        machine.load(Assembler(isa).assemble_text("""
        SMIS S2, {2}
        MEASZ S2
        X S2
        STOP
        """))
        with pytest.raises(PlantError):
            machine.run_shot()

    def test_gate_during_cz_detected(self):
        isa, machine = make_machine()
        machine.load(Assembler(isa).assemble_text("""
        SMIS S0, {0}
        SMIT T0, {(0, 2)}
        CZ T0
        X S0
        STOP
        """))
        with pytest.raises(PlantError):
            machine.run_shot()


class TestRunawayControl:
    def test_infinite_loop_bounded(self):
        isa, machine = make_machine()
        machine.load(Assembler(isa).assemble_text("""
        loop:
        NOP
        BR ALWAYS, loop
        """))
        with pytest.raises(RuntimeFault):
            machine.run_shot(max_instructions=500)

    def test_backward_jump_before_program_start(self):
        isa, machine = make_machine()
        machine.load([
            Assembler(isa).assemble_text("BR ALWAYS, -5\nSTOP").words[0]
            if False else 0])
        # Direct word: BR ALWAYS with offset -5 jumps before PC 0 —
        # execution simply falls off and terminates.
        from repro.core.encoding import InstructionEncoder
        from repro.core.instructions import Br
        from repro.core.registers import ComparisonFlag
        encoder = InstructionEncoder(isa)
        word = encoder.encode(Br(condition=ComparisonFlag.ALWAYS,
                                 target=-5))
        machine.load([word])
        trace = machine.run_shot()
        assert not trace.stop_reached


class TestExtremeNoise:
    def test_instant_relaxation(self):
        # T1 of 1 ns: the excited state dies before measurement.
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1.0, t2_ns=1.0),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(0.0, 0.0))
        isa, machine = make_machine(noise=noise)
        machine.load(Assembler(isa).assemble_text("""
        SMIS S2, {2}
        X S2
        QWAIT 5
        MEASZ S2
        STOP
        """))
        results = [machine.run_shot().last_result(2) for _ in range(20)]
        assert sum(results) == 0

    def test_total_readout_scramble(self):
        # 50 % assignment error on both symbols: results are coin flips
        # regardless of state; the machine must still run.
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1e12, t2_ns=1e12),
            readout=ReadoutErrorModel(p01=0.5, p10=0.5),
            gate_error=GateErrorModel(0.0, 0.0))
        isa, machine = make_machine(noise=noise, seed=3)
        machine.load(Assembler(isa).assemble_text("""
        SMIS S2, {2}
        X S2
        MEASZ S2
        QWAIT 50
        STOP
        """))
        results = [machine.run_shot().last_result(2)
                   for _ in range(200)]
        assert 0.3 < sum(results) / len(results) < 0.7

    def test_maximal_gate_error_still_valid_state(self):
        noise = NoiseModel(
            decoherence=DecoherenceModel(t1_ns=1e12, t2_ns=1e12),
            readout=ReadoutErrorModel(0.0, 0.0),
            gate_error=GateErrorModel(single_qubit_error=1.0,
                                      two_qubit_error=1.0))
        isa, machine = make_machine(noise=noise)
        machine.load(Assembler(isa).assemble_text("""
        SMIS S2, {2}
        X S2
        MEASZ S2
        QWAIT 50
        STOP
        """))
        machine.run_shot()
        probabilities = machine.plant.density_matrix().probabilities()
        assert np.all(probabilities >= -1e-12)
        assert np.sum(probabilities) == pytest.approx(1.0)
